//! Structural evolution operators (paper §3.2).
//!
//! Four basic operators — `Insert`, `Exclude`, `Associate`, `Reclassify`
//! — through which the administrator integrates every change. Simple
//! operations (creation, deletion, transformation, merge, split,
//! reclassification) and complex operations (increase, decrease, partial
//! annexation) compile to sequences of basic operators, exactly as paper
//! Table 11 illustrates.

use std::collections::BTreeMap;

use mvolap_temporal::{Instant, Interval};

use crate::error::{CoreError, Result};
use crate::ids::{DimensionId, MemberVersionId};
use crate::mapping::{MappingRelationship, MeasureMapping};
use crate::member::MemberVersionSpec;
use crate::metadata::EvolutionEntry;
use crate::schema::Tmd;

/// One of the four basic evolution operators.
#[derive(Debug, Clone, PartialEq)]
pub enum BasicOp {
    /// `Insert(Did, mvID, mName, [A], [level], ti, [tf], P, C)`: a new
    /// member version wired under parents `P` and over children `C`.
    Insert {
        /// Target dimension.
        dim: DimensionId,
        /// New member name.
        name: String,
        /// User attributes.
        attributes: BTreeMap<String, String>,
        /// Optional explicit level.
        level: Option<String>,
        /// Validity start.
        ti: Instant,
        /// Validity end; `None` means `Now`.
        tf: Option<Instant>,
        /// Parent member versions.
        parents: Vec<MemberVersionId>,
        /// Child member versions.
        children: Vec<MemberVersionId>,
    },
    /// `Exclude(Did, mvID, tf)`: ends a member version (and its
    /// relationships) at `tf − 1`.
    Exclude {
        /// Target dimension.
        dim: DimensionId,
        /// The version to exclude.
        id: MemberVersionId,
        /// Exclusion instant.
        at: Instant,
    },
    /// `Associate(Rmap)`: registers a mapping relationship.
    Associate {
        /// Target dimension.
        dim: DimensionId,
        /// The mapping relationship.
        rel: MappingRelationship,
    },
    /// `Reclassify(Did, mvID, ti, [tf], OldParents, NewParents)`.
    Reclassify {
        /// Target dimension.
        dim: DimensionId,
        /// The version to reclassify.
        id: MemberVersionId,
        /// Reclassification start.
        ti: Instant,
        /// Optional end of the new placement.
        tf: Option<Instant>,
        /// Parents to detach from `ti` on.
        old_parents: Vec<MemberVersionId>,
        /// Parents to attach from `ti` on.
        new_parents: Vec<MemberVersionId>,
    },
}

impl BasicOp {
    /// The operator name for logs and Table 11 rendering.
    pub fn operator(&self) -> &'static str {
        match self {
            BasicOp::Insert { .. } => "Insert",
            BasicOp::Exclude { .. } => "Exclude",
            BasicOp::Associate { .. } => "Associate",
            BasicOp::Reclassify { .. } => "Reclassify",
        }
    }

    /// Applies the operator to a schema; `Insert` returns the new id.
    ///
    /// # Errors
    ///
    /// Propagates dimension/graph validation failures; the schema may be
    /// partially modified when a multi-edge `Insert` fails midway (the
    /// operators are administrator tools, not transactions — mirror of
    /// the paper's prototype).
    pub fn apply(&self, tmd: &mut Tmd) -> Result<Option<MemberVersionId>> {
        // Every evolution operator invalidates derived caches (mapping
        // routes, roll-up paths). The inner mutators bump the schema
        // generation on their own, but the contract of the operators is
        // explicit: one application, at least one bump — even if a
        // future mutator forgets.
        tmd.bump_generation();
        match self {
            BasicOp::Insert {
                dim,
                name,
                attributes,
                level,
                ti,
                tf,
                parents,
                children,
            } => {
                let validity =
                    Interval::new(*ti, tf.unwrap_or(Instant::FOREVER)).map_err(CoreError::from)?;
                let spec = MemberVersionSpec {
                    name: name.clone(),
                    attributes: attributes.clone(),
                    level: level.clone(),
                };
                let id = tmd.add_version(*dim, spec, validity)?;
                for &p in parents {
                    let pv = tmd.dimension(*dim)?.version(p)?.validity;
                    let edge = validity.intersect(pv).ok_or({
                        CoreError::RelationshipOutsideMemberValidity {
                            child: id,
                            parent: p,
                            validity,
                        }
                    })?;
                    tmd.add_relationship(*dim, id, p, edge)?;
                }
                for &c in children {
                    let cv = tmd.dimension(*dim)?.version(c)?.validity;
                    let edge = validity.intersect(cv).ok_or({
                        CoreError::RelationshipOutsideMemberValidity {
                            child: c,
                            parent: id,
                            validity,
                        }
                    })?;
                    tmd.add_relationship(*dim, c, id, edge)?;
                }
                tmd.record_evolution(EvolutionEntry {
                    dimension: *dim,
                    subjects: vec![id],
                    at: *ti,
                    operator: "insert",
                    description: format!("inserted member version '{name}'"),
                });
                Ok(Some(id))
            }
            BasicOp::Exclude { dim, id, at } => {
                let name = tmd.dimension(*dim)?.version(*id)?.name.clone();
                tmd.dimension_mut(*dim)?.exclude(*id, *at)?;
                tmd.record_evolution(EvolutionEntry {
                    dimension: *dim,
                    subjects: vec![*id],
                    at: *at,
                    operator: "exclude",
                    description: format!("excluded member version '{name}'"),
                });
                Ok(None)
            }
            BasicOp::Associate { dim, rel } => {
                let d = tmd.dimension(*dim)?;
                let from_name = d.version(rel.from)?.name.clone();
                let to_name = d.version(rel.to)?.name.clone();
                let subjects = vec![rel.from, rel.to];
                let at = tmd.dimension(*dim)?.version(rel.to)?.validity.start();
                tmd.add_mapping(*dim, rel.clone())?;
                tmd.record_evolution(EvolutionEntry {
                    dimension: *dim,
                    subjects,
                    at,
                    operator: "associate",
                    description: format!("mapping relationship '{from_name}' -> '{to_name}'"),
                });
                Ok(None)
            }
            BasicOp::Reclassify {
                dim,
                id,
                ti,
                tf,
                old_parents,
                new_parents,
            } => {
                let name = tmd.dimension(*dim)?.version(*id)?.name.clone();
                tmd.dimension_mut(*dim)?
                    .reclassify(*id, *ti, *tf, old_parents, new_parents)?;
                tmd.record_evolution(EvolutionEntry {
                    dimension: *dim,
                    subjects: vec![*id],
                    at: *ti,
                    operator: "reclassify",
                    description: format!("reclassified member version '{name}'"),
                });
                Ok(None)
            }
        }
    }

    /// Renders the operator in the paper's Table 11 notation, resolving
    /// ids to names against `tmd` where possible.
    pub fn render(&self, tmd: &Tmd) -> String {
        let name_of = |dim: DimensionId, id: MemberVersionId| -> String {
            tmd.dimension(dim)
                .ok()
                .and_then(|d| d.version(id).ok())
                .map(|v| format!("id{}", v.name))
                .unwrap_or_else(|| format!("mv{}", id.0))
        };
        let set = |dim: DimensionId, ids: &[MemberVersionId]| -> String {
            if ids.is_empty() {
                "∅".to_owned()
            } else {
                let names: Vec<String> = ids.iter().map(|&i| name_of(dim, i)).collect();
                format!("{{{}}}", names.join(","))
            }
        };
        let dim_name = |dim: DimensionId| {
            tmd.dimension(dim)
                .map(|d| d.name().to_owned())
                .unwrap_or_else(|_| format!("D{}", dim.0))
        };
        match self {
            BasicOp::Insert {
                dim,
                name,
                ti,
                parents,
                children,
                ..
            } => format!(
                "Insert({}, id{name}, {name}, {ti}, {}, {})",
                dim_name(*dim),
                set(*dim, parents),
                set(*dim, children)
            ),
            BasicOp::Exclude { dim, id, at } => {
                format!("Exclude({}, {}, {at})", dim_name(*dim), name_of(*dim, *id))
            }
            BasicOp::Associate { dim, rel } => {
                let fwd: Vec<String> = rel
                    .forward
                    .iter()
                    .map(|m| format!("({},{})", m.func, m.confidence))
                    .collect();
                let bwd: Vec<String> = rel
                    .backward
                    .iter()
                    .map(|m| format!("({},{})", m.func, m.confidence))
                    .collect();
                format!(
                    "Associate({}, {}, {{{}}}, {{{}}})",
                    name_of(*dim, rel.from),
                    name_of(*dim, rel.to),
                    fwd.join(","),
                    bwd.join(",")
                )
            }
            BasicOp::Reclassify {
                dim,
                id,
                ti,
                old_parents,
                new_parents,
                ..
            } => format!(
                "Reclassify({}, {}, {ti}, {}, {})",
                dim_name(*dim),
                name_of(*dim, *id),
                set(*dim, old_parents),
                set(*dim, new_parents)
            ),
        }
    }
}

/// The record of a high-level operation: ids created plus the concrete
/// basic-operator script that was applied (Table 11's right-hand side).
#[derive(Debug, Clone)]
pub struct EvolutionOutcome {
    /// Member versions created by the operation, in creation order.
    pub created: Vec<MemberVersionId>,
    /// The basic operators applied, in order.
    pub script: Vec<BasicOp>,
}

impl EvolutionOutcome {
    /// Renders the script in Table 11 notation, one operator per line.
    pub fn render(&self, tmd: &Tmd) -> String {
        self.script
            .iter()
            .map(|op| format!("- {}", op.render(tmd)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Specification of one part created by a [`split`]: its name and the
/// per-measure mapping in each direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPart {
    /// Name of the new member.
    pub name: String,
    /// `F`: old data onto this part (per measure).
    pub forward: Vec<MeasureMapping>,
    /// `F⁻¹`: this part's data back onto the old member (per measure).
    pub backward: Vec<MeasureMapping>,
}

impl SplitPart {
    /// A part receiving fraction `k` of every measure (approximate
    /// forward, exact identity backward) — the paper's Example 6 pattern.
    pub fn proportional(name: impl Into<String>, k: f64, measures: usize) -> Self {
        SplitPart {
            name: name.into(),
            forward: vec![MeasureMapping::approx_scale(k); measures],
            backward: vec![MeasureMapping::EXACT_IDENTITY; measures],
        }
    }
}

/// Specification of one source consumed by a [`merge`].
#[derive(Debug, Clone, PartialEq)]
pub struct MergeSource {
    /// The member version being merged away.
    pub id: MemberVersionId,
    /// `F`: this source's data onto the merged member (per measure).
    pub forward: Vec<MeasureMapping>,
    /// `F⁻¹`: merged data back onto this source (per measure).
    pub backward: Vec<MeasureMapping>,
}

impl MergeSource {
    /// A source contributing identically forward and receiving fraction
    /// `k` (approximate) of the merged member backward — Table 11's merge
    /// pattern for known shares.
    pub fn with_share(id: MemberVersionId, k: f64, measures: usize) -> Self {
        MergeSource {
            id,
            forward: vec![MeasureMapping::EXACT_IDENTITY; measures],
            backward: vec![MeasureMapping::approx_scale(k); measures],
        }
    }

    /// A source whose backward mapping is unknown (`(-, uk)`).
    pub fn with_unknown_share(id: MemberVersionId, measures: usize) -> Self {
        MergeSource {
            id,
            forward: vec![MeasureMapping::EXACT_IDENTITY; measures],
            backward: vec![MeasureMapping::UNKNOWN; measures],
        }
    }
}

/// *Creation of a dimension member* at `at` under `parents`
/// (Table 11, first pattern).
///
/// # Errors
///
/// Propagates basic-operator failures.
pub fn create(
    tmd: &mut Tmd,
    dim: DimensionId,
    name: impl Into<String>,
    level: Option<String>,
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    let op = BasicOp::Insert {
        dim,
        name: name.into(),
        attributes: BTreeMap::new(),
        level,
        ti: at,
        tf: None,
        parents: parents.to_vec(),
        children: Vec::new(),
    };
    let id = op.apply(tmd)?.expect("insert returns an id");
    Ok(EvolutionOutcome {
        created: vec![id],
        script: vec![op],
    })
}

/// *Deletion of a dimension member* at `at`.
///
/// # Errors
///
/// Propagates basic-operator failures.
pub fn delete(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    at: Instant,
) -> Result<EvolutionOutcome> {
    let op = BasicOp::Exclude { dim, id, at };
    op.apply(tmd)?;
    Ok(EvolutionOutcome {
        created: Vec::new(),
        script: vec![op],
    })
}

/// *Transformation of a member* (change of name, attribute or meaning)
/// at `at`: the old version closes, an equivalent new version opens under
/// the same parents, linked by an exact-identity equivalence mapping
/// (Table 11, second pattern).
///
/// # Errors
///
/// Propagates basic-operator failures.
pub fn transform(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    new_name: impl Into<String>,
    new_attributes: BTreeMap<String, String>,
    at: Instant,
) -> Result<EvolutionOutcome> {
    let measures = tmd.measures().len();
    let (level, parents) = {
        let d = tmd.dimension(dim)?;
        let v = d.version(id)?;
        (v.level.clone(), d.parents_at(id, at.pred()))
    };
    let exclude = BasicOp::Exclude { dim, id, at };
    exclude.apply(tmd)?;
    let insert = BasicOp::Insert {
        dim,
        name: new_name.into(),
        attributes: new_attributes,
        level,
        ti: at,
        tf: None,
        parents,
        children: Vec::new(),
    };
    let new_id = insert.apply(tmd)?.expect("insert returns an id");
    let associate = BasicOp::Associate {
        dim,
        rel: MappingRelationship::equivalence(id, new_id, measures),
    };
    associate.apply(tmd)?;
    Ok(EvolutionOutcome {
        created: vec![new_id],
        script: vec![exclude, insert, associate],
    })
}

/// *Merging of n members into one member* at `at` (Table 11, third
/// pattern): sources are excluded, the merged member inserted under
/// `parents`, and one mapping relationship associated per source.
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] on an empty source list; otherwise
/// propagates basic-operator failures.
pub fn merge(
    tmd: &mut Tmd,
    dim: DimensionId,
    sources: &[MergeSource],
    new_name: impl Into<String>,
    level: Option<String>,
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    if sources.is_empty() {
        return Err(CoreError::InvalidEvolution(
            "merge requires at least one source".into(),
        ));
    }
    let mut script = Vec::with_capacity(sources.len() * 2 + 1);
    for s in sources {
        let op = BasicOp::Exclude { dim, id: s.id, at };
        op.apply(tmd)?;
        script.push(op);
    }
    let insert = BasicOp::Insert {
        dim,
        name: new_name.into(),
        attributes: BTreeMap::new(),
        level,
        ti: at,
        tf: None,
        parents: parents.to_vec(),
        children: Vec::new(),
    };
    let merged = insert.apply(tmd)?.expect("insert returns an id");
    script.push(insert);
    for s in sources {
        let op = BasicOp::Associate {
            dim,
            rel: MappingRelationship {
                from: s.id,
                to: merged,
                forward: s.forward.clone(),
                backward: s.backward.clone(),
            },
        };
        op.apply(tmd)?;
        script.push(op);
    }
    Ok(EvolutionOutcome {
        created: vec![merged],
        script,
    })
}

/// *Splitting of one member into n members* at `at` — the paper's 2003
/// case-study evolution.
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] on an empty part list; otherwise
/// propagates basic-operator failures.
pub fn split(
    tmd: &mut Tmd,
    dim: DimensionId,
    source: MemberVersionId,
    parts: &[SplitPart],
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    if parts.is_empty() {
        return Err(CoreError::InvalidEvolution(
            "split requires at least one part".into(),
        ));
    }
    let level = tmd.dimension(dim)?.version(source)?.level.clone();
    let exclude = BasicOp::Exclude {
        dim,
        id: source,
        at,
    };
    exclude.apply(tmd)?;
    let mut script = vec![exclude];
    let mut created = Vec::with_capacity(parts.len());
    for p in parts {
        let insert = BasicOp::Insert {
            dim,
            name: p.name.clone(),
            attributes: BTreeMap::new(),
            level: level.clone(),
            ti: at,
            tf: None,
            parents: parents.to_vec(),
            children: Vec::new(),
        };
        let id = insert.apply(tmd)?.expect("insert returns an id");
        script.push(insert);
        created.push(id);
    }
    for (p, &id) in parts.iter().zip(&created) {
        let op = BasicOp::Associate {
            dim,
            rel: MappingRelationship {
                from: source,
                to: id,
                forward: p.forward.clone(),
                backward: p.backward.clone(),
            },
        };
        op.apply(tmd)?;
        script.push(op);
    }
    Ok(EvolutionOutcome { created, script })
}

/// *Reclassification of a member* (a pure structure change — same member
/// version, new parents).
///
/// # Errors
///
/// Propagates basic-operator failures.
pub fn reclassify(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    at: Instant,
    old_parents: &[MemberVersionId],
    new_parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    let op = BasicOp::Reclassify {
        dim,
        id,
        ti: at,
        tf: None,
        old_parents: old_parents.to_vec(),
        new_parents: new_parents.to_vec(),
    };
    op.apply(tmd)?;
    Ok(EvolutionOutcome {
        created: Vec::new(),
        script: vec![op],
    })
}

/// *Confidence change*: revises the per-measure mappings (functions
/// and/or confidence factors) of an existing mapping relationship
/// `from → to`. The paper treats mapping functions as "based on knowledge
/// around evolution operations"; that knowledge improves over time — an
/// unknown backward share becomes an estimate, an approximation becomes
/// exact — and this operator records the revision in the evolution log
/// without touching the structure.
///
/// # Errors
///
/// [`CoreError::MappingNotFound`] when the relationship does not exist,
/// [`CoreError::MappingArityMismatch`] on a wrong per-measure arity.
pub fn change_confidence(
    tmd: &mut Tmd,
    dim: DimensionId,
    from: MemberVersionId,
    to: MemberVersionId,
    forward: Vec<MeasureMapping>,
    backward: Vec<MeasureMapping>,
) -> Result<()> {
    let (from_name, to_name, at) = {
        let d = tmd.dimension(dim)?;
        (
            d.version(from)?.name.clone(),
            d.version(to)?.name.clone(),
            d.version(to)?.validity.start(),
        )
    };
    tmd.set_mapping(dim, from, to, forward, backward)?;
    tmd.record_evolution(EvolutionEntry {
        dimension: dim,
        subjects: vec![from, to],
        at,
        operator: "confidence",
        description: format!("revised mapping '{from_name}' -> '{to_name}'"),
    });
    Ok(())
}

/// Complex operation *Increase* (Table 11): member `id` becomes a larger
/// `new_name`, values scaling by `factor` (approximate both ways).
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] for a non-positive factor; otherwise
/// propagates basic-operator failures.
pub fn increase(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    new_name: impl Into<String>,
    factor: f64,
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    if factor <= 0.0 {
        return Err(CoreError::InvalidEvolution(format!(
            "increase factor must be positive, got {factor}"
        )));
    }
    let measures = tmd.measures().len();
    let level = tmd.dimension(dim)?.version(id)?.level.clone();
    let exclude = BasicOp::Exclude { dim, id, at };
    exclude.apply(tmd)?;
    let insert = BasicOp::Insert {
        dim,
        name: new_name.into(),
        attributes: BTreeMap::new(),
        level,
        ti: at,
        tf: None,
        parents: parents.to_vec(),
        children: Vec::new(),
    };
    let new_id = insert.apply(tmd)?.expect("insert returns an id");
    let associate = BasicOp::Associate {
        dim,
        rel: MappingRelationship::uniform(
            id,
            new_id,
            MeasureMapping::approx_scale(factor),
            MeasureMapping::approx_scale(1.0 / factor),
            measures,
        ),
    };
    associate.apply(tmd)?;
    Ok(EvolutionOutcome {
        created: vec![new_id],
        script: vec![exclude, insert, associate],
    })
}

/// Complex operation *Decrease* (splitting followed by a deletion): the
/// member shrinks to `kept_fraction` of itself under a new name; the
/// severed remainder simply disappears.
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] for a fraction outside `(0, 1]`;
/// otherwise propagates basic-operator failures.
pub fn decrease(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    new_name: impl Into<String>,
    kept_fraction: f64,
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    if !(kept_fraction > 0.0 && kept_fraction <= 1.0) {
        return Err(CoreError::InvalidEvolution(format!(
            "kept fraction must be in (0, 1], got {kept_fraction}"
        )));
    }
    let measures = tmd.measures().len();
    let part = SplitPart {
        name: new_name.into(),
        forward: vec![MeasureMapping::approx_scale(kept_fraction); measures],
        backward: vec![MeasureMapping::EXACT_IDENTITY; measures],
    };
    split(tmd, dim, id, std::slice::from_ref(&part), at, parents)
}

/// Parameters of a [`partial_annexation`]: fractions in the Table 11
/// example read `PartialAnnexationSpec { moved: 0.1, target_growth: 0.2 }`
/// ("10 % of the measure of V1 will go for V2, what is an increasing of
/// 20 % for V2").
#[derive(Debug, Clone, Copy)]
pub struct PartialAnnexationSpec {
    /// Fraction of the source member's measures moved away.
    pub moved: f64,
    /// Relative growth of the target member.
    pub target_growth: f64,
}

/// Complex operation *Partial annexation* (splitting followed by a
/// merging, Table 11's last pattern): a portion of `v1` moves into `v2`,
/// producing successors `v1_minus_name` and `v2_plus_name`.
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] for fractions outside `(0, 1)` /
/// non-positive growth; otherwise propagates basic-operator failures.
#[allow(clippy::too_many_arguments)]
pub fn partial_annexation(
    tmd: &mut Tmd,
    dim: DimensionId,
    v1: MemberVersionId,
    v2: MemberVersionId,
    v1_minus_name: impl Into<String>,
    v2_plus_name: impl Into<String>,
    spec: PartialAnnexationSpec,
    at: Instant,
    parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    if !(spec.moved > 0.0 && spec.moved < 1.0) || spec.target_growth <= 0.0 {
        return Err(CoreError::InvalidEvolution(format!(
            "invalid partial annexation fractions: moved {}, growth {}",
            spec.moved, spec.target_growth
        )));
    }
    let measures = tmd.measures().len();
    let (level1, level2) = {
        let d = tmd.dimension(dim)?;
        (d.version(v1)?.level.clone(), d.version(v2)?.level.clone())
    };
    let ex1 = BasicOp::Exclude { dim, id: v1, at };
    ex1.apply(tmd)?;
    let ex2 = BasicOp::Exclude { dim, id: v2, at };
    ex2.apply(tmd)?;
    let ins1 = BasicOp::Insert {
        dim,
        name: v1_minus_name.into(),
        attributes: BTreeMap::new(),
        level: level1,
        ti: at,
        tf: None,
        parents: parents.to_vec(),
        children: Vec::new(),
    };
    let v1m = ins1.apply(tmd)?.expect("insert returns an id");
    let ins2 = BasicOp::Insert {
        dim,
        name: v2_plus_name.into(),
        attributes: BTreeMap::new(),
        level: level2,
        ti: at,
        tf: None,
        parents: parents.to_vec(),
        children: Vec::new(),
    };
    let v2p = ins2.apply(tmd)?.expect("insert returns an id");
    // Table 11: V1 keeps (1 - moved) of itself (exact backward); V2 maps
    // identically into V2+ whose backward shrinks by the growth; the
    // annexed share crosses from V1 to V2+.
    let a1 = BasicOp::Associate {
        dim,
        rel: MappingRelationship::uniform(
            v1,
            v1m,
            MeasureMapping::approx_scale(1.0 - spec.moved),
            MeasureMapping::EXACT_IDENTITY,
            measures,
        ),
    };
    a1.apply(tmd)?;
    let a2 = BasicOp::Associate {
        dim,
        rel: MappingRelationship::uniform(
            v2,
            v2p,
            MeasureMapping::EXACT_IDENTITY,
            MeasureMapping::approx_scale(1.0 / (1.0 + spec.target_growth)),
            measures,
        ),
    };
    a2.apply(tmd)?;
    let a3 = BasicOp::Associate {
        dim,
        rel: MappingRelationship::uniform(
            v1,
            v2p,
            MeasureMapping::approx_scale(spec.moved),
            MeasureMapping::approx_scale(spec.target_growth / (1.0 + spec.target_growth)),
            measures,
        ),
    };
    a3.apply(tmd)?;
    Ok(EvolutionOutcome {
        created: vec![v1m, v2p],
        script: vec![ex1, ex2, ins1, ins2, a1, a2, a3],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::MeasureDef;
    use mvolap_temporal::Granularity;

    /// A minimal one-dimension schema with a root division and two leaf
    /// departments.
    fn base() -> (
        Tmd,
        DimensionId,
        MemberVersionId,
        MemberVersionId,
        MemberVersionId,
    ) {
        let mut tmd = Tmd::new("t", Granularity::Month);
        let mut d = crate::dimension::TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let p = d.add_version(MemberVersionSpec::named("P1").at_level("Division"), all);
        let v1 = d.add_version(MemberVersionSpec::named("V1").at_level("Department"), all);
        let v2 = d.add_version(MemberVersionSpec::named("V2").at_level("Department"), all);
        d.add_relationship(v1, p, all).unwrap();
        d.add_relationship(v2, p, all).unwrap();
        let dim = tmd.add_dimension(d).unwrap();
        tmd.add_measure(MeasureDef::summed("m1")).unwrap();
        (tmd, dim, p, v1, v2)
    }

    #[test]
    fn create_inserts_under_parent() {
        let (mut tmd, dim, p, ..) = base();
        let t = Instant::ym(2003, 1);
        let out = create(&mut tmd, dim, "V", Some("Department".into()), t, &[p]).unwrap();
        assert_eq!(out.script.len(), 1);
        let id = out.created[0];
        assert_eq!(tmd.dimension(dim).unwrap().parents_at(id, t), vec![p]);
        assert_eq!(tmd.evolution_log().entries().len(), 1);
    }

    #[test]
    fn transform_closes_old_opens_new_with_equivalence() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let out = transform(&mut tmd, dim, v1, "V1'", BTreeMap::new(), t).unwrap();
        assert_eq!(out.script.len(), 3);
        let new_id = out.created[0];
        let d = tmd.dimension(dim).unwrap();
        assert_eq!(d.version(v1).unwrap().validity.end(), Instant::ym(2002, 12));
        assert_eq!(d.version(new_id).unwrap().name, "V1'");
        assert_eq!(d.parents_at(new_id, t), vec![p]);
        // Equivalence mapping registered.
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].forward[0], MeasureMapping::EXACT_IDENTITY);
    }

    #[test]
    fn merge_matches_table_11_pattern() {
        // Table 11: merge V1 and V2 into V12; half of V12's values map
        // back to V1 approximately, V12 -> V2 unknown.
        let (mut tmd, dim, p, v1, v2) = base();
        let t = Instant::ym(2003, 1);
        let sources = [
            MergeSource::with_share(v1, 0.5, 1),
            MergeSource::with_unknown_share(v2, 1),
        ];
        let out = merge(
            &mut tmd,
            dim,
            &sources,
            "V12",
            Some("Department".into()),
            t,
            &[p],
        )
        .unwrap();
        // Exclude, Exclude, Insert, Associate, Associate.
        assert_eq!(out.script.len(), 5);
        let ops: Vec<&str> = out.script.iter().map(BasicOp::operator).collect();
        assert_eq!(
            ops,
            vec!["Exclude", "Exclude", "Insert", "Associate", "Associate"]
        );
        let d = tmd.dimension(dim).unwrap();
        assert_eq!(d.version(v1).unwrap().validity.end(), Instant::ym(2002, 12));
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels.len(), 2);
        assert_eq!(rels[0].backward[0], MeasureMapping::approx_scale(0.5));
        assert_eq!(rels[1].backward[0], MeasureMapping::UNKNOWN);
    }

    #[test]
    fn split_reproduces_case_study_evolution() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let parts = [
            SplitPart::proportional("V1a", 0.4, 1),
            SplitPart::proportional("V1b", 0.6, 1),
        ];
        let out = split(&mut tmd, dim, v1, &parts, t, &[p]).unwrap();
        assert_eq!(out.created.len(), 2);
        assert_eq!(out.script.len(), 5);
        let d = tmd.dimension(dim).unwrap();
        // New parts inherit the level of the source.
        assert_eq!(
            d.version(out.created[0]).unwrap().level.as_deref(),
            Some("Department")
        );
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels[0].forward[0], MeasureMapping::approx_scale(0.4));
        assert_eq!(rels[1].forward[0], MeasureMapping::approx_scale(0.6));
    }

    #[test]
    fn increase_scales_both_ways() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let out = increase(&mut tmd, dim, v1, "V1+", 2.0, t, &[p]).unwrap();
        assert_eq!(out.script.len(), 3);
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels[0].forward[0], MeasureMapping::approx_scale(2.0));
        assert_eq!(rels[0].backward[0], MeasureMapping::approx_scale(0.5));
        assert!(increase(&mut tmd, dim, v1, "x", 0.0, t, &[p]).is_err());
    }

    #[test]
    fn decrease_is_split_then_delete() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let out = decrease(&mut tmd, dim, v1, "V1-", 0.9, t, &[p]).unwrap();
        assert_eq!(out.created.len(), 1);
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels[0].forward[0], MeasureMapping::approx_scale(0.9));
        assert!(decrease(&mut tmd, dim, v1, "x", 1.5, t, &[p]).is_err());
    }

    #[test]
    fn partial_annexation_matches_table_11() {
        let (mut tmd, dim, p, v1, v2) = base();
        let t = Instant::ym(2003, 1);
        let out = partial_annexation(
            &mut tmd,
            dim,
            v1,
            v2,
            "V1-",
            "V2+",
            PartialAnnexationSpec {
                moved: 0.1,
                target_growth: 0.2,
            },
            t,
            &[p],
        )
        .unwrap();
        assert_eq!(out.script.len(), 7);
        let ops: Vec<&str> = out.script.iter().map(BasicOp::operator).collect();
        assert_eq!(
            ops,
            vec![
                "Exclude",
                "Exclude",
                "Insert",
                "Insert",
                "Associate",
                "Associate",
                "Associate"
            ]
        );
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels.len(), 3);
        // V1 -> V1-: 0.9 approx forward, identity exact backward.
        assert_eq!(rels[0].forward[0], MeasureMapping::approx_scale(0.9));
        assert_eq!(rels[0].backward[0], MeasureMapping::EXACT_IDENTITY);
        // V2 -> V2+: identity exact fwd, ~0.83 approx backward (the paper
        // rounds to 0.8).
        assert_eq!(rels[1].forward[0], MeasureMapping::EXACT_IDENTITY);
        let bwd = rels[1].backward[0];
        assert!(
            matches!(bwd.func, crate::mapping::MappingFunction::Scale(k) if (k - 1.0/1.2).abs() < 1e-12)
        );
        // V1 -> V2+: 0.1 approx forward, ~0.167 approx backward.
        assert_eq!(rels[2].forward[0], MeasureMapping::approx_scale(0.1));
    }

    #[test]
    fn change_confidence_revises_mapping_in_place() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let sources = [MergeSource::with_unknown_share(v1, 1)];
        let out = merge(&mut tmd, dim, &sources, "V12", None, t, &[p]).unwrap();
        let merged = out.created[0];
        // Knowledge improves: the unknown backward share becomes a 0.5
        // approximation.
        change_confidence(
            &mut tmd,
            dim,
            v1,
            merged,
            vec![MeasureMapping::EXACT_IDENTITY],
            vec![MeasureMapping::approx_scale(0.5)],
        )
        .unwrap();
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels[0].backward[0], MeasureMapping::approx_scale(0.5));
        let log = tmd.evolution_log().entries();
        assert_eq!(log.last().unwrap().operator, "confidence");
        // Arity and existence are validated.
        assert!(matches!(
            change_confidence(&mut tmd, dim, v1, merged, vec![], vec![]),
            Err(CoreError::MappingArityMismatch { .. })
        ));
        assert!(matches!(
            change_confidence(
                &mut tmd,
                dim,
                merged,
                v1,
                vec![MeasureMapping::EXACT_IDENTITY],
                vec![MeasureMapping::EXACT_IDENTITY],
            ),
            Err(CoreError::MappingNotFound { .. })
        ));
    }

    #[test]
    fn reclassify_records_log() {
        let (mut tmd, dim, p, v1, _) = base();
        // Add a second division to move into.
        let p2 = tmd
            .add_version(
                dim,
                MemberVersionSpec::named("P2").at_level("Division"),
                Interval::since(Instant::ym(2001, 1)),
            )
            .unwrap();
        reclassify(&mut tmd, dim, v1, Instant::ym(2002, 1), &[p], &[p2]).unwrap();
        let d = tmd.dimension(dim).unwrap();
        assert_eq!(d.parents_at(v1, Instant::ym(2002, 6)), vec![p2]);
        let log = tmd.evolution_log().describe(dim, v1);
        assert!(log.contains("[reclassify]"));
    }

    #[test]
    fn script_rendering_is_table_11_style() {
        let (mut tmd, dim, p, v1, _) = base();
        let t = Instant::ym(2003, 1);
        let parts = [
            SplitPart::proportional("V1a", 0.4, 1),
            SplitPart::proportional("V1b", 0.6, 1),
        ];
        let out = split(&mut tmd, dim, v1, &parts, t, &[p]).unwrap();
        let text = out.render(&tmd);
        assert!(text.contains("- Exclude(Org, idV1, 01/2003)"));
        assert!(text.contains("- Insert(Org, idV1a, V1a, 01/2003, {idP1}, ∅)"));
        assert!(text.contains("Associate(idV1, idV1a, {(x->0.4*x,am)}, {(x->x,em)})"));
    }
}
