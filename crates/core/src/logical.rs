//! Logical-level adaptation (paper §4) and relational export (§5).
//!
//! Commercial OLAP servers know only dimensions and fact tables, so the
//! paper maps its conceptual notions down:
//!
//! * the TMP set becomes a **flat dimension** ([`export_tmp_dimension`]);
//! * confidence factors become **measures** (physical codes 3/2/1/4) in
//!   the exported multiversion fact table
//!   ([`export_multiversion_fact`]);
//! * `Reclassify` is **rewritten as a transformation**
//!   ([`reclassify_as_transform`]) because commercial tools store
//!   hierarchy links as foreign keys inside members: the member is
//!   re-versioned with a new hierarchical-link attribute, and all its
//!   descendants are re-versioned recursively (§4.2's acknowledged
//!   downside);
//! * dimensions export to the three physical layouts §5.1 discusses:
//!   **star** (denormalised, [`export_star`]), **snowflake**
//!   (normalised per level, [`export_snowflake`]) and **parent-child**
//!   ([`export_parent_child`], which rejects multiple hierarchies —
//!   the documented limitation of that layout);
//! * the mapping relations export to the §5.2 metadata table, Table 12
//!   ([`export_mapping_relations`]).
//!
//! [`build_multiversion_warehouse`] assembles the whole §5.1 middle tier.

use mvolap_storage::{Catalog, ColumnDef, DataType, Table, TableSchema, Value};
use mvolap_temporal::Instant;

use crate::dimension::TemporalDimension;
use crate::error::{CoreError, Result};
use crate::evolution::{BasicOp, EvolutionOutcome};
use crate::ids::{DimensionId, MemberVersionId};
use crate::levels::{ancestors_at_level, levels_at};
use crate::mapping::MappingRelationship;
use crate::member::MemberVersionSpec;
use crate::multiversion::MultiVersionFactTable;
use crate::schema::Tmd;
use crate::structure_version::StructureVersion;
use crate::tmp::{all_modes, TemporalMode};

/// Renders an instant for relational storage (month granularity labels,
/// `Now` spelled out).
fn instant_str(t: Instant, tmd: &Tmd) -> String {
    t.display(tmd.granularity())
}

/// §4.2: `Reclassify` re-expressed for tools whose hierarchy is a
/// foreign-key attribute — `Insert` a new version with the new parents
/// (and the same children), `Exclude` the old one, `Associate` them with
/// a source-data identity mapping; then recursively re-version every
/// descendant so its hierarchical-link attribute follows.
///
/// Returns the created version ids (the reclassified member first,
/// descendants in breadth-first order) and the full basic-operator
/// script.
///
/// # Errors
///
/// Propagates basic-operator failures.
pub fn reclassify_as_transform(
    tmd: &mut Tmd,
    dim: DimensionId,
    id: MemberVersionId,
    at: Instant,
    old_parents: &[MemberVersionId],
    new_parents: &[MemberVersionId],
) -> Result<EvolutionOutcome> {
    let measures = tmd.measures().len();
    let mut created = Vec::new();
    let mut script = Vec::new();

    // Work list of (member to re-version, its new parent set).
    let mut queue: Vec<(MemberVersionId, Vec<MemberVersionId>)> = Vec::new();
    {
        let d = tmd.dimension(dim)?;
        let current: Vec<MemberVersionId> = d.parents_at(id, at.pred());
        let mut parents: Vec<MemberVersionId> = current
            .into_iter()
            .filter(|p| !old_parents.contains(p))
            .collect();
        parents.extend_from_slice(new_parents);
        queue.push((id, parents));
    }

    while let Some((old_id, parents)) = queue.pop() {
        let (name, attributes, level, children) = {
            let d = tmd.dimension(dim)?;
            let v = d.version(old_id)?;
            (
                v.name.clone(),
                v.attributes.clone(),
                v.level.clone(),
                d.children_at(old_id, at.pred()),
            )
        };
        let insert = BasicOp::Insert {
            dim,
            name,
            attributes,
            level,
            ti: at,
            tf: None,
            parents,
            // Children are re-versioned below; the fresh parent gets its
            // fresh children wired as their own inserts name it.
            children: Vec::new(),
        };
        let new_id = insert.apply(tmd)?.expect("insert returns an id");
        script.push(insert);
        let exclude = BasicOp::Exclude {
            dim,
            id: old_id,
            at,
        };
        exclude.apply(tmd)?;
        script.push(exclude);
        // Only leaf member versions may carry mapping relationships
        // (Definition 7); interior nodes aggregate from their children.
        if tmd.dimension(dim)?.is_ever_leaf(old_id) && tmd.dimension(dim)?.is_ever_leaf(new_id) {
            let associate = BasicOp::Associate {
                dim,
                rel: MappingRelationship::uniform(
                    old_id,
                    new_id,
                    crate::mapping::MeasureMapping::SOURCE_IDENTITY,
                    crate::mapping::MeasureMapping::SOURCE_IDENTITY,
                    measures,
                ),
            };
            associate.apply(tmd)?;
            script.push(associate);
        }
        created.push(new_id);
        // §4.2: every descendant must be re-versioned under the new
        // version of its parent.
        for child in children {
            queue.push((child, vec![new_id]));
        }
    }
    Ok(EvolutionOutcome { created, script })
}

/// Exports one dimension in the **parent-child** layout (§5.1): a single
/// table `(mv_id, member, level, parent_id, valid_from, valid_to)` with
/// one row per (member version, parent spell), `NULL` parent for roots.
///
/// # Errors
///
/// [`CoreError::Storage`] when the dimension uses multiple hierarchies
/// (a member with two simultaneous parents) — the layout's documented
/// limitation — or on storage-schema failures.
pub fn export_parent_child(tmd: &Tmd, dim: DimensionId) -> Result<Table> {
    let d = tmd.dimension(dim)?;
    // Reject simultaneous multi-parent members.
    for v in d.versions() {
        let edges: Vec<_> = d
            .relationships()
            .iter()
            .filter(|r| r.child == v.id)
            .collect();
        for (i, a) in edges.iter().enumerate() {
            for b in &edges[i + 1..] {
                if a.validity.overlaps(b.validity) {
                    return Err(CoreError::Storage(format!(
                        "parent-child layout does not support multiple hierarchies: \
                         member '{}' has simultaneous parents",
                        v.name
                    )));
                }
            }
        }
    }
    let schema = TableSchema::new(vec![
        ColumnDef::required("mv_id", DataType::Int),
        ColumnDef::required("member", DataType::Str),
        ColumnDef::nullable("level", DataType::Str),
        ColumnDef::nullable("parent_id", DataType::Int),
        ColumnDef::required("valid_from", DataType::Str),
        ColumnDef::required("valid_to", DataType::Str),
    ])
    .map_err(CoreError::from)?;
    let mut table = Table::new(format!("dim_{}_parent_child", d.name()), schema);
    for v in d.versions() {
        let edges: Vec<_> = d
            .relationships()
            .iter()
            .filter(|r| r.child == v.id)
            .collect();
        if edges.is_empty() {
            table
                .push_row(vec![
                    (v.id.0 as i64).into(),
                    v.name.clone().into(),
                    v.level.clone().map(Value::from).unwrap_or(Value::Null),
                    Value::Null,
                    instant_str(v.validity.start(), tmd).into(),
                    instant_str(v.validity.end(), tmd).into(),
                ])
                .map_err(CoreError::from)?;
        } else {
            for e in edges {
                table
                    .push_row(vec![
                        (v.id.0 as i64).into(),
                        v.name.clone().into(),
                        v.level.clone().map(Value::from).unwrap_or(Value::Null),
                        (e.parent.0 as i64).into(),
                        instant_str(e.validity.start(), tmd).into(),
                        instant_str(e.validity.end(), tmd).into(),
                    ])
                    .map_err(CoreError::from)?;
            }
        }
    }
    Ok(table)
}

/// Exports one dimension in the **star** (denormalised) layout: one row
/// per *hierarchy spell* of each leaf member version, with one
/// hierarchical-link column per ancestor level — §4.2's representation
/// where a reclassification necessarily becomes a new row.
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_star(tmd: &Tmd, dim: DimensionId) -> Result<Table> {
    let d = tmd.dimension(dim)?;
    // Collect the level names across all of time, top-down, skipping the
    // leaf level itself.
    let mut level_names: Vec<String> = Vec::new();
    for t in boundary_instants(d) {
        let (_, levels) = levels_at(d, t);
        for (i, l) in levels.iter().enumerate() {
            if i + 1 == levels.len() {
                continue; // leaf level holds the members themselves
            }
            if !level_names.contains(&l.name) {
                level_names.push(l.name.clone());
            }
        }
    }
    let mut defs = vec![
        ColumnDef::required("mv_id", DataType::Int),
        ColumnDef::required("member", DataType::Str),
    ];
    for l in &level_names {
        defs.push(ColumnDef::nullable(l.clone(), DataType::Str));
    }
    defs.push(ColumnDef::required("valid_from", DataType::Str));
    defs.push(ColumnDef::required("valid_to", DataType::Str));
    let schema = TableSchema::new(defs).map_err(CoreError::from)?;
    let mut table = Table::new(format!("dim_{}_star", d.name()), schema);

    for &leaf in &d.leaf_versions() {
        let v = d.version(leaf)?;
        // Partition the leaf's validity by its parent-edge boundaries:
        // each spell is one denormalised row.
        let mut spells: Vec<mvolap_temporal::Interval> = vec![v.validity];
        let edge_bounds: Vec<Instant> = d
            .relationships()
            .iter()
            .filter(|r| r.child == leaf)
            .flat_map(|r| [r.validity.start(), r.validity.end().succ()])
            .collect();
        for b in edge_bounds {
            if b.is_forever() {
                continue; // an open edge never closes: no boundary
            }
            let mut next = Vec::with_capacity(spells.len() + 1);
            for s in spells {
                if s.contains(b) && s.start() != b {
                    next.push(mvolap_temporal::Interval::of(s.start(), b.pred()));
                    next.push(mvolap_temporal::Interval::of(b, s.end()));
                } else {
                    next.push(s);
                }
            }
            spells = next;
        }
        spells.sort_by_key(|s| s.start());
        for spell in spells {
            let probe = spell.start();
            let mut row: Vec<Value> = vec![(leaf.0 as i64).into(), v.name.clone().into()];
            for level in &level_names {
                let ancestors = ancestors_at_level(d, leaf, level, probe).unwrap_or_default();
                match ancestors.first() {
                    Some(&a) => row.push(d.version(a)?.name.clone().into()),
                    None => row.push(Value::Null),
                }
            }
            row.push(instant_str(spell.start(), tmd).into());
            row.push(instant_str(spell.end(), tmd).into());
            table.push_row(row).map_err(CoreError::from)?;
        }
    }
    Ok(table)
}

/// Exports one dimension in the **snowflake** (normalised) layout: one
/// table per level, each row `(mv_id, member, parent_id, valid_from,
/// valid_to)` with the parent foreign key pointing into the level above.
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_snowflake(tmd: &Tmd, dim: DimensionId) -> Result<Vec<Table>> {
    let d = tmd.dimension(dim)?;
    let mut level_names: Vec<String> = Vec::new();
    for t in boundary_instants(d) {
        let (_, levels) = levels_at(d, t);
        for l in levels {
            if !level_names.contains(&l.name) {
                level_names.push(l.name.clone());
            }
        }
    }
    let mut tables = Vec::with_capacity(level_names.len());
    for name in &level_names {
        let schema = TableSchema::new(vec![
            ColumnDef::required("mv_id", DataType::Int),
            ColumnDef::required("member", DataType::Str),
            ColumnDef::nullable("parent_id", DataType::Int),
            ColumnDef::required("valid_from", DataType::Str),
            ColumnDef::required("valid_to", DataType::Str),
        ])
        .map_err(CoreError::from)?;
        let mut table = Table::new(format!("dim_{}_{}", d.name(), name), schema);
        for v in d.versions() {
            // A version belongs to the level it carries at its first
            // valid instant.
            let at = v.validity.start();
            let level = crate::levels::level_of(d, v.id, at);
            if level.as_deref() != Some(name.as_str()) {
                continue;
            }
            let parents = d.parents_at(v.id, at);
            let parent = parents
                .first()
                .map(|p| Value::Int(p.0 as i64))
                .unwrap_or(Value::Null);
            table
                .push_row(vec![
                    (v.id.0 as i64).into(),
                    v.name.clone().into(),
                    parent,
                    instant_str(v.validity.start(), tmd).into(),
                    instant_str(v.validity.end(), tmd).into(),
                ])
                .map_err(CoreError::from)?;
        }
        tables.push(table);
    }
    Ok(tables)
}

/// The instants at which a dimension's structure can change (starts of
/// all validities), used to enumerate levels across time.
fn boundary_instants(d: &TemporalDimension) -> Vec<Instant> {
    let mut points: Vec<Instant> = d
        .validity_intervals()
        .into_iter()
        .map(|iv| iv.start())
        .collect();
    points.sort_unstable();
    points.dedup();
    points
}

/// Exports the TMP set as the §4.1 **flat dimension**: one row per
/// temporal mode (`tcm` first), with the structure version's validity.
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_tmp_dimension(tmd: &Tmd, svs: &[StructureVersion]) -> Result<Table> {
    let schema = TableSchema::new(vec![
        ColumnDef::required("tmp_id", DataType::Int),
        ColumnDef::required("label", DataType::Str),
        ColumnDef::nullable("valid_from", DataType::Str),
        ColumnDef::nullable("valid_to", DataType::Str),
    ])
    .map_err(CoreError::from)?;
    let mut table = Table::new("dim_tmp", schema);
    for (i, mode) in all_modes(svs).into_iter().enumerate() {
        let (from, to) = match &mode {
            TemporalMode::Version(v) => {
                let sv = &svs[v.index()];
                (
                    Value::from(instant_str(sv.interval.start(), tmd)),
                    Value::from(instant_str(sv.interval.end(), tmd)),
                )
            }
            _ => (Value::Null, Value::Null),
        };
        table
            .push_row(vec![(i as i64).into(), mode.label().into(), from, to])
            .map_err(CoreError::from)?;
    }
    Ok(table)
}

/// Exports the inferred multiversion fact table with the §4.1 logical
/// encoding: the TMP as a flat dimension key, confidence factors as
/// physically coded measures (3/2/1/4).
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_multiversion_fact(tmd: &Tmd, mvft: &MultiVersionFactTable) -> Result<Table> {
    let mut defs = vec![ColumnDef::required("tmp_id", DataType::Int)];
    for d in tmd.dimensions() {
        defs.push(ColumnDef::required(
            format!("{}_id", d.name()),
            DataType::Int,
        ));
        defs.push(ColumnDef::required(
            format!("{}_member", d.name()),
            DataType::Str,
        ));
    }
    defs.push(ColumnDef::required("time", DataType::Str));
    for m in tmd.measures() {
        defs.push(ColumnDef::nullable(m.name.clone(), DataType::Float));
        defs.push(ColumnDef::required(format!("{}_cf", m.name), DataType::Int));
    }
    let schema = TableSchema::new(defs).map_err(CoreError::from)?;
    let mut table = Table::new("fact_multiversion", schema);
    for (tmp_id, p) in mvft.presentations().iter().enumerate() {
        for row in &p.rows {
            let mut values: Vec<Value> = vec![(tmp_id as i64).into()];
            for (d, &c) in tmd.dimensions().iter().zip(&row.coords) {
                values.push((c.0 as i64).into());
                values.push(d.version(c)?.name.clone().into());
            }
            values.push(instant_str(row.time, tmd).into());
            for cell in &row.cells {
                values.push(cell.value.map(Value::Float).unwrap_or(Value::Null));
                values.push(cell.confidence.physical_code().into());
            }
            table.push_row(values).map_err(CoreError::from)?;
        }
    }
    Ok(table)
}

/// Exports the §5.2 mapping-relations metadata table — paper Table 12:
/// one row per mapping relationship with the linear factor `k` of each
/// measure in both directions and the physically coded confidence of
/// each direction.
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_mapping_relations(tmd: &Tmd, dim: DimensionId) -> Result<Table> {
    let d = tmd.dimension(dim)?;
    let mut defs = vec![
        ColumnDef::required("From", DataType::Str),
        ColumnDef::required("To", DataType::Str),
    ];
    for m in tmd.measures() {
        defs.push(ColumnDef::nullable(
            format!("k for {}", m.name),
            DataType::Float,
        ));
    }
    for m in tmd.measures() {
        defs.push(ColumnDef::nullable(
            format!("k-1 for {}", m.name),
            DataType::Float,
        ));
    }
    defs.push(ColumnDef::required("Confidence", DataType::Int));
    defs.push(ColumnDef::required("Confidence-1", DataType::Int));
    let schema = TableSchema::new(defs).map_err(CoreError::from)?;
    let mut table = Table::new(format!("mapping_relations_{}", d.name()), schema);
    for rel in tmd.mapping_graph(dim)?.relationships() {
        let mut row: Vec<Value> = vec![
            d.version(rel.from)?.name.clone().into(),
            d.version(rel.to)?.name.clone().into(),
        ];
        for m in &rel.forward {
            row.push(
                m.func
                    .linear_factor()
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
            );
        }
        for m in &rel.backward {
            row.push(
                m.func
                    .linear_factor()
                    .map(Value::Float)
                    .unwrap_or(Value::Null),
            );
        }
        // The prototype stores one confidence per relation direction.
        let fwd_cf =
            crate::confidence::Confidence::combine_all(rel.forward.iter().map(|m| m.confidence));
        let bwd_cf =
            crate::confidence::Confidence::combine_all(rel.backward.iter().map(|m| m.confidence));
        row.push(fwd_cf.physical_code().into());
        row.push(bwd_cf.physical_code().into());
        table.push_row(row).map_err(CoreError::from)?;
    }
    Ok(table)
}

/// Exports the evolution log as a metadata table (§5.2's textual
/// descriptions of transformations).
///
/// # Errors
///
/// [`CoreError::Storage`] on storage-schema failures.
pub fn export_evolution_log(tmd: &Tmd) -> Result<Table> {
    let schema = TableSchema::new(vec![
        ColumnDef::required("dimension", DataType::Str),
        ColumnDef::required("at", DataType::Str),
        ColumnDef::required("operator", DataType::Str),
        ColumnDef::required("description", DataType::Str),
    ])
    .map_err(CoreError::from)?;
    let mut table = Table::new("meta_evolutions", schema);
    for e in tmd.evolution_log().entries() {
        let dname = tmd
            .dimension(e.dimension)
            .map(|d| d.name().to_owned())
            .unwrap_or_else(|_| format!("D{}", e.dimension.0));
        table
            .push_row(vec![
                dname.into(),
                instant_str(e.at, tmd).into(),
                e.operator.into(),
                e.description.clone().into(),
            ])
            .map_err(CoreError::from)?;
    }
    Ok(table)
}

/// Builds the §5.1 **MultiVersion Data Warehouse**: a catalog holding the
/// star dimension tables, the flat TMP dimension, the exported
/// multiversion fact table, the mapping-relations metadata and the
/// evolution log.
///
/// # Errors
///
/// Propagates inference and export failures.
pub fn build_multiversion_warehouse(tmd: &Tmd) -> Result<Catalog> {
    let svs = tmd.structure_versions();
    let mvft = MultiVersionFactTable::infer(tmd)?;
    let mut catalog = Catalog::new();
    for (i, _) in tmd.dimensions().iter().enumerate() {
        let dim = DimensionId(i as u32);
        catalog
            .create(export_star(tmd, dim)?)
            .map_err(CoreError::from)?;
        catalog
            .create(export_mapping_relations(tmd, dim)?)
            .map_err(CoreError::from)?;
    }
    catalog
        .create(export_tmp_dimension(tmd, &svs)?)
        .map_err(CoreError::from)?;
    catalog
        .create(export_multiversion_fact(tmd, &mvft)?)
        .map_err(CoreError::from)?;
    catalog
        .create(export_evolution_log(tmd)?)
        .map_err(CoreError::from)?;
    Ok(catalog)
}

/// Helper for building a fresh member-version spec during §4.2 rewrites.
#[allow(dead_code)]
fn respec(v: &crate::member::MemberVersion) -> MemberVersionSpec {
    MemberVersionSpec {
        name: v.name.clone(),
        attributes: v.attributes.clone(),
        level: v.level.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::{case_study, case_study_two_measures};
    use crate::confidence::Confidence;
    use mvolap_storage::Value;
    use mvolap_temporal::{Granularity, Interval};

    #[test]
    fn parent_child_export_rows() {
        let cs = case_study();
        let t = export_parent_child(&cs.tmd, cs.org).unwrap();
        // 2 divisions (no parent) + Jones(1 edge) + Smith(2 edges) +
        // Brian(1) + Bill(1) + Paul(1) = 8 rows.
        assert_eq!(t.len(), 8);
        // Roots carry NULL parents.
        let sales_row = t.rows().find(|r| r[1] == Value::from("Sales")).unwrap();
        assert_eq!(sales_row[3], Value::Null);
        // Smith has two parent spells.
        let smith_rows = t
            .rows()
            .filter(|r| r[1] == Value::from("Dpt.Smith"))
            .count();
        assert_eq!(smith_rows, 2);
    }

    #[test]
    fn parent_child_rejects_multi_hierarchy() {
        let mut tmd = Tmd::new("t", Granularity::Month);
        let mut d = TemporalDimension::new("M");
        let all = Interval::since(Instant::ym(2001, 1));
        let a = d.add_version(MemberVersionSpec::named("A"), all);
        let b = d.add_version(MemberVersionSpec::named("B"), all);
        let m = d.add_version(MemberVersionSpec::named("M"), all);
        d.add_relationship(m, a, all).unwrap();
        d.add_relationship(m, b, all).unwrap();
        let dim = tmd.add_dimension(d).unwrap();
        assert!(matches!(
            export_parent_child(&tmd, dim),
            Err(CoreError::Storage(_))
        ));
    }

    #[test]
    fn star_export_splits_smith_into_two_spells() {
        let cs = case_study();
        let t = export_star(&cs.tmd, cs.org).unwrap();
        assert_eq!(
            t.schema().names(),
            vec!["mv_id", "member", "Division", "valid_from", "valid_to"]
        );
        let smith: Vec<Vec<Value>> = t
            .rows()
            .filter(|r| r[1] == Value::from("Dpt.Smith"))
            .collect();
        // §4.2: the reclassification shows as two rows with different
        // hierarchical-link attributes.
        assert_eq!(smith.len(), 2);
        assert_eq!(smith[0][2], Value::from("Sales"));
        assert_eq!(smith[0][4], Value::from("12/2001"));
        assert_eq!(smith[1][2], Value::from("R&D"));
        assert_eq!(smith[1][3], Value::from("01/2002"));
        // Stable members keep a single row.
        let brian = t
            .rows()
            .filter(|r| r[1] == Value::from("Dpt.Brian"))
            .count();
        assert_eq!(brian, 1);
    }

    #[test]
    fn snowflake_export_one_table_per_level() {
        let cs = case_study();
        let tables = export_snowflake(&cs.tmd, cs.org).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name(), "dim_Org_Division");
        assert_eq!(tables[1].name(), "dim_Org_Department");
        assert_eq!(tables[0].len(), 2);
        assert_eq!(tables[1].len(), 5);
        // Departments carry a parent FK into divisions.
        let jones = tables[1]
            .rows()
            .find(|r| r[1] == Value::from("Dpt.Jones"))
            .unwrap();
        assert_eq!(jones[2], Value::Int(cs.sales.0 as i64));
    }

    #[test]
    fn tmp_dimension_is_flat_with_tcm_first() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let t = export_tmp_dimension(&cs.tmd, &svs).unwrap();
        assert_eq!(t.len(), 4);
        let first = t.row(0).unwrap();
        assert_eq!(first[1], Value::from("tcm"));
        assert_eq!(first[2], Value::Null);
        let second = t.row(1).unwrap();
        assert_eq!(second[1], Value::from("VS0"));
        assert_eq!(second[2], Value::from("01/2001"));
    }

    #[test]
    fn multiversion_fact_export_codes_confidence() {
        let cs = case_study();
        let mvft = MultiVersionFactTable::infer(&cs.tmd).unwrap();
        let t = export_multiversion_fact(&cs.tmd, &mvft).unwrap();
        assert_eq!(t.len(), mvft.total_rows());
        // tcm rows carry the source code 3.
        let tcm_rows: Vec<Vec<Value>> = t.rows().filter(|r| r[0] == Value::Int(0)).collect();
        assert_eq!(tcm_rows.len(), 10);
        assert!(tcm_rows.iter().all(|r| r[5] == Value::Int(3)));
        // Mapped rows exist with codes 2 (exact) and 1 (approx).
        let codes: Vec<i64> = t.rows().filter_map(|r| r[5].as_int()).collect();
        assert!(codes.contains(&2));
        assert!(codes.contains(&1));
    }

    #[test]
    fn mapping_relations_reproduce_table_12() {
        // Paper Table 12 with m1 = Turnover (0.6/0.4), m2 = Profit
        // (0.8/0.2), k-1 = 1, confidence 1 (am) / 2 (em).
        let cs = case_study_two_measures();
        let t = export_mapping_relations(&cs.tmd, cs.org).unwrap();
        assert_eq!(t.len(), 2);
        let rows: Vec<Vec<Value>> = t.rows().collect();
        // Row to Bill: k m1 = 0.4, k m2 = 0.2.
        let bill = rows
            .iter()
            .find(|r| r[1] == Value::from("Dpt.Bill"))
            .unwrap();
        assert_eq!(bill[0], Value::from("Dpt.Jones"));
        assert_eq!(bill[2], Value::Float(0.4));
        assert_eq!(bill[3], Value::Float(0.2));
        assert_eq!(bill[4], Value::Float(1.0));
        assert_eq!(bill[5], Value::Float(1.0));
        assert_eq!(bill[6], Value::Int(1)); // am
        assert_eq!(bill[7], Value::Int(2)); // em
        let paul = rows
            .iter()
            .find(|r| r[1] == Value::from("Dpt.Paul"))
            .unwrap();
        assert_eq!(paul[2], Value::Float(0.6));
        assert_eq!(paul[3], Value::Float(0.8));
    }

    #[test]
    fn reclassify_as_transform_reversions_descendants() {
        // Build Div1 > DeptA > {TeamX, TeamY}; reclassify DeptA under
        // Div2: DeptA, TeamX and TeamY all get new versions.
        let mut tmd = Tmd::new("t", Granularity::Month);
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let div1 = d.add_version(MemberVersionSpec::named("Div1").at_level("Division"), all);
        let div2 = d.add_version(MemberVersionSpec::named("Div2").at_level("Division"), all);
        let dept = d.add_version(
            MemberVersionSpec::named("DeptA").at_level("Department"),
            all,
        );
        let tx = d.add_version(MemberVersionSpec::named("TeamX").at_level("Team"), all);
        let ty = d.add_version(MemberVersionSpec::named("TeamY").at_level("Team"), all);
        d.add_relationship(dept, div1, all).unwrap();
        d.add_relationship(tx, dept, all).unwrap();
        d.add_relationship(ty, dept, all).unwrap();
        let dim = tmd.add_dimension(d).unwrap();
        tmd.add_measure(crate::fact::MeasureDef::summed("m"))
            .unwrap();

        let at = Instant::ym(2002, 1);
        let out = reclassify_as_transform(&mut tmd, dim, dept, at, &[div1], &[div2]).unwrap();
        // Three new versions: DeptA', TeamX', TeamY'.
        assert_eq!(out.created.len(), 3);
        let d = tmd.dimension(dim).unwrap();
        // Old versions closed at 12/2001.
        assert_eq!(
            d.version(dept).unwrap().validity.end(),
            Instant::ym(2001, 12)
        );
        assert_eq!(d.version(tx).unwrap().validity.end(), Instant::ym(2001, 12));
        // New DeptA sits under Div2.
        let new_dept = out.created[0];
        assert_eq!(d.parents_at(new_dept, at), vec![div2]);
        // New teams sit under the new DeptA.
        for &team in &out.created[1..] {
            assert_eq!(d.parents_at(team, at), vec![new_dept]);
        }
        // Leaf re-versions carry source-identity mappings.
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels.len(), 2); // the two teams (leaves); DeptA is interior
        assert!(rels
            .iter()
            .all(|r| r.forward[0].confidence == Confidence::Source));
    }

    #[test]
    fn warehouse_assembles_all_tables() {
        let cs = case_study();
        let wh = build_multiversion_warehouse(&cs.tmd).unwrap();
        let names = wh.table_names();
        assert!(names.contains(&"dim_Org_star"));
        assert!(names.contains(&"dim_tmp"));
        assert!(names.contains(&"fact_multiversion"));
        assert!(names.contains(&"mapping_relations_Org"));
        assert!(names.contains(&"meta_evolutions"));
        assert!(wh.get("fact_multiversion").unwrap().len() > 10);
    }

    #[test]
    fn evolution_log_exports() {
        let mut cs = case_study();
        crate::evolution::delete(&mut cs.tmd, cs.org, cs.brian, Instant::ym(2004, 1)).unwrap();
        let t = export_evolution_log(&cs.tmd).unwrap();
        assert_eq!(t.len(), 1);
        let row = t.row(0).unwrap();
        assert_eq!(row[0], Value::from("Org"));
        assert_eq!(row[2], Value::from("exclude"));
    }
}
