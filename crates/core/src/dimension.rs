//! Temporal dimensions (paper Definitions 2 and 3).
//!
//! A temporal dimension is a directed graph whose nodes are member
//! versions and whose arcs are temporal relationships (roll-up links with
//! valid time). At any instant `t`, the restriction `D(t)` to elements
//! valid at `t` must be a DAG — enforced incrementally when relationships
//! are added.

use std::collections::BTreeMap;

use mvolap_temporal::{Granularity, Instant, Interval};

use crate::error::{CoreError, Result};
use crate::ids::MemberVersionId;
use crate::member::{MemberVersion, MemberVersionSpec};

/// A *Temporal Relationship* `<Id_from, Id_to, ti, tf>`: an explicit
/// hierarchical link stating that `child` rolls up into `parent` during
/// `validity` (paper Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalRelationship {
    /// The child member version (`Id_from`).
    pub child: MemberVersionId,
    /// The parent member version (`Id_to`).
    pub parent: MemberVersionId,
    /// Valid time, necessarily included in the intersection of the two
    /// member versions' valid times.
    pub validity: Interval,
}

/// A *Temporal Dimension* `<Did, Dname, D, G>` (paper Definition 3):
/// a set of member versions plus temporal relationships.
#[derive(Debug, Clone)]
pub struct TemporalDimension {
    name: String,
    versions: Vec<MemberVersion>,
    rels: Vec<TemporalRelationship>,
    /// Per member version: indexes into `rels` where it is the child.
    up_edges: Vec<Vec<usize>>,
    /// Per member version: indexes into `rels` where it is the parent.
    down_edges: Vec<Vec<usize>>,
}

impl TemporalDimension {
    /// Creates an empty dimension.
    pub fn new(name: impl Into<String>) -> Self {
        TemporalDimension {
            name: name.into(),
            versions: Vec::new(),
            rels: Vec::new(),
            up_edges: Vec::new(),
            down_edges: Vec::new(),
        }
    }

    /// The dimension name (`Dname`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a member version and returns its allocated id.
    pub fn add_version(&mut self, spec: MemberVersionSpec, validity: Interval) -> MemberVersionId {
        let id = MemberVersionId(self.versions.len() as u32);
        self.versions.push(MemberVersion {
            id,
            name: spec.name,
            attributes: spec.attributes,
            level: spec.level,
            validity,
        });
        self.up_edges.push(Vec::new());
        self.down_edges.push(Vec::new());
        id
    }

    /// Looks up a member version by id.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownMemberVersion`] when the id is out of range.
    pub fn version(&self, id: MemberVersionId) -> Result<&MemberVersion> {
        self.versions
            .get(id.index())
            .ok_or_else(|| CoreError::UnknownMemberVersion {
                dimension: self.name.clone(),
                id,
            })
    }

    /// All member versions, in id order.
    pub fn versions(&self) -> &[MemberVersion] {
        &self.versions
    }

    /// All versions carrying the given member name, in id order.
    pub fn versions_named(&self, name: &str) -> Vec<&MemberVersion> {
        self.versions.iter().filter(|v| v.name == name).collect()
    }

    /// The single version named `name` valid at `t`.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownMemberName`] when no version of that name is
    /// valid at `t`.
    pub fn version_named_at(&self, name: &str, t: Instant) -> Result<&MemberVersion> {
        self.versions
            .iter()
            .find(|v| v.name == name && v.validity.contains(t))
            .ok_or_else(|| CoreError::UnknownMemberName {
                dimension: self.name.clone(),
                name: name.to_owned(),
            })
    }

    /// All temporal relationships.
    pub fn relationships(&self) -> &[TemporalRelationship] {
        &self.rels
    }

    /// Whether member version `id` is valid at `t`.
    pub fn is_valid_at(&self, id: MemberVersionId, t: Instant) -> bool {
        self.versions
            .get(id.index())
            .map(|v| v.validity.contains(t))
            .unwrap_or(false)
    }

    /// Adds a temporal relationship `child → parent` over `validity`.
    ///
    /// Validates (per Definitions 2 and 3) that:
    /// * both endpoints exist and differ;
    /// * `validity` is included in the intersection of the endpoints'
    ///   valid times;
    /// * no overlapping duplicate edge exists;
    /// * `D(t)` stays acyclic at every instant of `validity`.
    ///
    /// # Errors
    ///
    /// See [`CoreError`] variants for each violated rule.
    pub fn add_relationship(
        &mut self,
        child: MemberVersionId,
        parent: MemberVersionId,
        validity: Interval,
    ) -> Result<()> {
        if child == parent {
            return Err(CoreError::SelfRelationship(child));
        }
        let child_v = self.version(child)?.validity;
        let parent_v = self.version(parent)?.validity;
        let allowed = child_v.intersect(parent_v);
        if allowed.map(|a| a.contains_interval(validity)) != Some(true) {
            return Err(CoreError::RelationshipOutsideMemberValidity {
                child,
                parent,
                validity,
            });
        }
        for &ri in &self.up_edges[child.index()] {
            let r = &self.rels[ri];
            if r.parent == parent && r.validity.overlaps(validity) {
                return Err(CoreError::DuplicateRelationship { child, parent });
            }
        }
        // DAG check: a cycle appears iff `child` is already reachable
        // upward from `parent` at some instant of `validity`. Validity of
        // edges only changes at their boundaries, so testing the critical
        // instants inside `validity` suffices.
        for t in self.critical_instants_within(validity) {
            if self.reaches_upward(parent, child, t) {
                return Err(CoreError::CycleDetected {
                    child,
                    parent,
                    at: t,
                });
            }
        }
        let idx = self.rels.len();
        self.rels.push(TemporalRelationship {
            child,
            parent,
            validity,
        });
        self.up_edges[child.index()].push(idx);
        self.down_edges[parent.index()].push(idx);
        Ok(())
    }

    /// The instants within `window` at which edge validity can change:
    /// the window start plus every edge boundary falling inside it.
    fn critical_instants_within(&self, window: Interval) -> Vec<Instant> {
        let mut points = vec![window.start()];
        for r in &self.rels {
            for p in [r.validity.start(), r.validity.end().succ()] {
                if window.contains(p) {
                    points.push(p);
                }
            }
        }
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Whether `to` is reachable from `from` following parent edges valid
    /// at `t`.
    fn reaches_upward(&self, from: MemberVersionId, to: MemberVersionId, t: Instant) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.versions.len()];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            for &ri in &self.up_edges[n.index()] {
                let r = &self.rels[ri];
                if r.validity.contains(t) {
                    stack.push(r.parent);
                }
            }
        }
        false
    }

    /// Parents of `id` at instant `t`.
    pub fn parents_at(&self, id: MemberVersionId, t: Instant) -> Vec<MemberVersionId> {
        match self.up_edges.get(id.index()) {
            Some(edges) => edges
                .iter()
                .filter(|&&ri| self.rels[ri].validity.contains(t))
                .map(|&ri| self.rels[ri].parent)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Children of `id` at instant `t`.
    pub fn children_at(&self, id: MemberVersionId, t: Instant) -> Vec<MemberVersionId> {
        match self.down_edges.get(id.index()) {
            Some(edges) => edges
                .iter()
                .filter(|&&ri| self.rels[ri].validity.contains(t))
                .map(|&ri| self.rels[ri].child)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Whether `id` is a leaf at instant `t` (valid and childless).
    pub fn is_leaf_at(&self, id: MemberVersionId, t: Instant) -> bool {
        self.is_valid_at(id, t) && self.children_at(id, t).is_empty()
    }

    /// The *Leaf Member Versions*: versions with no children at **at
    /// least one** instant of their validity (paper, after Definition 3).
    pub fn leaf_versions(&self) -> Vec<MemberVersionId> {
        self.versions
            .iter()
            .filter(|v| self.is_ever_leaf(v.id))
            .map(|v| v.id)
            .collect()
    }

    /// Whether `id` has no children at some instant of its validity.
    pub fn is_ever_leaf(&self, id: MemberVersionId) -> bool {
        let Some(v) = self.versions.get(id.index()) else {
            return false;
        };
        let child_edges: Vec<Interval> = self.down_edges[id.index()]
            .iter()
            .filter_map(|&ri| self.rels[ri].validity.intersect(v.validity))
            .collect();
        if child_edges.is_empty() {
            return true;
        }
        // Leaf at some instant iff the child edges fail to cover the whole
        // validity. Probe the critical instants of the validity window.
        let mut points = vec![v.validity.start(), v.validity.end()];
        for e in &child_edges {
            points.push(e.start().pred());
            points.push(e.end().succ());
        }
        points
            .into_iter()
            .filter(|&p| v.validity.contains(p))
            .any(|p| !child_edges.iter().any(|e| e.contains(p)))
    }

    /// Transitive ancestors of `id` at instant `t` (excluding `id`).
    pub fn ancestors_at(&self, id: MemberVersionId, t: Instant) -> Vec<MemberVersionId> {
        let mut out = Vec::new();
        let mut seen = vec![false; self.versions.len()];
        let mut stack = self.parents_at(id, t);
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.index()], true) {
                continue;
            }
            out.push(n);
            stack.extend(self.parents_at(n, t));
        }
        out
    }

    /// Truncates the validity of a member version *and all relationships
    /// involving it* so they end at `at.pred()` — the semantics of the
    /// `Exclude` evolution operator (§3.2).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidExclusion`] when `at` is not after the
    /// version's validity start.
    pub fn exclude(&mut self, id: MemberVersionId, at: Instant) -> Result<()> {
        let v = self.version(id)?;
        let new_end = at.pred();
        if new_end < v.validity.start() {
            return Err(CoreError::InvalidExclusion { id, at });
        }
        let validity = v.validity;
        self.versions[id.index()].validity =
            validity.truncate_end(new_end).map_err(CoreError::from)?;
        // Close (or drop) every relationship touching this version.
        // Removal swaps edges around, so scan by index rather than
        // snapshotting the adjacency lists.
        let mut i = 0;
        while i < self.rels.len() {
            let r = &self.rels[i];
            if r.child != id && r.parent != id {
                i += 1;
                continue;
            }
            let rv = r.validity;
            if rv.start() > new_end {
                // The edge lies entirely after the cut: drop it. The
                // swapped-in edge now occupies `i`; do not advance.
                self.remove_relationship(i);
            } else {
                if rv.end() > new_end {
                    self.rels[i].validity = rv.truncate_end(new_end).map_err(CoreError::from)?;
                }
                i += 1;
            }
        }
        Ok(())
    }

    /// Removes a relationship by index (swap-remove), fixing the
    /// adjacency lists — including the case where the removed edge and
    /// the swapped-in last edge share an endpoint.
    fn remove_relationship(&mut self, idx: usize) {
        let last = self.rels.len() - 1;
        let removed = self.rels[idx].clone();
        // Drop the adjacency references to the removed edge first (they
        // hold the value `idx`).
        self.up_edges[removed.child.index()].retain(|&ri| ri != idx);
        self.down_edges[removed.parent.index()].retain(|&ri| ri != idx);
        self.rels.swap(idx, last);
        self.rels.pop();
        if idx != last {
            // The edge formerly at `last` now lives at `idx`; rewrite its
            // references (distinct from the removed ones even when the
            // two edges share endpoint lists, since `last != idx`).
            let moved = self.rels[idx].clone();
            for ri in self.up_edges[moved.child.index()].iter_mut() {
                if *ri == last {
                    *ri = idx;
                }
            }
            for ri in self.down_edges[moved.parent.index()].iter_mut() {
                if *ri == last {
                    *ri = idx;
                }
            }
        }
    }

    /// Changes the parents of `id` on and after `ti` (the `Reclassify`
    /// operator, §3.2): relationships to `old_parents` are closed at
    /// `ti − 1`, relationships to `new_parents` open at `ti` (until `tf`
    /// or `Now`).
    ///
    /// # Errors
    ///
    /// Propagates endpoint, validity and DAG violations.
    pub fn reclassify(
        &mut self,
        id: MemberVersionId,
        ti: Instant,
        tf: Option<Instant>,
        old_parents: &[MemberVersionId],
        new_parents: &[MemberVersionId],
    ) -> Result<()> {
        self.version(id)?;
        for &p in old_parents {
            self.version(p)?;
        }
        // Scan by index: removal swap-relocates edges.
        let mut i = 0;
        while i < self.rels.len() {
            let r = &self.rels[i];
            let affected =
                r.child == id && old_parents.contains(&r.parent) && r.validity.end() >= ti;
            if !affected {
                i += 1;
                continue;
            }
            let rv = r.validity;
            if rv.start() >= ti {
                self.remove_relationship(i); // swapped-in edge now at `i`
            } else {
                self.rels[i].validity = rv.truncate_end(ti.pred()).map_err(CoreError::from)?;
                i += 1;
            }
        }
        let end = tf.unwrap_or(Instant::FOREVER);
        for &p in new_parents {
            self.add_relationship(id, p, Interval::new(ti, end).map_err(CoreError::from)?)?;
        }
        Ok(())
    }

    /// The restriction `D(t)`: a snapshot of the dimension at instant `t`.
    pub fn snapshot(&self, t: Instant) -> DimensionSnapshot<'_> {
        let members: Vec<MemberVersionId> = self
            .versions
            .iter()
            .filter(|v| v.validity.contains(t))
            .map(|v| v.id)
            .collect();
        DimensionSnapshot {
            dimension: self,
            at: t,
            members,
        }
    }

    /// Renders the dimension as a GraphViz DOT digraph, in the style of
    /// paper Figure 2: nodes carry name and validity, edges carry their
    /// validity.
    pub fn to_dot(&self, granularity: Granularity) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{}\" {{\n", self.name));
        out.push_str("  rankdir=BT;\n  node [shape=box];\n");
        for v in &self.versions {
            out.push_str(&format!(
                "  mv{} [label=\"{}\\n[{} ; {}]\"];\n",
                v.id.0,
                v.name,
                v.validity.start().display(granularity),
                v.validity.end().display(granularity)
            ));
        }
        for r in &self.rels {
            out.push_str(&format!(
                "  mv{} -> mv{} [label=\"[{} ; {}]\"];\n",
                r.child.0,
                r.parent.0,
                r.validity.start().display(granularity),
                r.validity.end().display(granularity)
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Every validity interval in the dimension (member versions first,
    /// then relationships) — the raw input of structure-version inference.
    pub fn validity_intervals(&self) -> Vec<Interval> {
        let mut out: Vec<Interval> = self.versions.iter().map(|v| v.validity).collect();
        out.extend(self.rels.iter().map(|r| r.validity));
        out
    }
}

/// The DAG `D(t)` — the restriction of a dimension to one instant.
#[derive(Debug, Clone)]
pub struct DimensionSnapshot<'a> {
    dimension: &'a TemporalDimension,
    at: Instant,
    members: Vec<MemberVersionId>,
}

impl<'a> DimensionSnapshot<'a> {
    /// The snapshot instant.
    pub fn at(&self) -> Instant {
        self.at
    }

    /// Member versions valid at the snapshot instant, in id order.
    pub fn members(&self) -> &[MemberVersionId] {
        &self.members
    }

    /// Members with no valid parents: the top of the hierarchy.
    pub fn roots(&self) -> Vec<MemberVersionId> {
        self.members
            .iter()
            .copied()
            .filter(|&id| self.dimension.parents_at(id, self.at).is_empty())
            .collect()
    }

    /// Members with no valid children: the bottom of the hierarchy.
    pub fn leaves(&self) -> Vec<MemberVersionId> {
        self.members
            .iter()
            .copied()
            .filter(|&id| self.dimension.children_at(id, self.at).is_empty())
            .collect()
    }

    /// Depth of every valid member: roots have depth 0; any other node is
    /// one more than its deepest parent (longest path from a root). This
    /// is the "same depth in the DAG of D(t)" notion of Definition 4.
    pub fn depths(&self) -> BTreeMap<MemberVersionId, usize> {
        // Kahn-style longest-path computation over the valid sub-DAG.
        let mut indegree: BTreeMap<MemberVersionId, usize> = BTreeMap::new();
        for &id in &self.members {
            indegree.insert(id, self.dimension.parents_at(id, self.at).len());
        }
        let mut depth: BTreeMap<MemberVersionId, usize> = BTreeMap::new();
        let mut queue: Vec<MemberVersionId> = indegree
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        for &r in &queue {
            depth.insert(r, 0);
        }
        while let Some(n) = queue.pop() {
            let d = depth[&n];
            for c in self.dimension.children_at(n, self.at) {
                let e = depth.entry(c).or_insert(0);
                *e = (*e).max(d + 1);
                let remaining = indegree.get_mut(&c).expect("valid child");
                *remaining -= 1;
                if *remaining == 0 {
                    queue.push(c);
                }
            }
        }
        depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org() -> (TemporalDimension, Vec<MemberVersionId>) {
        // The paper's Org dimension after the 2003 split of Dpt.Jones.
        let mut d = TemporalDimension::new("Org");
        let sales = d.add_version(
            MemberVersionSpec::named("Sales").at_level("Division"),
            Interval::since(Instant::ym(2001, 1)),
        );
        let jones = d.add_version(
            MemberVersionSpec::named("Dpt.Jones").at_level("Department"),
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        );
        let bill = d.add_version(
            MemberVersionSpec::named("Dpt.Bill").at_level("Department"),
            Interval::since(Instant::ym(2003, 1)),
        );
        let paul = d.add_version(
            MemberVersionSpec::named("Dpt.Paul").at_level("Department"),
            Interval::since(Instant::ym(2003, 1)),
        );
        d.add_relationship(
            jones,
            sales,
            Interval::of(Instant::ym(2001, 1), Instant::ym(2002, 12)),
        )
        .unwrap();
        d.add_relationship(bill, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        d.add_relationship(paul, sales, Interval::since(Instant::ym(2003, 1)))
            .unwrap();
        (d, vec![sales, jones, bill, paul])
    }

    #[test]
    fn parents_and_children_respect_time() {
        let (d, ids) = org();
        let (sales, jones, bill, _paul) = (ids[0], ids[1], ids[2], ids[3]);
        assert_eq!(d.parents_at(jones, Instant::ym(2001, 6)), vec![sales]);
        assert!(d.parents_at(jones, Instant::ym(2003, 1)).is_empty());
        let kids_2001 = d.children_at(sales, Instant::ym(2001, 6));
        assert_eq!(kids_2001, vec![jones]);
        let kids_2003 = d.children_at(sales, Instant::ym(2003, 6));
        assert_eq!(kids_2003.len(), 2);
        assert!(kids_2003.contains(&bill));
    }

    #[test]
    fn relationship_validity_must_be_within_member_intersection() {
        let (mut d, ids) = org();
        let (sales, jones) = (ids[0], ids[1]);
        // Jones ends 12/2002; an edge into 2003 is invalid.
        let err = d
            .add_relationship(jones, sales, Interval::since(Instant::ym(2001, 1)))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::RelationshipOutsideMemberValidity { .. }
        ));
    }

    #[test]
    fn duplicate_overlapping_edge_rejected() {
        let (mut d, ids) = org();
        let (sales, bill) = (ids[0], ids[2]);
        let err = d
            .add_relationship(bill, sales, Interval::since(Instant::ym(2004, 1)))
            .unwrap_err();
        assert!(matches!(err, CoreError::DuplicateRelationship { .. }));
    }

    #[test]
    fn self_relationship_rejected() {
        let (mut d, ids) = org();
        assert!(matches!(
            d.add_relationship(ids[0], ids[0], Interval::ALL_TIME),
            Err(CoreError::SelfRelationship(_))
        ));
    }

    #[test]
    fn cycle_detected_at_any_instant() {
        let mut d = TemporalDimension::new("C");
        let all = Interval::since(Instant::ym(2001, 1));
        let a = d.add_version(MemberVersionSpec::named("A"), all);
        let b = d.add_version(MemberVersionSpec::named("B"), all);
        let c = d.add_version(MemberVersionSpec::named("C"), all);
        d.add_relationship(a, b, all).unwrap();
        d.add_relationship(b, c, all).unwrap();
        let err = d.add_relationship(c, a, all).unwrap_err();
        assert!(matches!(err, CoreError::CycleDetected { .. }));
        // A cycle confined to a sub-interval is also caught.
        let late = Interval::since(Instant::ym(2005, 1));
        let err = d.add_relationship(c, a, late).unwrap_err();
        assert!(matches!(err, CoreError::CycleDetected { .. }));
    }

    #[test]
    fn time_disjoint_edges_do_not_form_cycles() {
        // a->b in 2001, b->a in 2002: never simultaneous, so allowed.
        let mut d = TemporalDimension::new("C");
        let all = Interval::since(Instant::ym(2001, 1));
        let a = d.add_version(MemberVersionSpec::named("A"), all);
        let b = d.add_version(MemberVersionSpec::named("B"), all);
        d.add_relationship(a, b, Interval::years(2001, 2001))
            .unwrap();
        d.add_relationship(b, a, Interval::years(2002, 2002))
            .unwrap();
    }

    #[test]
    fn leaf_versions_follow_paper_definition() {
        let (d, ids) = org();
        let leaves = d.leaf_versions();
        // Departments are always leaves; Sales always has children
        // (Jones through 12/2002, Bill/Paul from 01/2003) => not a leaf.
        assert!(leaves.contains(&ids[1]));
        assert!(leaves.contains(&ids[2]));
        assert!(leaves.contains(&ids[3]));
        assert!(!leaves.contains(&ids[0]));
    }

    #[test]
    fn parent_with_child_gap_is_sometimes_leaf() {
        let mut d = TemporalDimension::new("G");
        let p = d.add_version(MemberVersionSpec::named("P"), Interval::years(2001, 2003));
        let c = d.add_version(MemberVersionSpec::named("C"), Interval::years(2001, 2001));
        d.add_relationship(c, p, Interval::years(2001, 2001))
            .unwrap();
        // P has no children during 2002-2003, so it is a leaf version.
        assert!(d.is_ever_leaf(p));
        assert!(d.is_leaf_at(p, Instant::ym(2002, 6)));
        assert!(!d.is_leaf_at(p, Instant::ym(2001, 6)));
    }

    #[test]
    fn snapshot_roots_leaves_depths() {
        let (d, ids) = org();
        let snap = d.snapshot(Instant::ym(2003, 6));
        assert_eq!(snap.roots(), vec![ids[0]]);
        let leaves = snap.leaves();
        assert_eq!(leaves.len(), 2);
        let depths = snap.depths();
        assert_eq!(depths[&ids[0]], 0);
        assert_eq!(depths[&ids[2]], 1);
        // Jones is not valid in 2003.
        assert!(!depths.contains_key(&ids[1]));
    }

    #[test]
    fn exclude_truncates_member_and_edges() {
        let (mut d, ids) = org();
        let bill = ids[2];
        d.exclude(bill, Instant::ym(2005, 1)).unwrap();
        assert_eq!(
            d.version(bill).unwrap().validity.end(),
            Instant::ym(2004, 12)
        );
        assert!(d.parents_at(bill, Instant::ym(2004, 6)).len() == 1);
        assert!(d.parents_at(bill, Instant::ym(2005, 1)).is_empty());
        // Excluding before the start is invalid.
        assert!(matches!(
            d.exclude(bill, Instant::ym(2003, 1)),
            Err(CoreError::InvalidExclusion { .. })
        ));
    }

    #[test]
    fn exclude_drops_edges_entirely_after_cut() {
        let mut d = TemporalDimension::new("E");
        let p = d.add_version(MemberVersionSpec::named("P"), Interval::years(2001, 2005));
        let c = d.add_version(MemberVersionSpec::named("C"), Interval::years(2001, 2005));
        d.add_relationship(c, p, Interval::years(2004, 2005))
            .unwrap();
        d.exclude(c, Instant::ym(2003, 1)).unwrap();
        assert!(d.relationships().is_empty());
    }

    #[test]
    fn exclude_with_shared_endpoint_edges_keeps_adjacency_consistent() {
        // Regression: swap-removing an edge whose swapped-in replacement
        // shares an endpoint must not corrupt the adjacency lists.
        let mut d = TemporalDimension::new("R");
        let p = d.add_version(MemberVersionSpec::named("P"), Interval::years(2001, 2010));
        let a = d.add_version(MemberVersionSpec::named("A"), Interval::years(2005, 2010));
        let b = d.add_version(MemberVersionSpec::named("B"), Interval::years(2001, 2010));
        // Two future edges out of the same child `b` plus one from `a`,
        // so removals hit overlapping adjacency lists.
        let q = d.add_version(MemberVersionSpec::named("Q"), Interval::years(2001, 2010));
        d.add_relationship(a, p, Interval::years(2005, 2010))
            .unwrap();
        d.add_relationship(b, p, Interval::years(2006, 2010))
            .unwrap();
        d.add_relationship(b, q, Interval::years(2007, 2010))
            .unwrap();
        // Exclude P at 2004: both edges into P vanish (they start later),
        // b->q must survive untouched.
        d.exclude(p, Instant::ym(2004, 1)).unwrap();
        assert_eq!(d.relationships().len(), 1);
        assert_eq!(d.parents_at(b, Instant::ym(2008, 1)), vec![q]);
        assert!(d.parents_at(a, Instant::ym(2008, 1)).is_empty());
        // Depth computation still terminates and is consistent.
        let depths = d.snapshot(Instant::ym(2008, 1)).depths();
        assert_eq!(depths[&b], 1);
        assert_eq!(depths[&q], 0);
    }

    #[test]
    fn reclassify_moves_member_between_parents() {
        // The paper's first motivating evolution: Smith's department moves
        // from Sales to R&D in 2002.
        let mut d = TemporalDimension::new("Org");
        let since01 = Interval::since(Instant::ym(2001, 1));
        let sales = d.add_version(
            MemberVersionSpec::named("Sales").at_level("Division"),
            since01,
        );
        let rnd = d.add_version(
            MemberVersionSpec::named("R&D").at_level("Division"),
            since01,
        );
        let smith = d.add_version(
            MemberVersionSpec::named("Dpt.Smith").at_level("Department"),
            since01,
        );
        d.add_relationship(smith, sales, since01).unwrap();
        d.reclassify(smith, Instant::ym(2002, 1), None, &[sales], &[rnd])
            .unwrap();
        assert_eq!(d.parents_at(smith, Instant::ym(2001, 6)), vec![sales]);
        assert_eq!(d.parents_at(smith, Instant::ym(2002, 6)), vec![rnd]);
        // The old edge closed exactly at 12/2001.
        let old_edge = d
            .relationships()
            .iter()
            .find(|r| r.parent == sales)
            .unwrap();
        assert_eq!(old_edge.validity.end(), Instant::ym(2001, 12));
    }

    #[test]
    fn reclassify_removes_future_only_edges() {
        let mut d = TemporalDimension::new("Org");
        let all = Interval::since(Instant::ym(2001, 1));
        let p1 = d.add_version(MemberVersionSpec::named("P1"), all);
        let p2 = d.add_version(MemberVersionSpec::named("P2"), all);
        let m = d.add_version(MemberVersionSpec::named("M"), all);
        d.add_relationship(m, p1, Interval::since(Instant::ym(2004, 1)))
            .unwrap();
        // Reclassifying at 2002 removes the 2004 edge entirely.
        d.reclassify(m, Instant::ym(2002, 1), None, &[p1], &[p2])
            .unwrap();
        assert!(d.parents_at(m, Instant::ym(2004, 6)) == vec![p2]);
    }

    #[test]
    fn dot_rendering_mentions_nodes_and_edges() {
        let (d, _) = org();
        let dot = d.to_dot(Granularity::Month);
        assert!(dot.contains("digraph \"Org\""));
        assert!(dot.contains("Dpt.Jones"));
        assert!(dot.contains("[01/2001 ; 12/2002]"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn multiple_hierarchies_supported() {
        // A department reporting to two divisions at once (multi-parent),
        // which the paper's graph model explicitly allows.
        let mut d = TemporalDimension::new("M");
        let all = Interval::since(Instant::ym(2001, 1));
        let a = d.add_version(MemberVersionSpec::named("DivA"), all);
        let b = d.add_version(MemberVersionSpec::named("DivB"), all);
        let m = d.add_version(MemberVersionSpec::named("Dept"), all);
        d.add_relationship(m, a, all).unwrap();
        d.add_relationship(m, b, all).unwrap();
        assert_eq!(d.parents_at(m, Instant::ym(2001, 1)).len(), 2);
    }

    #[test]
    fn version_named_at_picks_the_valid_version() {
        let mut d = TemporalDimension::new("N");
        let v1 = d.add_version(MemberVersionSpec::named("X"), Interval::years(2001, 2001));
        let v2 = d.add_version(MemberVersionSpec::named("X"), Interval::years(2002, 2002));
        assert_eq!(
            d.version_named_at("X", Instant::ym(2001, 5)).unwrap().id,
            v1
        );
        assert_eq!(
            d.version_named_at("X", Instant::ym(2002, 5)).unwrap().id,
            v2
        );
        assert!(d.version_named_at("X", Instant::ym(2003, 1)).is_err());
        assert_eq!(d.versions_named("X").len(), 2);
    }
}
