//! # mvolap-exec
//!
//! A morsel-driven parallel execution engine for the mvolap query tier,
//! built entirely on `std::thread` (scoped threads, no external
//! dependencies). The paper's MultiVersion Fact Table inference
//! (Definition 11) and Data Aggregation (Definition 12) are
//! embarrassingly parallel over fact rows and lattice nodes; this crate
//! supplies the two primitives those hot paths need:
//!
//! * [`ExecContext::parallel_fold`] — chunk a slice into fixed-size
//!   *morsels*, fold each morsel into a partial state on whichever
//!   worker claims it, then merge the partial states **in morsel
//!   order**. Because morsel boundaries depend only on `morsel_size`
//!   (never on the thread count) and the merge order is the morsel
//!   order, the result is bit-identical for any number of threads —
//!   including floating-point accumulations, whose association tree is
//!   fixed by the decomposition, not by scheduling.
//! * [`GenCache`] — a shared, `Arc`-friendly memo cache keyed by an
//!   explicit *generation*. Readers pass the current generation with
//!   every lookup; a bumped generation (an evolution operator mutated
//!   the schema) atomically invalidates every cached entry.
//!
//! The crate is deliberately generic: it knows nothing about the
//! multidimensional model. `mvolap-core` layers the model-specific
//! caches (mapping-closure routes, roll-up paths) on top.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Execution-context knobs shared by every parallel entry point.
///
/// `threads == 1` runs the *same* morsel pipeline inline on the calling
/// thread — the sequential path is literally the one-thread case, so
/// sequential and parallel results are the same computation, not two
/// implementations asserted to agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecContext {
    /// Worker threads to use (clamped to at least 1).
    pub threads: usize,
    /// Rows per morsel (clamped to at least 1). Determinism contract:
    /// for a fixed `morsel_size`, results are bit-identical across any
    /// `threads` value.
    pub morsel_size: usize,
}

/// Default morsel size: large enough to amortise scheduling, small
/// enough to load-balance skewed per-row costs (route fan-out varies).
pub const DEFAULT_MORSEL_SIZE: usize = 1024;

impl ExecContext {
    /// A context with `threads` workers and the default morsel size.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ExecContext {
            threads: threads.max(1),
            morsel_size: DEFAULT_MORSEL_SIZE,
        }
    }

    /// The sequential context (`threads = 1`).
    #[must_use]
    pub fn sequential() -> Self {
        ExecContext::new(1)
    }

    /// A context sized to the machine via `std::thread::available_parallelism`.
    #[must_use]
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        ExecContext::new(threads)
    }

    /// Overrides the morsel size.
    #[must_use]
    pub fn with_morsel_size(mut self, morsel_size: usize) -> Self {
        self.morsel_size = morsel_size.max(1);
        self
    }

    /// Number of morsels `len` items decompose into.
    #[must_use]
    pub fn morsels_for(&self, len: usize) -> usize {
        len.div_ceil(self.morsel_size)
    }

    /// Folds `items` morsel-by-morsel and merges the per-morsel states
    /// in morsel order.
    ///
    /// * `init()` seeds the state of each morsel;
    /// * `fold(state, index, item)` absorbs one item (`index` is the
    ///   item's position in `items`);
    /// * `merge(acc, next)` combines two adjacent partial states; it is
    ///   applied left-to-right over the morsel sequence.
    ///
    /// Returns `init()` when `items` is empty. Workers claim morsels
    /// from a shared atomic cursor (work stealing), so skewed morsels
    /// do not idle the other workers; the *merge* order is still the
    /// deterministic morsel order regardless of which worker finished
    /// first.
    pub fn parallel_fold<T, S, I, F, M>(&self, items: &[T], init: I, fold: F, mut merge: M) -> S
    where
        T: Sync,
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) + Sync,
        M: FnMut(&mut S, S),
    {
        let partials = self.run_morsels(items, |morsel_start, morsel| {
            let mut state = init();
            for (offset, item) in morsel.iter().enumerate() {
                fold(&mut state, morsel_start + offset, item);
            }
            state
        });
        let mut acc = init();
        for partial in partials {
            merge(&mut acc, partial);
        }
        acc
    }

    /// Maps `items` in parallel, preserving order: `result[i] = f(i,
    /// &items[i])`. Scheduling is morsel-granular, so neighbouring
    /// items share a worker.
    pub fn parallel_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let per_morsel = self.run_morsels(items, |morsel_start, morsel| {
            morsel
                .iter()
                .enumerate()
                .map(|(offset, item)| f(morsel_start + offset, item))
                .collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in per_morsel {
            out.extend(chunk);
        }
        out
    }

    /// Runs `work` once per morsel and returns the results in morsel
    /// order. The scheduling core shared by fold and map.
    fn run_morsels<T, R, W>(&self, items: &[T], work: W) -> Vec<R>
    where
        T: Sync,
        R: Send,
        W: Fn(usize, &[T]) -> R + Sync,
    {
        let morsel_count = self.morsels_for(items.len());
        if morsel_count == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(morsel_count);
        if workers <= 1 {
            // Inline: identical decomposition, no spawn overhead.
            return items
                .chunks(self.morsel_size)
                .enumerate()
                .map(|(m, morsel)| work(m * self.morsel_size, morsel))
                .collect();
        }

        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..morsel_count).map(|_| None).collect());
        let run_worker = || {
            // Claim morsels until the cursor runs past the end; buffer
            // locally and publish per morsel so the lock is held only
            // for a slot write.
            loop {
                let m = cursor.fetch_add(1, Ordering::Relaxed);
                if m >= morsel_count {
                    break;
                }
                let start = m * self.morsel_size;
                let end = (start + self.morsel_size).min(items.len());
                let result = work(start, &items[start..end]);
                slots.lock().expect("slot lock poisoned")[m] = Some(result);
            }
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(run_worker);
            }
            // The calling thread is worker 0.
            run_worker();
        });
        slots
            .into_inner()
            .expect("slot lock poisoned")
            .into_iter()
            .map(|slot| slot.expect("every morsel completed"))
            .collect()
    }
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::sequential()
    }
}

/// Hit/miss counters of a [`GenCache`] (diagnostics; monotonic over the
/// cache's lifetime, surviving invalidations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (cold key or stale generation).
    pub misses: u64,
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;

    /// Counter-wise sum — aggregating the shards of a sharded cache
    /// into one fleet-wide view.
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

impl std::ops::AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        *self = *self + rhs;
    }
}

struct GenCacheInner<K, V> {
    generation: u64,
    map: HashMap<K, Arc<V>>,
}

/// A shared memo cache with explicit generation-based invalidation.
///
/// Every lookup carries the caller's current *generation* (in mvolap, a
/// counter the schema bumps on structural mutation — evolution
/// operators, new mappings, new versions). When the presented
/// generation differs from the cache's stored one, the whole map is
/// dropped before the lookup proceeds: entries can never outlive the
/// schema state they were computed from.
///
/// Values are returned as `Arc<V>` so workers share one materialisation
/// without cloning. Lookups compute `make()` *outside* the write lock;
/// two racing workers may both compute a cold key, and the second
/// insert is discarded in favour of the first — wasted work, never a
/// wrong answer.
pub struct GenCache<K, V> {
    inner: RwLock<GenCacheInner<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> GenCache<K, V> {
    /// An empty cache at generation 0.
    #[must_use]
    pub fn new() -> Self {
        GenCache {
            inner: RwLock::new(GenCacheInner {
                generation: 0,
                map: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fetches `key` at `generation`, computing it with `make` on a
    /// miss. A generation change flushes all entries first.
    pub fn get_or_insert_with<F>(&self, generation: u64, key: K, make: F) -> Arc<V>
    where
        F: FnOnce() -> V,
    {
        {
            let inner = self.inner.read().expect("cache lock poisoned");
            if inner.generation == generation {
                if let Some(v) = inner.map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Arc::clone(v);
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(make());
        let mut inner = self.inner.write().expect("cache lock poisoned");
        if inner.generation != generation {
            inner.map.clear();
            inner.generation = generation;
        }
        Arc::clone(inner.map.entry(key).or_insert(value))
    }

    /// Fetches `key` at `generation` without computing on a miss.
    /// Returns `None` (and counts nothing) when the entry is absent or
    /// belongs to another generation — use this when the computation is
    /// fallible and its failures must not be cached.
    #[must_use]
    pub fn get(&self, generation: u64, key: &K) -> Option<Arc<V>> {
        let inner = self.inner.read().expect("cache lock poisoned");
        if inner.generation != generation {
            return None;
        }
        let hit = inner.map.get(key).map(Arc::clone);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.read().expect("cache lock poisoned").map.len()
    }

    /// True when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry without changing the stored generation.
    pub fn clear(&self) {
        self.inner.write().expect("cache lock poisoned").map.clear();
    }
}

impl<K: Eq + Hash + Clone, V> Default for GenCache<K, V> {
    fn default() -> Self {
        GenCache::new()
    }
}

impl<K, V> std::fmt::Debug for GenCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read().expect("cache lock poisoned");
        let stats = CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        };
        f.debug_struct("GenCache")
            .field("generation", &inner.generation)
            .field("entries", &inner.map.len())
            .field("stats", &stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_sequential_sum_for_any_thread_count() {
        let items: Vec<f64> = (0..10_007).map(|i| (i as f64) * 0.1 + 0.3).collect();
        let fold_with = |threads: usize| {
            ExecContext::new(threads)
                .with_morsel_size(64)
                .parallel_fold(&items, || 0.0f64, |s, _, x| *s += x, |a, b| *a += b)
        };
        let baseline = fold_with(1);
        for threads in [2, 3, 8, 64] {
            // Bit-identical, not approximately equal.
            assert_eq!(baseline.to_bits(), fold_with(threads).to_bits());
        }
    }

    #[test]
    fn fold_indices_cover_every_item_exactly_once() {
        let items: Vec<usize> = (0..1000).collect();
        let seen = ExecContext::new(4).with_morsel_size(7).parallel_fold(
            &items,
            Vec::new,
            |s: &mut Vec<usize>, i, &item| {
                assert_eq!(i, item);
                s.push(i);
            },
            |a, mut b| a.append(&mut b),
        );
        assert_eq!(seen, items);
    }

    #[test]
    fn fold_empty_returns_init() {
        let r = ExecContext::new(8).parallel_fold(
            &[] as &[u32],
            || 41u32,
            |_, _, _| unreachable!(),
            |_, _| unreachable!(),
        );
        assert_eq!(r, 41);
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u32> = (0..513).collect();
        for threads in [1, 2, 8] {
            let out = ExecContext::new(threads)
                .with_morsel_size(10)
                .parallel_map(&items, |i, &x| (i as u32, x * 2));
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx as usize, i);
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn morsel_count_is_thread_independent() {
        let ctx = ExecContext::new(1).with_morsel_size(100);
        assert_eq!(ctx.morsels_for(0), 0);
        assert_eq!(ctx.morsels_for(1), 1);
        assert_eq!(ctx.morsels_for(100), 1);
        assert_eq!(ctx.morsels_for(101), 2);
        assert_eq!(
            ExecContext::new(16).with_morsel_size(100).morsels_for(101),
            2
        );
    }

    #[test]
    fn clamps_degenerate_knobs() {
        let ctx = ExecContext::new(0).with_morsel_size(0);
        assert_eq!(ctx.threads, 1);
        assert_eq!(ctx.morsel_size, 1);
    }

    #[test]
    fn cache_hits_within_a_generation() {
        let cache: GenCache<u32, String> = GenCache::new();
        let a = cache.get_or_insert_with(1, 7, || "seven".to_string());
        let b = cache.get_or_insert_with(1, 7, || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let cache: GenCache<u32, u32> = GenCache::new();
        cache.get_or_insert_with(1, 1, || 10);
        cache.get_or_insert_with(1, 2, || 20);
        assert_eq!(cache.len(), 2);
        // Stale generation: both entries flushed, value recomputed.
        let v = cache.get_or_insert_with(2, 1, || 11);
        assert_eq!(*v, 11);
        assert_eq!(cache.len(), 1);
        // And the old generation is gone for good — presenting it again
        // flushes the new entries too (generations are compared for
        // equality, not order; any change means "schema moved").
        let v = cache.get_or_insert_with(1, 1, || 12);
        assert_eq!(*v, 12);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache: Arc<GenCache<usize, usize>> = Arc::new(GenCache::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for k in 0..100 {
                        let v = cache.get_or_insert_with(1, k, || k * 3);
                        assert_eq!(*v, k * 3);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 100);
    }
}
