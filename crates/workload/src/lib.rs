//! # mvolap-workload
//!
//! Deterministic synthetic workload generation: evolving organisation
//! hierarchies (splits, merges, reclassifications, creations, deletions
//! at configurable rates) plus per-period fact streams. The paper's
//! evaluation is a worked case study; these generators provide the
//! scaling workloads behind the benchmark suite's shape experiments.
//!
//! All generation is seeded (`mvolap_prng::Rng`), so every benchmark
//! run sees exactly the same schema and facts for a given configuration.

use mvolap_core::evolution::{self, MergeSource, SplitPart};
use mvolap_core::{
    DimensionId, MeasureDef, MemberVersionId, MemberVersionSpec, Result, TemporalDimension, Tmd,
};
use mvolap_prng::Rng;
use mvolap_temporal::{Granularity, Instant, Interval};

/// Configuration of an evolving-organisation workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; equal seeds generate identical workloads.
    pub seed: u64,
    /// Number of yearly periods, starting at 2001. Evolution events
    /// happen at each year boundary after the first.
    pub periods: u32,
    /// Number of (static) divisions.
    pub divisions: usize,
    /// Departments created in the first period.
    pub initial_departments: usize,
    /// Per-period probability that a department splits in two.
    pub split_prob: f64,
    /// Per-period probability that a department merges with another.
    pub merge_prob: f64,
    /// Per-period probability that a department changes division.
    pub reclassify_prob: f64,
    /// Per-period probability that a brand-new department appears.
    pub create_prob: f64,
    /// Per-period probability that a department disappears.
    pub delete_prob: f64,
    /// Facts generated per live department per period.
    pub facts_per_department: usize,
}

impl WorkloadConfig {
    /// A small default: 4 periods, 3 divisions, 10 departments, moderate
    /// evolution, 4 facts per department per period.
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            periods: 4,
            divisions: 3,
            initial_departments: 10,
            split_prob: 0.10,
            merge_prob: 0.05,
            reclassify_prob: 0.10,
            create_prob: 0.05,
            delete_prob: 0.03,
            facts_per_department: 4,
        }
    }

    /// Scales the department count (benchmark sweeps).
    #[must_use]
    pub fn with_departments(mut self, n: usize) -> Self {
        self.initial_departments = n;
        self
    }

    /// Scales the period count.
    #[must_use]
    pub fn with_periods(mut self, n: u32) -> Self {
        self.periods = n;
        self
    }

    /// Scales the fact rate.
    #[must_use]
    pub fn with_facts_per_department(mut self, n: usize) -> Self {
        self.facts_per_department = n;
        self
    }

    /// Disables all evolution (a static-dimension control group).
    #[must_use]
    pub fn frozen(mut self) -> Self {
        self.split_prob = 0.0;
        self.merge_prob = 0.0;
        self.reclassify_prob = 0.0;
        self.create_prob = 0.0;
        self.delete_prob = 0.0;
        self
    }
}

/// Counters describing what a generation run produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Departments split.
    pub splits: usize,
    /// Department pairs merged.
    pub merges: usize,
    /// Departments reclassified.
    pub reclassifications: usize,
    /// Departments created after bootstrap.
    pub creations: usize,
    /// Departments deleted.
    pub deletions: usize,
    /// Fact rows inserted.
    pub facts: usize,
}

/// A generated workload: the populated schema plus statistics.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The populated schema.
    pub tmd: Tmd,
    /// The organisation dimension.
    pub dim: DimensionId,
    /// What happened during generation.
    pub stats: WorkloadStats,
}

/// Generates an evolving-organisation workload.
///
/// Period 1 bootstraps `divisions` divisions and `initial_departments`
/// departments; every later period applies random evolution events at
/// the year boundary, then inserts facts mid-year for every live
/// department.
///
/// # Errors
///
/// Propagates evolution-operator failures (none are expected for valid
/// configurations).
pub fn generate(config: &WorkloadConfig) -> Result<GeneratedWorkload> {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut tmd = Tmd::new("workload", Granularity::Month);
    let dim = tmd.add_dimension(TemporalDimension::new("Org"))?;
    tmd.add_measure(MeasureDef::summed("Amount"))?;
    let mut stats = WorkloadStats::default();
    let mut dept_counter = 0usize;

    // Bootstrap: divisions live forever.
    let start = Instant::ym(2001, 1);
    let mut divisions: Vec<MemberVersionId> = Vec::with_capacity(config.divisions);
    for i in 0..config.divisions {
        let id = tmd.add_version(
            dim,
            MemberVersionSpec::named(format!("Div{i}")).at_level("Division"),
            Interval::since(start),
        )?;
        divisions.push(id);
    }
    for _ in 0..config.initial_departments {
        let parent = *rng.choose(&divisions).expect("at least one division");
        let name = format!("Dept{dept_counter}");
        dept_counter += 1;
        evolution::create(
            &mut tmd,
            dim,
            name,
            Some("Department".into()),
            start,
            &[parent],
        )?;
    }

    for period in 0..config.periods {
        let year = 2001 + period as i32;
        let boundary = Instant::ym(year, 1);
        if period > 0 {
            evolve_period(
                &mut tmd,
                dim,
                &divisions,
                boundary,
                config,
                &mut rng,
                &mut stats,
                &mut dept_counter,
            )?;
        }
        // Facts mid-year for every live department.
        let mid = Instant::ym(year, 6);
        let leaves: Vec<MemberVersionId> = live_departments(&tmd, dim, mid)?;
        for leaf in leaves {
            for _ in 0..config.facts_per_department {
                let amount = rng.f64_in(10.0, 200.0).round();
                tmd.add_fact(&[leaf], mid, &[amount])?;
                stats.facts += 1;
            }
        }
    }

    Ok(GeneratedWorkload { tmd, dim, stats })
}

/// Departments (leaf member versions tagged `Department`) valid at `t`.
fn live_departments(tmd: &Tmd, dim: DimensionId, t: Instant) -> Result<Vec<MemberVersionId>> {
    let d = tmd.dimension(dim)?;
    Ok(d.snapshot(t)
        .members()
        .iter()
        .copied()
        .filter(|&id| {
            d.version(id)
                .map(|v| v.level.as_deref() == Some("Department"))
                .unwrap_or(false)
        })
        .collect())
}

#[allow(clippy::too_many_arguments)]
fn evolve_period(
    tmd: &mut Tmd,
    dim: DimensionId,
    divisions: &[MemberVersionId],
    boundary: Instant,
    config: &WorkloadConfig,
    rng: &mut Rng,
    stats: &mut WorkloadStats,
    dept_counter: &mut usize,
) -> Result<()> {
    let before = boundary.pred();
    let mut live = live_departments(tmd, dim, before)?;
    rng.shuffle(&mut live);
    // Members already consumed by an event this period.
    let mut consumed: Vec<MemberVersionId> = Vec::new();

    for &dept in &live {
        if consumed.contains(&dept) {
            continue;
        }
        let roll: f64 = rng.f64_unit();
        let parents = tmd.dimension(dim)?.parents_at(dept, before);
        if roll < config.split_prob {
            let a = format!("Dept{}", *dept_counter);
            let b = format!("Dept{}", *dept_counter + 1);
            *dept_counter += 2;
            let share = rng.f64_in(0.2, 0.8);
            evolution::split(
                tmd,
                dim,
                dept,
                &[
                    SplitPart::proportional(a, share, 1),
                    SplitPart::proportional(b, 1.0 - share, 1),
                ],
                boundary,
                &parents,
            )?;
            consumed.push(dept);
            stats.splits += 1;
        } else if roll < config.split_prob + config.merge_prob {
            // Find a partner not yet consumed.
            let partner = live
                .iter()
                .copied()
                .find(|&o| o != dept && !consumed.contains(&o));
            if let Some(other) = partner {
                let name = format!("Dept{}", *dept_counter);
                *dept_counter += 1;
                evolution::merge(
                    tmd,
                    dim,
                    &[
                        MergeSource::with_share(dept, 0.5, 1),
                        MergeSource::with_share(other, 0.5, 1),
                    ],
                    name,
                    Some("Department".into()),
                    boundary,
                    &parents,
                )?;
                consumed.push(dept);
                consumed.push(other);
                stats.merges += 1;
            }
        } else if roll < config.split_prob + config.merge_prob + config.reclassify_prob {
            let target = *rng.choose(divisions).expect("at least one division");
            if !parents.contains(&target) {
                evolution::reclassify(tmd, dim, dept, boundary, &parents, &[target])?;
                stats.reclassifications += 1;
            }
        } else if roll
            < config.split_prob + config.merge_prob + config.reclassify_prob + config.delete_prob
        {
            // Keep the organisation alive.
            if live.len() - consumed.len() > 2 {
                evolution::delete(tmd, dim, dept, boundary)?;
                consumed.push(dept);
                stats.deletions += 1;
            }
        }
    }
    if rng.f64_unit() < config.create_prob * live.len() as f64 {
        let parent = *rng.choose(divisions).expect("at least one division");
        let name = format!("Dept{}", *dept_counter);
        *dept_counter += 1;
        evolution::create(
            tmd,
            dim,
            name,
            Some("Department".into()),
            boundary,
            &[parent],
        )?;
        stats.creations += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::small(42);
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.tmd.facts().len(), b.tmd.facts().len());
        assert_eq!(
            a.tmd.dimension(a.dim).unwrap().versions().len(),
            b.tmd.dimension(b.dim).unwrap().versions().len()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadConfig::small(1)).unwrap();
        let b = generate(&WorkloadConfig::small(2)).unwrap();
        // Extremely unlikely to coincide exactly.
        assert!(a.stats != b.stats || a.tmd.facts().len() != b.tmd.facts().len());
    }

    #[test]
    fn frozen_config_generates_no_evolutions() {
        let w = generate(&WorkloadConfig::small(7).frozen()).unwrap();
        assert_eq!(w.stats.splits, 0);
        assert_eq!(w.stats.merges, 0);
        assert_eq!(w.stats.reclassifications, 0);
        assert_eq!(w.stats.deletions, 0);
        assert_eq!(w.stats.creations, 0);
        // Exactly one structure version: nothing ever changed.
        assert_eq!(w.tmd.structure_versions().len(), 1);
        assert_eq!(w.tmd.facts().len(), 4 * 10 * 4);
    }

    #[test]
    fn evolving_config_creates_structure_versions() {
        let mut cfg = WorkloadConfig::small(11);
        cfg.split_prob = 0.5;
        cfg.reclassify_prob = 0.3;
        let w = generate(&cfg).unwrap();
        assert!(w.stats.splits > 0, "stats: {:?}", w.stats);
        assert!(w.tmd.structure_versions().len() > 1);
        // The multiversion fact table is inferable end to end.
        let mv = mvolap_core::MultiVersionFactTable::infer(&w.tmd).unwrap();
        assert!(mv.total_rows() >= w.tmd.facts().len());
    }

    #[test]
    fn facts_land_on_valid_leaves() {
        // add_fact validates leaf/validity internally; generation
        // succeeding at higher evolution rates exercises that path.
        let mut cfg = WorkloadConfig::small(5);
        cfg.split_prob = 0.3;
        cfg.merge_prob = 0.2;
        cfg.delete_prob = 0.1;
        cfg.periods = 6;
        let w = generate(&cfg).unwrap();
        assert!(!w.tmd.facts().is_empty());
        assert_eq!(w.stats.facts, w.tmd.facts().len());
    }

    #[test]
    fn scaling_knobs_scale() {
        let small = generate(&WorkloadConfig::small(3).with_departments(5)).unwrap();
        let large = generate(&WorkloadConfig::small(3).with_departments(50)).unwrap();
        assert!(large.tmd.facts().len() > small.tmd.facts().len());
        let long = generate(&WorkloadConfig::small(3).with_periods(8)).unwrap();
        let short = generate(&WorkloadConfig::small(3).with_periods(2)).unwrap();
        assert!(long.tmd.facts().len() > short.tmd.facts().len());
    }
}
