//! Networked replication over real sockets on loopback: follower
//! catch-up through a [`ReplicaServer`], snapshot bootstrap, the
//! unix-socket variant, a full [`ReplicaSet`] over [`TcpTransport`],
//! clock-driven ticking with time-based checkpoints, and the complete
//! fault-injection sweep over TCP (socket faults included).
//!
//! Every test is named `net_*` so CI can run exactly this surface with
//! `cargo test -p mvolap-replica net_`.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use mvolap_core::case_study;
use mvolap_core::persist::write_tmd;
use mvolap_core::Tmd;
use mvolap_durable::{CheckpointPolicy, DurableTmd, FactRow, Io, Options, WalRecord};
use mvolap_replica::{
    replica_sweep_net, sync_follower, Clock, Follower, ManualClock, MsgRouter, NetAddr, NetClient,
    NetConfig, PrimaryNode, ReplicaConfig, ReplicaError, ReplicaMsg, ReplicaServer, ReplicaSet,
    ServerConfig, SyncRound, TcpTransport,
};
use mvolap_temporal::Instant;

const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division IN MODE tcm";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_net_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options {
        segment_bytes: 512,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn client_cfg() -> NetConfig {
    NetConfig {
        connect_timeout_ms: 2_000,
        read_timeout_ms: 2_000,
        write_timeout_ms: 2_000,
        reconnect_attempts: 1,
        backoff_start_ms: 1,
    }
}

fn serialise(tmd: &Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).unwrap();
    buf
}

fn answer(tmd: &Tmd) -> String {
    let versions = tmd.structure_versions();
    format!(
        "{:?}",
        mvolap_query::run_with_versions(tmd, &versions, QUERY).unwrap()
    )
}

fn facts(coord: mvolap_core::MemberVersionId, month: u32, v: f64) -> WalRecord {
    WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![coord],
            at: Instant::ym(2003, month),
            values: vec![v],
        }],
    }
}

/// Spawns a [`ReplicaServer`] over a fresh store seeded with the case
/// study, at epoch 0.
fn spawn_server(bind: &NetAddr, dir: &std::path::Path) -> (ReplicaServer, case_study::CaseStudy) {
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(dir, cs.tmd.clone(), opts(), Io::plain()).unwrap();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let server = ReplicaServer::spawn(bind, primary, ServerConfig::default()).unwrap();
    (server, cs)
}

/// Syncs `f` against the server until it holds the whole log (or
/// panics after a bounded number of rounds).
fn sync_until_caught_up(client: &mut NetClient, f: &mut Follower) -> SyncRound {
    for _ in 0..64 {
        let round = sync_follower(client, f).expect("sync round");
        if round.caught_up() {
            return round;
        }
    }
    panic!("follower failed to catch up over the network");
}

/// A follower syncs over TCP to a byte-identical store; after
/// promotion it answers the reference query identically, a fence probe
/// deposes the old server at the protocol layer, and the deposed node
/// refuses writes with the typed error.
#[test]
fn net_follower_syncs_over_tcp_then_promotion_fences_old_server() {
    let base = tmp("tcp_promote");
    let (server, cs) = spawn_server(&NetAddr::Tcp("127.0.0.1:0".into()), &base.join("p"));

    {
        let primary = server.primary();
        let mut p = primary.lock().unwrap();
        for m in 1..=5 {
            p.apply(facts(cs.brian, m, f64::from(m) * 10.0)).unwrap();
        }
    }

    let mut client = NetClient::connect(server.addr().clone(), client_cfg());
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    let round = sync_until_caught_up(&mut client, &mut f);

    let primary = server.primary();
    let expect_bytes;
    let expect_answer;
    {
        let p = primary.lock().unwrap();
        assert_eq!(round.next_lsn, p.wal_position());
        expect_bytes = serialise(p.schema());
        expect_answer = answer(p.schema());
        assert_eq!(serialise(f.schema().unwrap()), expect_bytes);
        // The logs themselves are byte-identical frame by frame.
        assert_eq!(
            p.store().tail(1).unwrap(),
            f.store().unwrap().tail(1).unwrap()
        );
    }
    assert_eq!(
        server.acked_lsn("f1"),
        round.next_lsn,
        "the ack travelled over the wire"
    );

    // Promote: the follower's store becomes a primary at epoch 1 and
    // answers run_with_versions byte-identically to the deposed one.
    let store = f.into_primary_store().unwrap();
    let promoted = PrimaryNode::from_store("f1", store, 1);
    assert_eq!(serialise(promoted.schema()), expect_bytes);
    assert_eq!(answer(promoted.schema()), expect_answer);

    // Fence the old server at the protocol layer: a newer-epoch fence
    // request deposes it on the spot.
    let reply = client.request(&ReplicaMsg::Fence { epoch: 1 }).unwrap();
    assert_eq!(reply, vec![ReplicaMsg::Fence { epoch: 1 }]);
    {
        let mut p = primary.lock().unwrap();
        assert!(p.is_fenced());
        match p.apply(facts(cs.brian, 6, 1.0)) {
            Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 1),
            other => panic!("expected Fenced, got {other:?}"),
        }
    }
    // And over the wire the deposed server serves nothing but fence.
    let mut f2 = Follower::create("f2", base.join("f2"), opts(), Io::plain());
    match sync_follower(&mut client, &mut f2) {
        Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 1),
        other => panic!("expected Fenced over the wire, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A follower joining after the server pruned its log is bootstrapped
/// from a checkpoint snapshot over the socket, at the right LSN.
#[test]
fn net_late_joiner_bootstraps_from_snapshot_over_tcp() {
    let base = tmp("tcp_snapshot");
    let (server, cs) = spawn_server(&NetAddr::Tcp("127.0.0.1:0".into()), &base.join("p"));

    let primary = server.primary();
    let oldest;
    {
        let mut p = primary.lock().unwrap();
        for m in 1..=10 {
            p.apply(facts(cs.brian, m.min(12), 1.0)).unwrap();
        }
        p.checkpoint().unwrap();
        oldest = p.store().oldest_lsn().unwrap();
        assert!(oldest > 1, "512-byte segments must have pruned");
    }

    let mut client = NetClient::connect(server.addr().clone(), client_cfg());
    let mut f = Follower::create("late", base.join("late"), opts(), Io::plain());
    sync_until_caught_up(&mut client, &mut f);

    let p = primary.lock().unwrap();
    assert_eq!(f.next_lsn(), p.wal_position());
    assert_eq!(serialise(f.schema().unwrap()), serialise(p.schema()));
    assert!(
        f.store().unwrap().oldest_lsn().unwrap() >= oldest,
        "the follower was served the snapshot path, not a replay from LSN 1 \
         (its oldest: {}, primary's: {oldest})",
        f.store().unwrap().oldest_lsn().unwrap()
    );
    std::fs::remove_dir_all(&base).ok();
}

/// The same server and client code runs over a unix socket: only the
/// address differs.
#[cfg(unix)]
#[test]
fn net_unix_socket_serves_the_same_protocol() {
    let base = tmp("unix");
    let sock = base.join("replica.sock");
    let addr = NetAddr::parse(&format!("unix:{}", sock.display())).unwrap();
    let (server, cs) = spawn_server(&addr, &base.join("p"));
    assert_eq!(server.addr(), &addr);

    let primary = server.primary();
    {
        let mut p = primary.lock().unwrap();
        for m in 1..=3 {
            p.apply(facts(cs.bill, m, 7.0)).unwrap();
        }
    }
    let mut client = NetClient::connect(addr, client_cfg());
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    sync_until_caught_up(&mut client, &mut f);
    let p = primary.lock().unwrap();
    assert_eq!(serialise(f.schema().unwrap()), serialise(p.schema()));
    std::fs::remove_dir_all(&base).ok();
}

/// A whole [`ReplicaSet`] supervises over [`TcpTransport`]: every
/// protocol message crosses a loopback socket through a [`MsgRouter`],
/// and the clock-driven tick loop drives it while a manual clock keeps
/// the test deterministic.
#[test]
fn net_replica_set_supervises_over_tcp_transport() {
    let base = tmp("tcp_set");
    let cs = case_study::case_study();
    let router = MsgRouter::spawn(&NetAddr::Tcp("127.0.0.1:0".into())).unwrap();
    let transport = TcpTransport::connect(router.addr().clone(), client_cfg());
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        transport,
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::plain());
    for m in 1..=4 {
        set.apply(facts(cs.paul, m, 3.0)).unwrap();
    }

    let clock = ManualClock::new(0);
    let mut rounds = 0u64;
    for _ in 0..64 {
        set.run_ticks(&clock, 250, 1);
        rounds += 1;
        let head = set.primary().unwrap().wal_position();
        if set.follower("f1").unwrap().next_lsn() >= head {
            break;
        }
    }
    assert_eq!(
        clock.now_ms(),
        rounds * 250,
        "each tick slept one interval on the supervision clock"
    );
    let primary = set.primary().unwrap();
    let follower = set.follower("f1").unwrap();
    assert_eq!(follower.next_lsn(), primary.wal_position());
    assert_eq!(set.acked_lsn("f1"), primary.wal_position());
    assert_eq!(
        serialise(follower.schema().unwrap()),
        serialise(primary.schema())
    );
    assert!(set.transport_steps() > 0);
    std::fs::remove_dir_all(&base).ok();
}

/// `CheckpointPolicy::max_tail_age_ms` + [`ManualClock`]: the clock the
/// supervisor sleeps on is the clock the store ages its tail by, so a
/// tick loop checkpoints the primary once the tail sits long enough.
#[test]
fn net_manual_clock_drives_time_based_checkpoints() {
    let base = tmp("clock_ckpt");
    let cs = case_study::case_study();
    let clock = ManualClock::new(0);
    let mut store = DurableTmd::create_with(
        &base,
        cs.tmd.clone(),
        Options {
            segment_bytes: 2048,
            policy: CheckpointPolicy::max_tail_age(1_000),
            prune_on_checkpoint: true,
        },
        Io::plain(),
    )
    .unwrap();
    store.set_time_source(clock.time_source());
    let mut p = PrimaryNode::from_store("primary", store, 0);

    p.apply(facts(cs.brian, 1, 1.0)).unwrap();
    assert!(p.maybe_checkpoint().unwrap().is_none(), "tail too young");
    clock.sleep_ms(999);
    assert!(p.maybe_checkpoint().unwrap().is_none(), "one ms short");
    clock.sleep_ms(1);
    let id = p.maybe_checkpoint().unwrap().expect("tail aged out");
    assert_eq!(id.next_lsn, p.wal_position());
    assert!(p.maybe_checkpoint().unwrap().is_none(), "tail now empty");

    // A fenced node's store is frozen: no more checkpoint driving.
    p.apply(facts(cs.brian, 2, 2.0)).unwrap();
    clock.sleep_ms(5_000);
    p.fence(1);
    assert!(p.maybe_checkpoint().unwrap().is_none(), "fenced: frozen");
    std::fs::remove_dir_all(&base).ok();
}

/// The full failover sweep over loopback TCP: primary and follower
/// I/O crashes, plus *socket* faults — dropped and stalled connections
/// injected by the byte-level proxy — at every transport step. Every
/// injection point must leave a promotable, byte-identical ensemble.
#[test]
fn net_replica_sweep_holds_over_loopback_tcp() {
    let base = tmp("sweep");
    // Debug builds sweep a smaller workload: same stages, same
    // invariants, fewer points. CI's network job runs this in release
    // at the full size.
    let (records, floor) = if cfg!(debug_assertions) {
        (6, 60)
    } else {
        (12, 200)
    };
    let outcome = replica_sweep_net(&base, 0xFA11_0FE8, records).expect("net sweep invariants");
    assert!(
        outcome.injection_points >= floor,
        "need a real sweep, got {outcome:?}"
    );
    assert!(outcome.primary_crashes > 0, "{outcome:?}");
    assert!(outcome.follower_crashes > 0, "{outcome:?}");
    assert!(outcome.transport_faults > 0, "{outcome:?}");
    assert!(outcome.promotions > 0, "{outcome:?}");
    assert!(outcome.fenced_refusals > 0, "{outcome:?}");
    assert_eq!(outcome.divergence_refusals, 3, "{outcome:?}");
    std::fs::remove_dir_all(&base).ok();
}
