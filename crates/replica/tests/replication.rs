//! End-to-end replication tests: catch-up, snapshot bootstrap,
//! crash/restart, divergence refusal, fencing, awkward payloads on the
//! wire, and the full fault-injection sweep.

use std::path::PathBuf;

use mvolap_core::case_study;
use mvolap_core::persist::write_tmd;
use mvolap_core::Tmd;
use mvolap_durable::{CheckpointPolicy, FactRow, FaultPlan, Io, Options, TailFrame, WalRecord};
use mvolap_replica::{
    replica_sweep, ChannelTransport, LinkState, ReplicaConfig, ReplicaError, ReplicaMsg,
    ReplicaSet, TickEvent,
};
use mvolap_temporal::Instant;

const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division IN MODE tcm";

fn tmp(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mvolap_replication_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options {
        segment_bytes: 512,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn serialise(tmd: &Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).unwrap();
    buf
}

fn answer(tmd: &Tmd) -> String {
    let versions = tmd.structure_versions();
    format!(
        "{:?}",
        mvolap_query::run_with_versions(tmd, &versions, QUERY).unwrap()
    )
}

/// Ticks the set until `name` has replayed up to the primary's head (or
/// panics after a bounded number of rounds), returning all events seen.
fn drain(set: &mut ReplicaSet<ChannelTransport>, name: &str) -> Vec<TickEvent> {
    let mut events = Vec::new();
    for _ in 0..64 {
        events.extend(set.tick());
        let head = set.primary().expect("primary alive").wal_position();
        if set.follower(name).expect("follower exists").next_lsn() >= head {
            return events;
        }
    }
    panic!("follower {name} failed to catch up; events: {events:?}");
}

fn facts(coord: mvolap_core::MemberVersionId, month: u32, v: f64) -> WalRecord {
    WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![coord],
            at: Instant::ym(2003, month),
            values: vec![v],
        }],
    }
}

/// A follower replays the primary's evolutions through the validated
/// path and answers the reference query identically, from a
/// byte-identical log.
#[test]
fn follower_catches_up_and_answers_queries() {
    let base = tmp("catchup");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::plain());

    set.apply(WalRecord::Create {
        dim: cs.org,
        name: "Dpt.New".into(),
        level: Some("Department".into()),
        at: Instant::ym(2003, 1),
        parents: vec![cs.sales],
    })
    .unwrap();
    for m in 1..=4 {
        set.apply(facts(cs.brian, m, f64::from(m) * 10.0)).unwrap();
    }
    drain(&mut set, "f1");

    let primary = set.primary().unwrap();
    let follower = set.follower("f1").unwrap();
    assert_eq!(follower.next_lsn(), primary.wal_position());
    assert_eq!(set.acked_lsn("f1"), primary.wal_position());
    assert_eq!(set.link_state("f1"), Some(LinkState::Healthy));
    assert_eq!(
        serialise(follower.schema().unwrap()),
        serialise(primary.schema()),
        "replayed schema must be byte-identical"
    );
    assert_eq!(answer(follower.schema().unwrap()), answer(primary.schema()));

    // The logs themselves are byte-identical frame by frame.
    let ours = primary.store().tail(1).unwrap();
    let theirs = follower.store().unwrap().tail(1).unwrap();
    assert_eq!(ours, theirs);
    std::fs::remove_dir_all(&base).ok();
}

/// A follower joining after the primary pruned its log bootstraps from
/// a checkpoint snapshot served at the right LSN.
#[test]
fn late_joiner_bootstraps_from_snapshot() {
    let base = tmp("snapshot");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    for m in 1..=10 {
        set.apply(facts(cs.brian, m.min(12), 1.0)).unwrap();
    }
    set.checkpoint().unwrap();
    let oldest = set.primary().unwrap().store().oldest_lsn().unwrap();
    assert!(oldest > 1, "512-byte segments must have pruned");

    set.add_follower("late", Io::plain());
    drain(&mut set, "late");
    assert!(set.stats().snapshots_served >= 1, "{:?}", set.stats());
    let primary = set.primary().unwrap();
    let follower = set.follower("late").unwrap();
    assert_eq!(follower.next_lsn(), primary.wal_position());
    assert_eq!(
        serialise(follower.schema().unwrap()),
        serialise(primary.schema())
    );
    assert_eq!(answer(follower.schema().unwrap()), answer(primary.schema()));

    // And the snapshot-bootstrapped follower keeps up with later writes.
    set.apply(facts(cs.bill, 11, 7.0)).unwrap();
    drain(&mut set, "late");
    assert_eq!(
        serialise(set.follower("late").unwrap().schema().unwrap()),
        serialise(set.primary().unwrap().schema())
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A follower that crashes mid-replication is detected, restarted from
/// its own durable state and reconverges exactly.
#[test]
fn crashed_follower_restarts_and_reconverges() {
    let base = tmp("fcrash");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::faulty(FaultPlan::crash_after(6, 0xC0FFEE)));
    for m in 1..=6 {
        set.apply(facts(cs.brian, m, 2.0)).unwrap();
    }

    let mut crashed = false;
    for _ in 0..64 {
        for ev in set.tick() {
            if matches!(&ev, TickEvent::FollowerCrashed { node } if node == "f1") {
                crashed = true;
                set.restart_follower("f1").unwrap();
            }
        }
        let head = set.primary().unwrap().wal_position();
        if crashed && set.follower("f1").unwrap().next_lsn() >= head {
            break;
        }
    }
    assert!(crashed, "the injected fault must fire");
    let primary = set.primary().unwrap();
    let follower = set.follower("f1").unwrap();
    assert_eq!(follower.next_lsn(), primary.wal_position());
    assert_eq!(
        serialise(follower.schema().unwrap()),
        serialise(primary.schema())
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A frame whose CRC contradicts the follower's own log at the same LSN
/// is a divergence: refused with the typed error, sticky, and fatal to
/// promotion.
#[test]
fn divergent_frame_is_refused_and_blocks_promotion() {
    let base = tmp("diverge");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::plain());
    for m in 1..=3 {
        set.apply(facts(cs.brian, m, 5.0)).unwrap();
    }
    drain(&mut set, "f1");

    // Forge a duplicate of LSN 2 with a different checksum — the claim
    // that some other history holds that position.
    let genuine = set.primary().unwrap().store().tail(2).unwrap()[0].clone();
    let forged = TailFrame {
        lsn: 2,
        crc: genuine.crc ^ 0xDEAD_BEEF,
        payload: genuine.payload,
    };
    let f1 = set.follower_mut("f1").unwrap();
    match f1.handle(ReplicaMsg::Frames {
        epoch: 0,
        frames: vec![forged],
    }) {
        Err(ReplicaError::Diverged { lsn, .. }) => assert_eq!(lsn, 2),
        other => panic!("expected Diverged, got {other:?}"),
    }
    assert!(f1.is_refusing());
    // Sticky: even a clean heartbeat-driven frame stream is refused now.
    let genuine_again = ReplicaMsg::Frames {
        epoch: 0,
        frames: set.primary().unwrap().store().tail(2).unwrap(),
    };
    assert!(matches!(
        set.follower_mut("f1").unwrap().handle(genuine_again),
        Err(ReplicaError::Diverged { .. })
    ));
    // A diverged follower can never be promoted: the refusal is
    // surfaced as a typed error naming the member, before the set
    // dismantles anything.
    assert!(matches!(
        set.promote("f1"),
        Err(ReplicaError::RefusedMember { ref node, .. }) if node == "f1"
    ));
    std::fs::remove_dir_all(&base).ok();
}

/// Promotion bumps the epoch and fences the deposed primary; stale
/// epochs are refused everywhere.
#[test]
fn promotion_fences_deposed_primary_and_stale_epochs() {
    let base = tmp("fence");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::plain());
    for m in 1..=4 {
        set.apply(facts(cs.paul, m, 3.0)).unwrap();
    }
    drain(&mut set, "f1");
    let expect = serialise(set.primary().unwrap().schema());
    let expect_answer = answer(set.primary().unwrap().schema());

    let expect_warehouse = mvolap_storage::persist::catalog_digest(
        &mvolap_core::logical::build_multiversion_warehouse(set.primary().unwrap().schema())
            .unwrap(),
    );

    let new_epoch = set.promote("f1").unwrap();
    assert_eq!(new_epoch, 1);
    assert_eq!(set.epoch(), 1);
    let promoted = set.primary().unwrap();
    assert_eq!(promoted.name(), "f1");
    assert_eq!(serialise(promoted.schema()), expect);
    assert_eq!(answer(promoted.schema()), expect_answer);
    // Even the exported §5.1 warehouse tables are byte-identical.
    assert_eq!(
        mvolap_storage::persist::catalog_digest(
            &mvolap_core::logical::build_multiversion_warehouse(promoted.schema()).unwrap()
        ),
        expect_warehouse
    );

    // The deposed primary refuses every further write.
    let retired = set.retired_mut().unwrap();
    assert!(retired.is_fenced());
    match retired.apply(facts(cs.paul, 5, 9.9)) {
        Err(ReplicaError::Fenced { .. }) => {}
        other => panic!("expected Fenced, got {other:?}"),
    }
    assert!(matches!(
        set.retired_mut().unwrap().checkpoint(),
        Err(ReplicaError::Fenced { .. })
    ));

    // Stale-epoch traffic is refused by followers too.
    set.add_follower("f2", Io::plain());
    drain(&mut set, "f2");
    assert_eq!(set.follower("f2").unwrap().epoch(), 1);
    match set
        .follower_mut("f2")
        .unwrap()
        .handle(ReplicaMsg::Heartbeat {
            epoch: 0,
            next_lsn: 99,
        }) {
        Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 1),
        other => panic!("expected Fenced, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Member names full of wire metacharacters (spaces, backslashes, tabs,
/// newlines, non-ASCII) survive the escaped token encoding end to end.
#[test]
fn awkward_member_names_survive_the_wire() {
    let base = tmp("escape");
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd.clone(),
        opts(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .unwrap();
    set.add_follower("f1", Io::plain());
    for name in [
        "Dept with spaces",
        "back\\slash\\dept",
        "tab\tand\nnewline",
        "unicode—départ№7",
        " leading and trailing ",
    ] {
        set.apply(WalRecord::Create {
            dim: cs.org,
            name: name.into(),
            level: Some("Department".into()),
            at: Instant::ym(2004, 1),
            parents: vec![cs.sales],
        })
        .unwrap();
    }
    drain(&mut set, "f1");
    let primary = set.primary().unwrap();
    let follower = set.follower("f1").unwrap();
    assert_eq!(
        serialise(follower.schema().unwrap()),
        serialise(primary.schema())
    );
    assert_eq!(
        primary.store().tail(1).unwrap(),
        follower.store().unwrap().tail(1).unwrap(),
        "escaped frames must decode back to identical logs"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// The full failover sweep: crash the primary or follower at every I/O
/// primitive and fault the transport at every step; every injection
/// point must leave a promotable, byte-identical ensemble.
#[test]
fn replica_sweep_holds_at_every_injection_point() {
    let base = tmp("sweep");
    let outcome = replica_sweep(&base, 0xFA11_0FE8, 12).expect("sweep invariants");
    assert!(
        outcome.injection_points >= 200,
        "need a real sweep, got {outcome:?}"
    );
    assert!(outcome.primary_crashes > 0, "{outcome:?}");
    assert!(outcome.follower_crashes > 0, "{outcome:?}");
    assert!(outcome.transport_faults > 0, "{outcome:?}");
    assert!(outcome.promotions > 0, "{outcome:?}");
    assert!(outcome.fenced_refusals > 0, "{outcome:?}");
    assert_eq!(outcome.divergence_refusals, 3, "{outcome:?}");
    std::fs::remove_dir_all(&base).ok();
}
