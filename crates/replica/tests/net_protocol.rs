//! Protocol fuzz table for the networked transport: every malformed or
//! hostile exchange must surface as a *typed* [`ReplicaError`] — never
//! a panic, never a hang (every socket carries a read timeout), never
//! a silent success. One test per row:
//!
//! * truncated length prefix        → `Transport`
//! * oversized length field         → `Protocol`
//! * CRC-mismatched frame           → `Protocol`
//! * mid-stream disconnect          → `Transport`
//! * stale-epoch request            → fence reply / `Fenced`
//! * undecodable message payload    → `Protocol` (server survives)
//!
//! and for the quorum envelope (`qack` / `votereq` / `vote`):
//!
//! * truncated quorum ack           → `Protocol` (server survives)
//! * stale-epoch vote request       → `Fenced`
//! * duplicate vote                 → idempotent re-grant; a second
//!   candidate in the same epoch is a typed `Protocol` violation
//! * vote for an under-ranked candidate → `Protocol`
//!
//! and for the batched frame envelope the async pump ships
//! (`batch <n> <frames …>*`):
//!
//! * truncated inner `frames` message → `Protocol`
//! * oversized inner frame count      → `Protocol`
//! * lying outer batch count          → `Protocol`
//!
//! and for the membership wire records (`snap` / `reconfig`):
//!
//! * truncated `snap` chunk           → `Protocol`
//! * lying chunk count                → `Protocol` (assembly dropped)
//! * stale-epoch reconfig             → `Fenced`
//! * unexpected chunk at a server     → typed `err` (server survives)
//!
//! Named `net_*` so CI's network job runs exactly this surface.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use mvolap_core::case_study;
use mvolap_durable::checksum::crc32;
use mvolap_durable::{frame, CheckpointPolicy, DurableTmd, Io, Options};
use mvolap_replica::{
    decode_batch, encode_batch, esc_bytes, sync_follower, Follower, NetAddr, NetClient, NetConfig,
    PrimaryNode, ReplicaError, ReplicaMsg, ReplicaServer, ServerConfig,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_netproto_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options {
        segment_bytes: 2048,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

/// Strict client config: tight read timeout, no reconnects — a
/// misbehaving server must surface as an error on the first exchange.
fn strict_cfg() -> NetConfig {
    NetConfig {
        connect_timeout_ms: 2_000,
        read_timeout_ms: 500,
        write_timeout_ms: 2_000,
        reconnect_attempts: 0,
        backoff_start_ms: 0,
    }
}

fn hello() -> ReplicaMsg {
    ReplicaMsg::Hello {
        node: "probe".into(),
        epoch: 0,
        next_lsn: 1,
        last_crc: 0,
    }
}

/// A server that misbehaves on exactly one connection: accepts it,
/// hands it to `abuse`, then exits.
fn rogue_server(abuse: impl FnOnce(TcpStream) + Send + 'static) -> NetAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = NetAddr::Tcp(listener.local_addr().unwrap().to_string());
    std::thread::spawn(move || {
        if let Ok((stream, _)) = listener.accept() {
            abuse(stream);
        }
    });
    addr
}

/// Reads and discards one whole frame so the client's request is fully
/// consumed before the abuse starts.
fn swallow_request(s: &mut TcpStream) {
    let mut hdr = [0u8; frame::HEADER];
    s.read_exact(&mut hdr).unwrap();
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).unwrap();
}

#[test]
fn net_truncated_length_prefix_is_a_typed_transport_error() {
    let addr = rogue_server(|mut s| {
        swallow_request(&mut s);
        // Half a header, then hang up.
        s.write_all(&[0x2a, 0, 0, 0]).unwrap();
    });
    let mut client = NetClient::connect(addr, strict_cfg());
    match client.request(&hello()) {
        Err(ReplicaError::Transport(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn net_oversized_length_field_is_a_typed_protocol_error() {
    let addr = rogue_server(|mut s| {
        swallow_request(&mut s);
        let huge = (frame::MAX_PAYLOAD as u32) + 1;
        let mut hdr = huge.to_le_bytes().to_vec();
        hdr.extend_from_slice(&0u32.to_le_bytes());
        s.write_all(&hdr).unwrap();
        // Keep the connection open: the client must refuse from the
        // header alone, not wait for (or allocate) the claimed body.
        std::thread::sleep(std::time::Duration::from_millis(1_500));
    });
    let mut client = NetClient::connect(addr, strict_cfg());
    match client.request(&hello()) {
        Err(ReplicaError::Protocol(m)) => assert!(m.contains("exceeds"), "{m}"),
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

#[test]
fn net_crc_mismatched_frame_is_a_typed_protocol_error() {
    let addr = rogue_server(|mut s| {
        swallow_request(&mut s);
        let payload = b"batch 0";
        let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&(crc32(payload) ^ 0xDEAD_BEEF).to_le_bytes());
        buf.extend_from_slice(payload);
        s.write_all(&buf).unwrap();
    });
    let mut client = NetClient::connect(addr, strict_cfg());
    match client.request(&hello()) {
        Err(ReplicaError::Protocol(m)) => assert!(m.contains("checksum"), "{m}"),
        other => panic!("expected a protocol error, got {other:?}"),
    }
}

#[test]
fn net_mid_stream_disconnect_is_a_typed_transport_error() {
    let addr = rogue_server(|mut s| {
        // Take the whole request, answer nothing, hang up.
        swallow_request(&mut s);
    });
    let mut client = NetClient::connect(addr, strict_cfg());
    match client.request(&hello()) {
        Err(ReplicaError::Transport(_)) => {}
        other => panic!("expected a transport error, got {other:?}"),
    }
}

/// A stale-epoch request against a real server is answered with
/// nothing but `fence`, and a fenced server refuses everyone: the
/// syncing client surfaces it as the typed [`ReplicaError::Fenced`].
#[test]
fn net_stale_epoch_request_is_fenced_at_the_protocol_layer() {
    let base = tmp("stale");
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(&base.join("p"), cs.tmd, opts(), Io::plain()).unwrap();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 3)));
    let server = ReplicaServer::spawn(
        &NetAddr::Tcp("127.0.0.1:0".into()),
        primary,
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = NetClient::connect(server.addr().clone(), strict_cfg());

    // A stale ack (epoch 0 against a server at 3) plants nothing — the
    // server answers only with its fence.
    let reply = client
        .request(&ReplicaMsg::Ack {
            node: "old".into(),
            epoch: 0,
            next_lsn: 99,
        })
        .unwrap();
    assert_eq!(reply, vec![ReplicaMsg::Fence { epoch: 3 }]);
    assert_eq!(server.acked_lsn("old"), 0, "stale ack was not recorded");

    // A newer-epoch fence deposes the server; syncing against it now
    // surfaces the typed refusal.
    client.request(&ReplicaMsg::Fence { epoch: 4 }).unwrap();
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    match sync_follower(&mut client, &mut f) {
        Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 4),
        other => panic!("expected Fenced, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// Truncated or garbled quorum-envelope messages must die in the
/// decoder as typed `Protocol` errors — and when one arrives over the
/// wire, the server refuses it cleanly and keeps serving.
#[test]
fn net_truncated_quorum_ack_is_refused_and_server_survives() {
    // The decoder first: every truncation of a valid qack (and a vote
    // with a non-numeric LSN) is a typed refusal, never a panic.
    let full = ReplicaMsg::QuorumAck {
        node: "m1".into(),
        epoch: 3,
        applied_lsn: 9,
        synced_lsn: 9,
    }
    .encode();
    let text = String::from_utf8(full.clone()).unwrap();
    for cut in ["qack", "qack m1", "qack m1 3", "qack m1 3 9"] {
        assert!(
            matches!(
                ReplicaMsg::decode(cut.as_bytes()),
                Err(ReplicaError::Protocol(_))
            ),
            "truncation {cut:?} was not a typed protocol error"
        );
    }
    assert!(
        matches!(
            ReplicaMsg::decode(format!("{text} trailing").as_bytes()),
            Err(ReplicaError::Protocol(_))
        ),
        "trailing garbage accepted"
    );
    assert!(matches!(
        ReplicaMsg::decode(b"vote m1 3 cand notanumber"),
        Err(ReplicaError::Protocol(_))
    ));

    // Then the wire: a real replica server answers the truncated ack
    // with a typed `err` frame and survives for the next client.
    let base = tmp("qack");
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(&base.join("p"), cs.tmd, opts(), Io::plain()).unwrap();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let server = ReplicaServer::spawn(
        &NetAddr::Tcp("127.0.0.1:0".into()),
        primary,
        ServerConfig::default(),
    )
    .unwrap();
    let mut rogue = NetClient::connect(server.addr().clone(), strict_cfg());
    let reply = rogue
        .rpc(b"qack m1 3 9")
        .expect("the refusal must be a clean frame");
    let reply_text = String::from_utf8(reply).unwrap();
    assert!(reply_text.starts_with("err "), "{reply_text}");
    assert_eq!(server.acked_lsn("m1"), 0, "truncated ack was recorded");

    let mut client = NetClient::connect(server.addr().clone(), strict_cfg());
    let replies = client.request(&hello()).unwrap();
    assert!(
        matches!(replies.first(), Some(ReplicaMsg::Heartbeat { .. })),
        "{replies:?}"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A vote request that does not open a new epoch is refused with the
/// typed `Fenced` error carrying the voter's current epoch.
#[test]
fn net_stale_epoch_vote_request_is_fenced() {
    let base = tmp("stalevote");
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    // The member is at epoch 5 (learnt from its primary's heartbeat).
    f.handle(ReplicaMsg::Heartbeat {
        epoch: 5,
        next_lsn: 1,
    })
    .unwrap();
    // A vote request from epoch 3 — decoded off the wire, as the
    // supervisor would deliver it — must be fenced, not granted.
    let stale = ReplicaMsg::decode(
        &ReplicaMsg::VoteRequest {
            candidate: "cand".into(),
            epoch: 3,
            synced_lsn: 99,
        }
        .encode(),
    )
    .unwrap();
    match f.handle(stale) {
        Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 5),
        other => panic!("expected Fenced, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// One candidate per epoch: re-granting the same candidate is
/// idempotent (lost grants can be re-requested), while a *different*
/// candidate in the same epoch is a typed protocol violation — the
/// split-vote guard.
#[test]
fn net_duplicate_vote_is_idempotent_and_second_candidate_refused() {
    let base = tmp("dupvote");
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    let req = |candidate: &str| {
        ReplicaMsg::decode(
            &ReplicaMsg::VoteRequest {
                candidate: candidate.into(),
                epoch: 7,
                synced_lsn: 42,
            }
            .encode(),
        )
        .unwrap()
    };
    let first = f.handle(req("cand-a")).expect("first vote granted");
    let again = f.handle(req("cand-a")).expect("re-grant is idempotent");
    assert_eq!(first, again, "duplicate grant differs from the original");
    assert!(
        matches!(
            first,
            Some(ReplicaMsg::VoteGrant { ref candidate, epoch: 7, .. }) if candidate == "cand-a"
        ),
        "{first:?}"
    );
    match f.handle(req("cand-b")) {
        Err(ReplicaError::Protocol(m)) => assert!(m.contains("already voted"), "{m}"),
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A vote request whose credential ranks below the voter's own is
/// refused: electing it could lose quorum-acknowledged records.
#[test]
fn net_under_ranked_candidate_is_refused() {
    let base = tmp("rankvote");
    let cs = case_study::case_study();
    // Give the voter real state so its own position outranks a
    // candidate claiming less.
    let store = DurableTmd::create_with(&base.join("p"), cs.tmd, opts(), Io::plain()).unwrap();
    let position = store.wal_position();
    drop(store);
    let mut f = Follower::open("f1", base.join("p"), opts(), Io::plain()).unwrap();
    let lowball = ReplicaMsg::decode(
        &ReplicaMsg::VoteRequest {
            candidate: "cand".into(),
            epoch: 2,
            synced_lsn: position - 1,
        }
        .encode(),
    )
    .unwrap();
    match f.handle(lowball) {
        Err(ReplicaError::Protocol(m)) => assert!(m.contains("ranks below"), "{m}"),
        other => panic!("expected a typed refusal, got {other:?}"),
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A frame that passes the CRC but does not decode as a protocol
/// message gets a typed `err` refusal — and the server survives to
/// serve the next, well-formed client.
#[test]
fn net_undecodable_payload_is_refused_and_server_survives() {
    let base = tmp("garbage");
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(&base.join("p"), cs.tmd, opts(), Io::plain()).unwrap();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let server = ReplicaServer::spawn(
        &NetAddr::Tcp("127.0.0.1:0".into()),
        primary,
        ServerConfig::default(),
    )
    .unwrap();

    let mut rogue = NetClient::connect(server.addr().clone(), strict_cfg());
    let reply = rogue
        .rpc(b"warp speed")
        .expect("the refusal itself must be a clean frame");
    let text = String::from_utf8(reply).unwrap();
    assert!(text.starts_with("err "), "{text}");

    // A fresh, well-formed client is served normally afterwards.
    let mut client = NetClient::connect(server.addr().clone(), strict_cfg());
    let replies = client.request(&hello()).unwrap();
    assert!(
        matches!(
            replies.first(),
            Some(ReplicaMsg::Heartbeat { epoch: 0, .. })
        ),
        "{replies:?}"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Fuzz rows for the **batched frame envelope** — the async pump's
/// wire shape: one `batch` envelope carrying several `frames`
/// messages (many WAL frames per request/reply round-trip). A valid
/// envelope round-trips exactly; truncated or oversized inner frames
/// die in the decoder as typed `Protocol` errors, never a panic.
#[test]
fn net_batched_frame_envelope_rejects_truncated_and_oversized_inners() {
    use mvolap_durable::TailFrame;
    let frame = |lsn: u64, payload: &[u8]| TailFrame {
        lsn,
        crc: crc32(payload),
        payload: payload.to_vec(),
    };

    // The happy row first: heartbeat + two frames messages in one
    // envelope — exactly what a pump ships — survives the round-trip.
    let msgs = vec![
        ReplicaMsg::Heartbeat {
            epoch: 3,
            next_lsn: 7,
        },
        ReplicaMsg::Frames {
            epoch: 3,
            frames: vec![frame(4, b"alpha"), frame(5, b"beta gamma")],
        },
        ReplicaMsg::Frames {
            epoch: 3,
            frames: vec![frame(6, &[0, 1, 2, 255])],
        },
    ];
    assert_eq!(decode_batch(&encode_batch(&msgs)).unwrap(), msgs);

    // An envelope whose inner frames message is cut anywhere — or
    // lies about its counts — is a typed protocol refusal.
    let wrap = |inner: &str| format!("batch 1 {}", esc_bytes(inner.as_bytes())).into_bytes();
    let truncated_or_oversized = [
        // Truncations of `frames <epoch> <n> (<lsn> <crc> <payload>)*`.
        "frames",
        "frames 3",
        "frames 3 2",
        "frames 3 2 4",
        "frames 3 2 4 12345",
        "frames 3 2 4 12345 alpha",
        "frames 3 2 4 12345 alpha 5 678",
        // Inner count larger than the frames actually present.
        "frames 3 9 4 12345 alpha",
        // Inner count past the decoder's hard cap (1 << 20).
        "frames 3 99999999",
        "frames 3 18446744073709551615",
        // Non-numeric and overflowing frame fields.
        "frames 3 1 notanlsn 12345 alpha",
        "frames 3 1 4 99999999999 alpha",
    ];
    for inner in truncated_or_oversized {
        assert!(
            matches!(decode_batch(&wrap(inner)), Err(ReplicaError::Protocol(_))),
            "inner {inner:?} was not a typed protocol error"
        );
    }

    // Trailing garbage after a complete inner message is refused too.
    let mut good = String::from_utf8(
        ReplicaMsg::Frames {
            epoch: 3,
            frames: vec![frame(4, b"alpha")],
        }
        .encode(),
    )
    .unwrap();
    good.push_str(" trailing");
    assert!(matches!(
        decode_batch(&wrap(&good)),
        Err(ReplicaError::Protocol(_))
    ));

    // And the envelope itself: a batch count exceeding its own cap or
    // claiming more messages than present is refused before any inner
    // decode runs.
    for envelope in [
        b"batch 2".as_slice(),
        b"batch 99999999999999999999".as_slice(),
        b"batch 1048577".as_slice(),
    ] {
        assert!(
            matches!(decode_batch(envelope), Err(ReplicaError::Protocol(_))),
            "envelope {:?} was not a typed protocol error",
            String::from_utf8_lossy(envelope)
        );
    }
}

/// The membership wire records: truncated `snap` chunks and malformed
/// `reconfig` records die in the decoder as typed `Protocol` errors; a
/// reassembly whose bytes do not add up to the declared image size (a
/// lying chunk count) is refused and the assembly dropped; a
/// stale-epoch reconfig is fenced; and a server that receives a chunk
/// it never asked for answers with a typed `err` frame and survives.
#[test]
fn net_snap_chunk_and_reconfig_rows_are_typed_refusals() {
    // Decoder rows: truncations and structural lies, also wrapped in
    // the pump's batch envelope (the only way these ship for real).
    let rows = [
        "snap",                      // bare tag
        "snap 1",                    // epoch only
        "snap 1 2 0 1",              // no byte count, no chunk
        "snap 1 2 0 1 3",            // no chunk payload
        "snap 1 2 3 3 10 abc",       // seq outside total
        "snap 1 2 0 0 10 abc",       // zero total
        "snap 1 2 0 1 2 abc",        // chunk larger than declared image
        "snap 1 2 0 1 3 abc extra",  // trailing garbage
        "reconfig",                  // bare tag
        "reconfig 1 add m3",         // no address
        "reconfig 1 sideways m3 a",  // unknown direction
        "reconfig notanint add m a", // non-numeric epoch
    ];
    for row in rows {
        assert!(
            matches!(
                ReplicaMsg::decode(row.as_bytes()),
                Err(ReplicaError::Protocol(_))
            ),
            "row {row:?} was not a typed protocol error"
        );
        let enveloped = format!("batch 1 {}", esc_bytes(row.as_bytes())).into_bytes();
        assert!(
            matches!(decode_batch(&enveloped), Err(ReplicaError::Protocol(_))),
            "enveloped row {row:?} was not a typed protocol error"
        );
    }

    // Lying chunk count: both chunks arrive and the sequence is
    // complete, but the bytes do not add up to the declared image
    // size. The follower refuses with a typed `Protocol` error, drops
    // the assembly, and accepts a fresh (honest) restart at seq 0.
    let base = tmp("snapfuzz");
    let mut f = Follower::create("f1", base.join("f"), opts(), Io::plain());
    let chunk = |seq: u64, total_bytes: u64, body: &[u8]| ReplicaMsg::SnapChunk {
        epoch: 0,
        next_lsn: 9,
        seq,
        total: 2,
        total_bytes,
        chunk: body.to_vec(),
    };
    f.handle(chunk(0, 10, b"abc"))
        .expect("first chunk accepted");
    match f.handle(chunk(1, 10, b"def")) {
        Err(ReplicaError::Protocol(m)) => assert!(m.contains("lying"), "{m}"),
        other => panic!("lying chunk count accepted: {other:?}"),
    }
    // The poisoned assembly is gone: a continuation is refused as an
    // out-of-order start, not resumed.
    match f.handle(chunk(1, 6, b"def")) {
        Err(ReplicaError::Protocol(_)) => {}
        other => panic!("continuation after drop accepted: {other:?}"),
    }

    // Stale-epoch reconfig: a follower fenced at epoch 3 refuses an
    // epoch-1 reconfig with the typed `Fenced`, like any stale write.
    f.handle(ReplicaMsg::Fence { epoch: 3 }).unwrap();
    match f.handle(ReplicaMsg::Reconfig {
        epoch: 1,
        add: true,
        member: "m9".into(),
        addr: "tcp:127.0.0.1:0".into(),
    }) {
        Err(ReplicaError::Fenced { epoch }) => assert_eq!(epoch, 3),
        other => panic!("stale-epoch reconfig accepted: {other:?}"),
    }

    // A chunk the server never asked for: answered with a typed `err`
    // frame — no hang, and the next client is served normally.
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(&base.join("p"), cs.tmd, opts(), Io::plain()).unwrap();
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let server = ReplicaServer::spawn(
        &NetAddr::Tcp("127.0.0.1:0".into()),
        primary,
        ServerConfig::default(),
    )
    .unwrap();
    let mut rogue = NetClient::connect(server.addr().clone(), strict_cfg());
    let reply = rogue
        .rpc(&chunk(0, 3, b"abc").encode())
        .expect("the refusal must be a clean frame");
    let reply_text = String::from_utf8(reply).unwrap();
    assert!(reply_text.starts_with("err "), "{reply_text}");

    let mut client = NetClient::connect(server.addr().clone(), strict_cfg());
    let replies = client.request(&hello()).unwrap();
    assert!(
        matches!(replies.first(), Some(ReplicaMsg::Heartbeat { .. })),
        "{replies:?}"
    );
    std::fs::remove_dir_all(&base).ok();
}
