//! Clock abstraction driving the supervision loop.
//!
//! [`ReplicaSet::tick`](crate::set::ReplicaSet::tick) is deliberately
//! clock-free — sweeps count time in ticks. A deployment needs real
//! time between rounds; a test needs controllable time. [`Clock`]
//! covers both: [`SystemClock`] sleeps for real, [`ManualClock`] keeps
//! a shared counter that `sleep_ms` merely advances, and can hand the
//! same counter to a store as a [`TimeSource`] so replication rounds
//! and wall-clock checkpoint policies observe one coherent timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use mvolap_durable::TimeSource;

/// A source of "now" plus the ability to wait.
pub trait Clock {
    /// Current time in milliseconds.
    fn now_ms(&self) -> u64;

    /// Waits `ms` milliseconds (or advances a manual timeline by it).
    fn sleep_ms(&self, ms: u64);
}

/// The real clock: UNIX-epoch milliseconds and genuine thread sleeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64)
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A deterministic clock for tests: time is a shared counter and
/// "sleeping" advances it instantly.
#[derive(Debug, Clone)]
pub struct ManualClock {
    cell: Arc<AtomicU64>,
}

impl ManualClock {
    /// A manual clock starting at `start_ms`.
    pub fn new(start_ms: u64) -> ManualClock {
        ManualClock {
            cell: Arc::new(AtomicU64::new(start_ms)),
        }
    }

    /// Advances the clock by `ms` and returns the new now.
    pub fn advance(&self, ms: u64) -> u64 {
        self.cell.fetch_add(ms, Ordering::SeqCst) + ms
    }

    /// A [`TimeSource`] sharing this clock's counter — give it to a
    /// [`mvolap_durable::DurableTmd`] so store-side wall-clock policies
    /// see the same timeline the supervisor sleeps through.
    pub fn time_source(&self) -> TimeSource {
        TimeSource::Manual(Arc::clone(&self.cell))
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new(0)
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.cell.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_sleep_advances_shared_timeline() {
        let c = ManualClock::new(10);
        let ts = c.time_source();
        c.sleep_ms(90);
        assert_eq!(c.now_ms(), 100);
        assert_eq!(ts.now_ms(), 100, "store-side source shares the counter");
    }

    #[test]
    fn system_clock_reports_epoch_millis() {
        let c = SystemClock;
        assert!(c.now_ms() > 1_600_000_000_000, "after Sep 2020");
    }
}
