//! `mvolap-replica` — WAL-shipping replication for the temporal
//! warehouse: followers, divergence detection and fault-injected
//! failover.
//!
//! The durability crate journals every evolution operator as a
//! CRC-framed, LSN-addressed WAL record; this crate ships those frames
//! to follower nodes and supervises the ensemble:
//!
//! * **Tailing** ([`WalTailer`]). The primary serves its log from any
//!   LSN; positions already pruned by checkpointing are served as a
//!   covering checkpoint *snapshot* instead, and the follower
//!   re-bootstraps from it at the right LSN.
//! * **Replay through the validated path** ([`Follower`]). A follower
//!   journals the frames it receives into its own WAL + checkpoint
//!   store via the same validated apply path the primary committed
//!   them with. Record encoding is canonical, so the follower's log is
//!   *byte-identical* to the primary's at every LSN — frame-CRC
//!   comparison is therefore a sound divergence test in both
//!   directions.
//! * **Divergence refusal.** A follower whose log provably forks from
//!   the serving primary's (CRC mismatch at a shared LSN, or frames
//!   past the primary's head) is refused with a typed
//!   [`ReplicaError::Diverged`] — never patched, never silently
//!   rewound.
//! * **Supervision** ([`ReplicaSet`]). Heartbeat-based liveness,
//!   bounded retry with exponential backoff on transport errors, and
//!   explicit promotion: the epoch is bumped and the deposed primary
//!   is *fenced* — it refuses every further write with
//!   [`ReplicaError::Fenced`].
//! * **Fault-injected failover proof** ([`replica_sweep`]). The
//!   durable crate's crash sweep, extended: the primary or follower is
//!   killed at every I/O primitive (torn writes included) and the
//!   transport faulted at every step; at each point the promoted
//!   follower must answer queries byte-identically to the surviving
//!   prefix.
//! * **Networked transport** ([`net`]). The same protocol over real
//!   TCP or unix sockets: every request and reply is one CRC frame of
//!   canonical escaped-token text, with explicit connect/read/write
//!   timeouts, bounded reconnect, and epoch fencing enforced at the
//!   protocol layer by [`ReplicaServer`]. The failover sweep also runs
//!   over loopback TCP ([`replica_sweep_net`]), with socket faults —
//!   dropped and stalled connections — injected by a [`FaultProxy`].
//!
//! The supervision core is deterministic and single-threaded; time
//! advances only through [`ReplicaSet::tick`], driven in deployments by
//! a [`Clock`] ([`SystemClock`] for real time, [`ManualClock`] for
//! tests).

#![warn(missing_docs)]

pub mod clock;
pub mod error;
pub mod follower;
pub mod net;
pub mod record;
pub mod set;
pub mod sweep;
pub mod tailer;
pub mod transport;

pub use clock::{Clock, ManualClock, SystemClock};
pub use error::{ReplicaError, TransportError};
pub use follower::Follower;
pub use net::{
    accept_loop, decode_batch, encode_batch, read_frame, stop_listener, sync_follower, write_frame,
    FaultProxy, FrameReader, MsgRouter, NetAddr, NetClient, NetConfig, NetListener, NetStream,
    ProxyFault, ReplicaServer, ServerConfig, SyncRound, TcpTransport,
};
pub use record::{esc_bytes, unesc_bytes, ReplicaMsg};
pub use set::{LinkState, PrimaryNode, ReplicaConfig, ReplicaSet, SetStats, TickEvent};
pub use sweep::{replica_sweep, replica_sweep_net, ReplicaSweepOutcome};
pub use tailer::{TailSource, WalTailer};
pub use transport::{ChannelTransport, FaultyTransport, LossMode, ReplicaTransport};
