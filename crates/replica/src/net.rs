//! Networked replication: sockets under the same protocol.
//!
//! Everything the in-process transport moves as byte vectors crosses a
//! real socket here, framed exactly like the WAL itself: each request
//! and each reply is **one** `[len u32 LE][crc32 u32 LE][payload]`
//! frame ([`mvolap_durable::frame`]), and every payload is
//! space-separated escaped-token text reusing the canonical
//! [`ReplicaMsg`] encoding. TCP and unix sockets share one code path
//! ([`NetAddr`] / `NetStream`); every socket carries explicit connect,
//! read and write timeouts, so no request can hang an endpoint.
//!
//! Three endpoints live here:
//!
//! * [`MsgRouter`] — a loopback message router: a dumb, byte-level
//!   mailbox server (`send <to> <msg>` / `recv <node>`) that never
//!   decodes replication messages. [`TcpTransport`] speaks to it,
//!   giving [`crate::set::ReplicaSet`] (and the failover sweep) a real
//!   socket under the unchanged supervision protocol.
//! * [`ReplicaServer`] — the deployable primary-side server: each
//!   request is one [`ReplicaMsg`] (hello/ack/fence) answered from a
//!   shared [`PrimaryNode`] with a batch of replies (heartbeat +
//!   frames or snapshot). Epoch fencing is enforced at this layer: a
//!   request from a stale epoch is answered only with `fence`, and a
//!   request *proving* a newer primary exists fences the server
//!   itself.
//! * [`FaultProxy`] — a byte-level man-in-the-middle for the sweep: it
//!   counts request frames against a deterministic [`FaultPlan`] and,
//!   when the plan fires, drops or stalls the connection — the socket
//!   version of a lost or hung link.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream, ToSocketAddrs as _};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mvolap_durable::checksum::crc32;
use mvolap_durable::{frame, FaultPlan};

use crate::error::{ReplicaError, TransportError};
use crate::follower::Follower;
use crate::record::{esc_bytes, unesc_bytes, ReplicaMsg};
use crate::set::PrimaryNode;
use crate::tailer::TailSource;
use crate::transport::ReplicaTransport;

/// Upper bound on reply-batch counts, mirroring the record grammar cap.
const MAX_BATCH: u64 = 1 << 20;

// ---------------------------------------------------------------- addr

/// A listen/connect address: TCP (`host:port`) or a unix socket path
/// (`unix:/path/to.sock`), behind one code path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    /// A TCP address in `host:port` form.
    Tcp(String),
    /// A unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl NetAddr {
    /// Parses an address string: a `unix:` prefix selects a unix
    /// socket, anything else is TCP `host:port`.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Protocol`] for a `unix:` address on a platform
    /// without unix sockets.
    pub fn parse(s: &str) -> Result<NetAddr, ReplicaError> {
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            return Ok(NetAddr::Unix(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(ReplicaError::Protocol(format!(
                "unix socket address `{path}` unsupported on this platform"
            )));
        }
        Ok(NetAddr::Tcp(s.to_string()))
    }
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(a) => write!(f, "{a}"),
            #[cfg(unix)]
            NetAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// Socket timeouts and reconnect policy of one client endpoint.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// TCP connect timeout, milliseconds (0 = OS default).
    pub connect_timeout_ms: u64,
    /// Per-read timeout, milliseconds (0 = block forever).
    pub read_timeout_ms: u64,
    /// Per-write timeout, milliseconds (0 = block forever).
    pub write_timeout_ms: u64,
    /// How many times one request is retried over a *fresh* connection
    /// after a transient failure before the error surfaces.
    pub reconnect_attempts: u32,
    /// Wait before the first reconnect, milliseconds; doubles per
    /// consecutive failure — the supervisor's backoff shape.
    pub backoff_start_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout_ms: 1_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            reconnect_attempts: 3,
            backoff_start_ms: 20,
        }
    }
}

// -------------------------------------------------------------- stream

/// One connected socket, TCP or unix, with uniform Read/Write. Public
/// so higher-level servers (the session front-end in `mvolap-server`)
/// can reuse [`accept_loop`] and the framing helpers.
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

fn opt_ms(ms: u64) -> Option<Duration> {
    (ms > 0).then(|| Duration::from_millis(ms))
}

impl NetStream {
    fn connect(addr: &NetAddr, cfg: &NetConfig) -> std::io::Result<NetStream> {
        let s = match addr {
            NetAddr::Tcp(a) => {
                let sa = a.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        format!("`{a}` resolves to no address"),
                    )
                })?;
                let t = match opt_ms(cfg.connect_timeout_ms) {
                    Some(d) => TcpStream::connect_timeout(&sa, d)?,
                    None => TcpStream::connect(sa)?,
                };
                t.set_nodelay(true).ok();
                NetStream::Tcp(t)
            }
            #[cfg(unix)]
            NetAddr::Unix(p) => NetStream::Unix(UnixStream::connect(p)?),
        };
        s.set_timeouts(cfg.read_timeout_ms, cfg.write_timeout_ms)?;
        Ok(s)
    }

    /// Applies socket read/write timeouts (`0` disables one). They
    /// only govern *blocking* I/O — a connection parked non-blocking in
    /// a poll loop keeps them as latent socket options until a worker
    /// checks it back out with [`NetStream::set_nonblocking`]`(false)`.
    ///
    /// # Errors
    ///
    /// The underlying `setsockopt` failure.
    pub fn set_timeouts(&self, read_ms: u64, write_ms: u64) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(t) => {
                t.set_read_timeout(opt_ms(read_ms))?;
                t.set_write_timeout(opt_ms(write_ms))
            }
            #[cfg(unix)]
            NetStream::Unix(u) => {
                u.set_read_timeout(opt_ms(read_ms))?;
                u.set_write_timeout(opt_ms(write_ms))
            }
        }
    }

    /// Switches the socket between blocking and non-blocking mode.
    /// Public so a session poll loop can park accepted connections
    /// non-blocking (reads via [`FrameReader`]) and hand them back to
    /// blocking workers for the reply write.
    ///
    /// # Errors
    ///
    /// The underlying `fcntl`/`ioctl` failure.
    pub fn set_nonblocking(&self, nb: bool) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(t) => t.set_nonblocking(nb),
            #[cfg(unix)]
            NetStream::Unix(u) => u.set_nonblocking(nb),
        }
    }
}

impl std::io::Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(t) => t.read(buf),
            #[cfg(unix)]
            NetStream::Unix(u) => u.read(buf),
        }
    }
}

impl std::io::Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(t) => t.write(buf),
            #[cfg(unix)]
            NetStream::Unix(u) => u.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(t) => t.flush(),
            #[cfg(unix)]
            NetStream::Unix(u) => u.flush(),
        }
    }
}

/// A bound listener over either socket family.
#[derive(Debug)]
pub struct NetListener {
    addr: NetAddr,
    inner: ListenerInner,
}

#[derive(Debug)]
enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl NetListener {
    /// Binds in *non-blocking* mode: the accept loop polls, so a
    /// shutdown request is honoured within one poll interval even when
    /// the listener can no longer be reached (e.g. a unix socket file
    /// already unlinked).
    pub fn bind(addr: &NetAddr) -> std::io::Result<NetListener> {
        match addr {
            NetAddr::Tcp(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                let bound = NetAddr::Tcp(l.local_addr()?.to_string());
                Ok(NetListener {
                    addr: bound,
                    inner: ListenerInner::Tcp(l),
                })
            }
            #[cfg(unix)]
            NetAddr::Unix(p) => {
                // A previous listener's socket file refuses rebinding.
                std::fs::remove_file(p).ok();
                let l = UnixListener::bind(p)?;
                l.set_nonblocking(true)?;
                Ok(NetListener {
                    addr: addr.clone(),
                    inner: ListenerInner::Unix(l),
                })
            }
        }
    }

    /// The address actually bound — for TCP with port 0 this carries
    /// the kernel-assigned port.
    pub fn local_addr(&self) -> &NetAddr {
        &self.addr
    }

    /// One non-blocking accept attempt; the accepted stream is switched
    /// back to blocking (its timeouts govern it from here).
    pub fn try_accept(&self) -> std::io::Result<Option<NetStream>> {
        let res = match &self.inner {
            ListenerInner::Tcp(l) => l.accept().map(|(s, _)| NetStream::Tcp(s)),
            #[cfg(unix)]
            ListenerInner::Unix(l) => l.accept().map(|(s, _)| NetStream::Unix(s)),
        };
        match res {
            Ok(s) => {
                s.set_nonblocking(false)?;
                Ok(Some(s))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ------------------------------------------------------------- framing

/// Maps socket errors to the typed transport errors the supervisor
/// retries on: a timeout is `Down` (the peer may be alive but slow), a
/// reset or EOF is `Lost`.
fn io_err(e: &std::io::Error) -> ReplicaError {
    ReplicaError::from_io(e)
}

/// Writes one CRC frame.
///
/// # Errors
///
/// [`ReplicaError::Protocol`] on an oversized payload,
/// [`ReplicaError::Transport`] on socket failure.
pub fn write_frame(s: &mut NetStream, payload: &[u8]) -> Result<(), ReplicaError> {
    if payload.len() > frame::MAX_PAYLOAD {
        return Err(ReplicaError::Protocol(format!(
            "frame payload of {} bytes exceeds the {} cap",
            payload.len(),
            frame::MAX_PAYLOAD
        )));
    }
    s.write_all(&frame::encode(payload))
        .and_then(|()| s.flush())
        .map_err(|e| io_err(&e))
}

/// Reads one CRC frame. Every malformation is a typed error: a
/// truncated or timed-out read is [`ReplicaError::Transport`], an
/// oversized length field or checksum mismatch is
/// [`ReplicaError::Protocol`] — never a panic, never an unbounded
/// allocation, never an indefinite hang (given a read timeout).
///
/// # Errors
///
/// As described above.
pub fn read_frame(s: &mut NetStream) -> Result<Vec<u8>, ReplicaError> {
    let mut hdr = [0u8; frame::HEADER];
    s.read_exact(&mut hdr).map_err(|e| io_err(&e))?;
    let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes")) as usize;
    let sum = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes"));
    if len > frame::MAX_PAYLOAD {
        return Err(ReplicaError::Protocol(format!(
            "frame length {len} exceeds the {} cap",
            frame::MAX_PAYLOAD
        )));
    }
    let mut payload = vec![0u8; len];
    s.read_exact(&mut payload).map_err(|e| io_err(&e))?;
    if crc32(&payload) != sum {
        return Err(ReplicaError::protocol(
            "frame checksum mismatch on the wire",
        ));
    }
    Ok(payload)
}

/// Incremental CRC-frame reader for a connection parked in
/// *non-blocking* mode: bytes accumulate across [`FrameReader::poll`]
/// calls until one full `[len][crc][payload]` frame is buffered, so a
/// poll loop can multiplex thousands of mostly-idle connections without
/// dedicating a blocked thread (or a blocked `read_frame`) to each.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader (no partial frame buffered).
    #[must_use]
    pub fn new() -> FrameReader {
        FrameReader { buf: Vec::new() }
    }

    /// Bytes of the partial frame currently buffered — diagnostics.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// One poll: drains whatever the non-blocking socket has and
    /// returns the next complete frame payload, or `Ok(None)` when no
    /// full frame has arrived yet (the connection stays parked).
    /// Pipelined frames are returned one per call, oldest first.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Transport`] when the peer closed or the socket
    /// failed mid-read, [`ReplicaError::Protocol`] on an oversized
    /// length field or a checksum mismatch. Either way the connection
    /// is unusable and should be dropped.
    pub fn poll(&mut self, s: &mut NetStream) -> Result<Option<Vec<u8>>, ReplicaError> {
        loop {
            if let Some(payload) = self.take_frame()? {
                return Ok(Some(payload));
            }
            let mut chunk = [0u8; 4096];
            match s.read(&mut chunk) {
                Ok(0) => return Err(ReplicaError::Transport(TransportError::Lost)),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(&e)),
            }
        }
    }

    /// Splits one complete frame off the front of the buffer, if the
    /// header and payload have both fully arrived.
    fn take_frame(&mut self) -> Result<Option<Vec<u8>>, ReplicaError> {
        if self.buf.len() < frame::HEADER {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes")) as usize;
        let sum = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        if len > frame::MAX_PAYLOAD {
            return Err(ReplicaError::Protocol(format!(
                "frame length {len} exceeds the {} cap",
                frame::MAX_PAYLOAD
            )));
        }
        if self.buf.len() < frame::HEADER + len {
            return Ok(None);
        }
        let payload = self.buf[frame::HEADER..frame::HEADER + len].to_vec();
        self.buf.drain(..frame::HEADER + len);
        if crc32(&payload) != sum {
            return Err(ReplicaError::protocol(
                "frame checksum mismatch on the wire",
            ));
        }
        Ok(Some(payload))
    }
}

// ----------------------------------------------------------- envelopes

/// Encodes messages into the `batch <n> <msg-token>*` wire envelope —
/// the server-reply grammar, shared with the async replication pump,
/// which packs many `frames` messages into one envelope so a single
/// request/reply round-trip ships a whole in-flight window of WAL
/// frames.
pub fn encode_batch(msgs: &[ReplicaMsg]) -> Vec<u8> {
    reply_batch(msgs)
}

/// Decodes a `batch`/`err` envelope back into its messages — the
/// inverse of [`encode_batch`]; an `err` envelope becomes a typed
/// [`ReplicaError::Protocol`].
///
/// # Errors
///
/// [`ReplicaError::Protocol`] on a malformed envelope: a count over
/// the cap, a truncated message list, trailing tokens, or any inner
/// message that fails its own decode.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<ReplicaMsg>, ReplicaError> {
    parse_reply(payload)
}

/// `batch <n> <msg-token>*` — a server reply carrying n messages.
fn reply_batch(msgs: &[ReplicaMsg]) -> Vec<u8> {
    let mut out = format!("batch {}", msgs.len());
    for m in msgs {
        out.push(' ');
        out.push_str(&esc_bytes(&m.encode()));
    }
    out.into_bytes()
}

/// `err <reason-token>` — a server-side refusal.
fn reply_err(reason: &str) -> Vec<u8> {
    format!("err {}", esc_bytes(reason.as_bytes())).into_bytes()
}

/// Decodes a reply envelope into its messages; an `err` reply becomes
/// a typed [`ReplicaError::Protocol`].
fn parse_reply(payload: &[u8]) -> Result<Vec<ReplicaMsg>, ReplicaError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| ReplicaError::protocol("reply is not UTF-8"))?;
    let mut toks = text.split(' ');
    match toks.next() {
        Some("batch") => {
            let n: u64 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| ReplicaError::protocol("batch reply missing count"))?;
            if n > MAX_BATCH {
                return Err(ReplicaError::Protocol(format!(
                    "batch count {n} exceeds cap {MAX_BATCH}"
                )));
            }
            let mut msgs = Vec::with_capacity(n as usize);
            for i in 0..n {
                let tok = toks.next().ok_or_else(|| {
                    ReplicaError::Protocol(format!("batch reply truncated at message {i}"))
                })?;
                msgs.push(ReplicaMsg::decode(&unesc_bytes(tok, "batch message")?)?);
            }
            match toks.next() {
                None => Ok(msgs),
                Some(extra) => Err(ReplicaError::Protocol(format!(
                    "trailing token `{extra}` after batch"
                ))),
            }
        }
        Some("err") => {
            let tok = toks
                .next()
                .ok_or_else(|| ReplicaError::protocol("err reply missing reason"))?;
            let reason = String::from_utf8(unesc_bytes(tok, "err reason")?)
                .map_err(|_| ReplicaError::protocol("err reason is not UTF-8"))?;
            Err(ReplicaError::Protocol(format!("server refused: {reason}")))
        }
        other => Err(ReplicaError::Protocol(format!(
            "unknown reply envelope {other:?}"
        ))),
    }
}

// -------------------------------------------------------- accept loop

/// Polls `listener` until `flag` is raised, handing each accepted
/// connection (timeouts applied) to `serve` on its own thread. Polling
/// — not blocking — accept keeps shutdown bounded even when the
/// listener can no longer be woken by a connection.
pub fn accept_loop<F>(
    listener: &NetListener,
    flag: &AtomicBool,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    serve: &Arc<F>,
) where
    F: Fn(NetStream) + Send + Sync + 'static,
{
    loop {
        if flag.load(Ordering::SeqCst) {
            return;
        }
        match listener.try_accept() {
            Ok(Some(conn)) => {
                conn.set_timeouts(read_timeout_ms, write_timeout_ms).ok();
                let serve = Arc::clone(serve);
                std::thread::spawn(move || serve(conn));
            }
            Ok(None) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

// ---------------------------------------------------------- msg router

/// Serves one accepted connection until any error (including a read
/// timeout or the peer closing) ends it.
fn router_conn(
    mut s: NetStream,
    inboxes: &Mutex<BTreeMap<String, std::collections::VecDeque<Vec<u8>>>>,
) {
    loop {
        let Ok(req) = read_frame(&mut s) else { return };
        let reply = match route_request(&req, inboxes) {
            Ok(r) => r,
            Err(e) => reply_err(&e.to_string()),
        };
        if write_frame(&mut s, &reply).is_err() {
            return;
        }
    }
}

/// One router request: `send <to> <msg>` enqueues raw bytes, `recv
/// <node>` pops them (`batch 0` when the inbox is empty).
fn route_request(
    req: &[u8],
    inboxes: &Mutex<BTreeMap<String, std::collections::VecDeque<Vec<u8>>>>,
) -> Result<Vec<u8>, ReplicaError> {
    let text =
        std::str::from_utf8(req).map_err(|_| ReplicaError::protocol("request is not UTF-8"))?;
    let mut toks = text.split(' ');
    let op = toks.next().unwrap_or("");
    let node = |t: Option<&str>| -> Result<String, ReplicaError> {
        let tok = t.ok_or_else(|| ReplicaError::protocol("request missing node"))?;
        String::from_utf8(unesc_bytes(tok, "node")?)
            .map_err(|_| ReplicaError::protocol("node is not UTF-8"))
    };
    match op {
        "send" => {
            let to = node(toks.next())?;
            let msg = unesc_bytes(
                toks.next()
                    .ok_or_else(|| ReplicaError::protocol("send missing message"))?,
                "send message",
            )?;
            if toks.next().is_some() {
                return Err(ReplicaError::protocol("trailing tokens after send"));
            }
            let mut map = inboxes.lock().unwrap_or_else(|e| e.into_inner());
            map.entry(to).or_default().push_back(msg);
            Ok(b"batch 0".to_vec())
        }
        "recv" => {
            let who = node(toks.next())?;
            if toks.next().is_some() {
                return Err(ReplicaError::protocol("trailing tokens after recv"));
            }
            let mut map = inboxes.lock().unwrap_or_else(|e| e.into_inner());
            match map
                .get_mut(&who)
                .and_then(std::collections::VecDeque::pop_front)
            {
                // The router never decodes: the popped bytes ship as an
                // opaque token and the *client* decodes, exactly as the
                // in-process transport does on its own inboxes.
                Some(wire) => Ok(format!("batch 1 {}", esc_bytes(&wire)).into_bytes()),
                None => Ok(b"batch 0".to_vec()),
            }
        }
        other => Err(ReplicaError::Protocol(format!(
            "unknown router request `{other}`"
        ))),
    }
}

/// A loopback message router: per-node FIFO inboxes behind a socket.
/// [`TcpTransport`] is its client; together they are the in-process
/// [`crate::transport::ChannelTransport`] with a real network in the
/// middle. Accepts any number of concurrent connections.
#[derive(Debug)]
pub struct MsgRouter {
    addr: NetAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl MsgRouter {
    /// Binds `bind` (use port 0 for an ephemeral TCP port) and serves
    /// until dropped.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Transport`] when the address cannot be bound.
    pub fn spawn(bind: &NetAddr) -> Result<MsgRouter, ReplicaError> {
        let listener = NetListener::bind(bind).map_err(|e| io_err(&e))?;
        let addr = listener.addr.clone();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let inboxes: Arc<Mutex<BTreeMap<String, std::collections::VecDeque<Vec<u8>>>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let serve = Arc::new(move |conn| router_conn(conn, &inboxes));
        let accept =
            std::thread::spawn(move || accept_loop(&listener, &flag, 10_000, 10_000, &serve));
        Ok(MsgRouter {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The actually-bound address (the ephemeral port resolved).
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// Stops accepting and joins the accept thread. Connection threads
    /// end on their own once their peers hang up.
    pub fn stop(&mut self) {
        stop_listener(&self.shutdown, &mut self.accept);
    }
}

impl Drop for MsgRouter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sets the shutdown flag and joins the (polling) accept loop, which
/// notices the flag within one poll interval.
pub fn stop_listener(shutdown: &AtomicBool, accept: &mut Option<std::thread::JoinHandle<()>>) {
    if shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Some(h) = accept.take() {
        h.join().ok();
    }
}

// ----------------------------------------------------------- netclient

/// A connection-caching request/reply client: one frame out, one frame
/// back, with bounded reconnect (each retry starts a fresh connection
/// after an exponentially growing wait).
#[derive(Debug)]
pub struct NetClient {
    addr: NetAddr,
    cfg: NetConfig,
    conn: Option<NetStream>,
}

impl NetClient {
    /// A client for `addr`; connects lazily on first use.
    pub fn connect(addr: NetAddr, cfg: NetConfig) -> NetClient {
        NetClient {
            addr,
            cfg,
            conn: None,
        }
    }

    /// The server address.
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    fn rpc_once(&mut self, req: &[u8]) -> Result<Vec<u8>, ReplicaError> {
        if self.conn.is_none() {
            self.conn = Some(NetStream::connect(&self.addr, &self.cfg).map_err(|e| io_err(&e))?);
        }
        let s = self.conn.as_mut().expect("just connected");
        let res = write_frame(s, req).and_then(|()| read_frame(s));
        if res.is_err() {
            // The stream may hold half a frame; never reuse it.
            self.conn = None;
        }
        res
    }

    /// One raw request/reply exchange, reconnecting per the config.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Transport`] once reconnects are exhausted;
    /// [`ReplicaError::Protocol`] on malformed frames.
    pub fn rpc(&mut self, req: &[u8]) -> Result<Vec<u8>, ReplicaError> {
        let mut wait = self.cfg.backoff_start_ms;
        let mut attempt = 0u32;
        loop {
            match self.rpc_once(req) {
                Ok(reply) => return Ok(reply),
                Err(e) if e.is_transient() && attempt < self.cfg.reconnect_attempts => {
                    attempt += 1;
                    if wait > 0 {
                        std::thread::sleep(Duration::from_millis(wait));
                    }
                    wait = wait.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one [`ReplicaMsg`] request and decodes the reply batch.
    ///
    /// # Errors
    ///
    /// As [`NetClient::rpc`], plus [`ReplicaError::Protocol`] for an
    /// `err` reply or a malformed batch.
    pub fn request(&mut self, msg: &ReplicaMsg) -> Result<Vec<ReplicaMsg>, ReplicaError> {
        parse_reply(&self.rpc(&msg.encode())?)
    }
}

// -------------------------------------------------------- tcptransport

fn as_transport(e: &ReplicaError) -> TransportError {
    match e {
        ReplicaError::Transport(t) => t.clone(),
        _ => TransportError::Lost,
    }
}

/// [`ReplicaTransport`] over a socket to a [`MsgRouter`]: every send
/// and receive is one framed request/reply on the wire. Despite the
/// name it speaks to unix-socket routers too — the address decides.
#[derive(Debug)]
pub struct TcpTransport {
    client: NetClient,
    steps: u64,
}

impl TcpTransport {
    /// A transport speaking to the router at `addr`.
    pub fn connect(addr: NetAddr, cfg: NetConfig) -> TcpTransport {
        TcpTransport {
            client: NetClient::connect(addr, cfg),
            steps: 0,
        }
    }
}

impl ReplicaTransport for TcpTransport {
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), TransportError> {
        self.steps += 1;
        let req = format!(
            "send {} {}",
            esc_bytes(to.as_bytes()),
            esc_bytes(&msg.encode())
        );
        let reply = self
            .client
            .rpc(req.as_bytes())
            .map_err(|e| as_transport(&e))?;
        parse_reply(&reply).map_err(|_| TransportError::Lost)?;
        Ok(())
    }

    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, TransportError> {
        self.steps += 1;
        let req = format!("recv {}", esc_bytes(node.as_bytes()));
        let reply = self
            .client
            .rpc(req.as_bytes())
            .map_err(|e| as_transport(&e))?;
        // A popped message that does not decode is lost on the wire,
        // exactly as on the in-process transport.
        let msgs = parse_reply(&reply).map_err(|_| TransportError::Lost)?;
        Ok(msgs.into_iter().next())
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

// ---------------------------------------------------------- faultproxy

/// How a firing [`FaultProxy`] mistreats the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProxyFault {
    /// Close the connection at once — the client sees a reset.
    Drop,
    /// Go silent for this many milliseconds (longer than the client's
    /// read timeout), then close — the client sees a timeout.
    Stall(u64),
}

/// A byte-level fault injector between a client and an upstream
/// server. It forwards whole frames and counts each *request* frame
/// against a [`FaultPlan`]; once the plan fires, the next
/// `outage_len` request frames are dropped or stalled per
/// [`ProxyFault`] (use `u64::MAX` for a permanent partition). Because
/// the supervisor is single-threaded — one request per transport
/// operation, one operation at a time — the request-frame count
/// enumerates transport operations deterministically.
#[derive(Debug)]
pub struct FaultProxy {
    addr: NetAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Listens on an ephemeral loopback port, proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Transport`] when the listener cannot bind.
    pub fn spawn(
        upstream: NetAddr,
        plan: FaultPlan,
        outage_len: u64,
        fault: ProxyFault,
    ) -> Result<FaultProxy, ReplicaError> {
        let listener =
            NetListener::bind(&NetAddr::Tcp("127.0.0.1:0".into())).map_err(|e| io_err(&e))?;
        let addr = listener.addr.clone();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        // (plan, frames faulted so far) — shared across connections so
        // the schedule survives reconnects.
        let state = Arc::new(Mutex::new((plan, 0u64)));
        let serve = Arc::new(move |conn| proxy_conn(conn, &upstream, &state, outage_len, fault));
        let accept =
            std::thread::spawn(move || accept_loop(&listener, &flag, 10_000, 10_000, &serve));
        Ok(FaultProxy {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The proxy's listen address — point the client here.
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn stop(&mut self) {
        stop_listener(&self.shutdown, &mut self.accept);
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn proxy_conn(
    mut client: NetStream,
    upstream: &NetAddr,
    state: &Mutex<(FaultPlan, u64)>,
    outage_len: u64,
    fault: ProxyFault,
) {
    let cfg = NetConfig {
        connect_timeout_ms: 1_000,
        read_timeout_ms: 10_000,
        write_timeout_ms: 10_000,
        reconnect_attempts: 0,
        backoff_start_ms: 0,
    };
    let Ok(mut up) = NetStream::connect(upstream, &cfg) else {
        return;
    };
    loop {
        let Ok(req) = read_frame(&mut client) else {
            return;
        };
        let fire = {
            let mut g = state.lock().unwrap_or_else(|e| e.into_inner());
            let due = g.0.fires() && g.1 < outage_len;
            if due {
                g.1 += 1;
            }
            due
        };
        if fire {
            match fault {
                ProxyFault::Drop => return,
                ProxyFault::Stall(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    return;
                }
            }
        }
        let forwarded = write_frame(&mut up, &req)
            .and_then(|()| read_frame(&mut up))
            .and_then(|reply| write_frame(&mut client, &reply));
        if forwarded.is_err() {
            return;
        }
    }
}

// ------------------------------------------------------- replicaserver

/// Tuning knobs of a [`ReplicaServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection read timeout, milliseconds; an idle connection
    /// past it is closed (clients reconnect transparently).
    pub read_timeout_ms: u64,
    /// Per-connection write timeout, milliseconds.
    pub write_timeout_ms: u64,
    /// Max WAL frames shipped per hello, as
    /// [`crate::set::ReplicaConfig::batch_frames`].
    pub batch_frames: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            batch_frames: 64,
        }
    }
}

/// The deployable primary-side server: blocking, one thread per
/// connection, each request one [`ReplicaMsg`] frame answered with one
/// reply-batch frame from a shared [`PrimaryNode`].
///
/// **Fencing at the protocol layer.** Every stateful request carries
/// the sender's epoch. A request from an older epoch is answered only
/// with `fence <current>` — a deposed node can never extract frames or
/// plant acks here. A request carrying a *newer* epoch proves a newer
/// primary exists: the server fences its own node on the spot and
/// answers `fence`, so a partitioned ex-primary cut off from the
/// supervisor still stops serving the moment any newer-epoch traffic
/// reaches it.
#[derive(Debug)]
pub struct ReplicaServer {
    addr: NetAddr,
    primary: Arc<Mutex<PrimaryNode>>,
    acked: Arc<Mutex<BTreeMap<String, u64>>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaServer {
    /// Binds `bind` and serves `primary` until stopped or dropped.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Transport`] when the address cannot be bound.
    pub fn spawn(
        bind: &NetAddr,
        primary: Arc<Mutex<PrimaryNode>>,
        cfg: ServerConfig,
    ) -> Result<ReplicaServer, ReplicaError> {
        let listener = NetListener::bind(bind).map_err(|e| io_err(&e))?;
        let addr = listener.addr.clone();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let acked: Arc<Mutex<BTreeMap<String, u64>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let node = Arc::clone(&primary);
        let acks = Arc::clone(&acked);
        let batch = cfg.batch_frames;
        let serve = Arc::new(move |conn| server_conn(conn, &node, &acks, batch));
        let accept = std::thread::spawn(move || {
            accept_loop(
                &listener,
                &flag,
                cfg.read_timeout_ms,
                cfg.write_timeout_ms,
                &serve,
            )
        });
        Ok(ReplicaServer {
            addr,
            primary,
            acked,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The actually-bound address.
    pub fn addr(&self) -> &NetAddr {
        &self.addr
    }

    /// The served node, shared — lock it to apply writes or checkpoint.
    pub fn primary(&self) -> Arc<Mutex<PrimaryNode>> {
        Arc::clone(&self.primary)
    }

    /// Highest LSN `node` has acknowledged as durable over this server.
    pub fn acked_lsn(&self, node: &str) -> u64 {
        self.acked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(node)
            .copied()
            .unwrap_or(0)
    }

    /// Stops accepting and joins the accept thread. Connection threads
    /// end on their own as peers hang up or time out.
    pub fn stop(&mut self) {
        stop_listener(&self.shutdown, &mut self.accept);
    }
}

impl Drop for ReplicaServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn server_conn(
    mut s: NetStream,
    primary: &Mutex<PrimaryNode>,
    acked: &Mutex<BTreeMap<String, u64>>,
    batch_frames: usize,
) {
    loop {
        let Ok(req) = read_frame(&mut s) else { return };
        let reply = match ReplicaMsg::decode(&req) {
            Ok(msg) => answer_request(primary, acked, batch_frames, msg),
            Err(e) => {
                // A garbage frame taints the stream; answer and close.
                let _ = write_frame(&mut s, &reply_err(&e.to_string()));
                return;
            }
        };
        if write_frame(&mut s, &reply).is_err() {
            return;
        }
    }
}

/// Answers one request from the shared primary, fencing rules first.
fn answer_request(
    primary: &Mutex<PrimaryNode>,
    acked: &Mutex<BTreeMap<String, u64>>,
    batch_frames: usize,
    msg: ReplicaMsg,
) -> Vec<u8> {
    let mut p = primary.lock().unwrap_or_else(|e| e.into_inner());
    let epoch = match &msg {
        ReplicaMsg::Hello { epoch, .. }
        | ReplicaMsg::Ack { epoch, .. }
        | ReplicaMsg::Fence { epoch } => *epoch,
        other => {
            return reply_err(&format!("unexpected {} request", other.kind()));
        }
    };
    if epoch > p.epoch() {
        // Proof of a newer primary: fence ourselves, answer fence.
        p.fence(epoch);
        return reply_batch(&[ReplicaMsg::Fence { epoch }]);
    }
    if p.is_fenced() {
        // Deposed: nothing but fence, whoever asks.
        return reply_batch(&[ReplicaMsg::Fence { epoch: p.epoch() }]);
    }
    if epoch < p.epoch() && !matches!(msg, ReplicaMsg::Hello { .. }) {
        // Stale senders are refused — except hellos: the server is
        // authoritative for the epoch, and a fresh or restarted
        // follower legitimately hellos at epoch 0 to be taught the
        // current one (via the heartbeat it gets back).
        return reply_batch(&[ReplicaMsg::Fence { epoch: p.epoch() }]);
    }
    match msg {
        ReplicaMsg::Hello {
            next_lsn, last_crc, ..
        } => {
            let my_epoch = p.epoch();
            let head = p.wal_position();
            let tailer = p.tailer();
            match tailer.verify_position(next_lsn, last_crc, head) {
                Ok(()) => {}
                Err(ReplicaError::Diverged {
                    lsn,
                    expected_crc,
                    got_crc,
                }) => {
                    return reply_batch(&[ReplicaMsg::Diverged {
                        epoch: my_epoch,
                        lsn,
                        expected_crc,
                        got_crc,
                    }]);
                }
                Err(e) => return reply_err(&format!("position check failed: {e}")),
            }
            let mut out = vec![ReplicaMsg::Heartbeat {
                epoch: my_epoch,
                next_lsn: head,
            }];
            if next_lsn < head {
                match tailer.fetch(next_lsn, batch_frames) {
                    Ok(TailSource::Frames(frames)) => out.push(ReplicaMsg::Frames {
                        epoch: my_epoch,
                        frames,
                    }),
                    Ok(TailSource::Snapshot { next_lsn, snapshot }) => {
                        out.push(ReplicaMsg::Snapshot {
                            epoch: my_epoch,
                            next_lsn,
                            snapshot,
                        });
                    }
                    // Serving-side read trouble: heartbeat only, the
                    // follower simply asks again.
                    Err(_) => {}
                }
            }
            reply_batch(&out)
        }
        ReplicaMsg::Ack { node, next_lsn, .. } => {
            let mut map = acked.lock().unwrap_or_else(|e| e.into_inner());
            let entry = map.entry(node).or_insert(0);
            *entry = (*entry).max(next_lsn);
            reply_batch(&[])
        }
        // epoch == current and not newer: nothing to do, report state.
        ReplicaMsg::Fence { .. } => reply_batch(&[ReplicaMsg::Fence { epoch: p.epoch() }]),
        _ => unreachable!("filtered above"),
    }
}

// ------------------------------------------------------- follower sync

/// What one [`sync_follower`] round observed.
#[derive(Debug, Clone, Copy)]
pub struct SyncRound {
    /// The server's log head (its next LSN) at the time of the round.
    pub head: u64,
    /// The follower's next LSN after applying the round's payload.
    pub next_lsn: u64,
}

impl SyncRound {
    /// Whether the follower holds everything the server does.
    pub fn caught_up(&self) -> bool {
        self.next_lsn >= self.head
    }
}

/// One synchronisation round of a [`Follower`] against a
/// [`ReplicaServer`]: send the follower's hello, apply whatever comes
/// back (heartbeat, frames or snapshot), forward the resulting ack.
///
/// # Errors
///
/// [`ReplicaError::Fenced`] when the server answers with a fence (it
/// is deposed, or it refuses our stale epoch) — stop following it;
/// [`ReplicaError::Diverged`] when our history provably forks from
/// its log; transport and protocol errors as raised.
pub fn sync_follower(client: &mut NetClient, f: &mut Follower) -> Result<SyncRound, ReplicaError> {
    let replies = client.request(&f.hello())?;
    let mut head = f.next_lsn();
    let mut ack = None;
    for msg in replies {
        if let ReplicaMsg::Fence { epoch } = msg {
            return Err(ReplicaError::Fenced { epoch });
        }
        if let ReplicaMsg::Heartbeat { next_lsn, .. } = &msg {
            head = *next_lsn;
        }
        if let Some(reply) = f.handle(msg)? {
            ack = Some(reply);
        }
    }
    if let Some(ack) = ack {
        client.request(&ack)?;
    }
    Ok(SyncRound {
        head,
        next_lsn: f.next_lsn(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parses_tcp_and_unix() {
        assert_eq!(
            NetAddr::parse("127.0.0.1:7070").unwrap(),
            NetAddr::Tcp("127.0.0.1:7070".into())
        );
        #[cfg(unix)]
        {
            let a = NetAddr::parse("unix:/tmp/x.sock").unwrap();
            assert_eq!(a, NetAddr::Unix(PathBuf::from("/tmp/x.sock")));
            assert_eq!(a.to_string(), "unix:/tmp/x.sock");
        }
    }

    #[test]
    fn reply_envelope_roundtrips_and_refuses() {
        let msgs = vec![
            ReplicaMsg::Heartbeat {
                epoch: 1,
                next_lsn: 9,
            },
            ReplicaMsg::Fence { epoch: 2 },
        ];
        assert_eq!(parse_reply(&reply_batch(&msgs)).unwrap(), msgs);
        assert_eq!(parse_reply(&reply_batch(&[])).unwrap(), vec![]);
        match parse_reply(&reply_err("no such thing")) {
            Err(ReplicaError::Protocol(m)) => assert!(m.contains("no such thing")),
            other => panic!("expected protocol error, got {other:?}"),
        }
        assert!(parse_reply(b"batch").is_err());
        assert!(parse_reply(b"batch 2 \\0").is_err());
        assert!(parse_reply(b"warp 1").is_err());
    }
}
