//! Fault-injected failover sweep: the replication subsystem's
//! correctness argument, executable.
//!
//! [`replica_sweep`] extends the durability crate's crash sweep to the
//! replicated setting. It runs the same seeded workload
//! ([`mvolap_durable::generate`]) on a primary with one attached
//! follower, then re-runs it once per injection point across three
//! fault classes:
//!
//! 1. **Primary crashes** — the primary's I/O layer crashes (torn
//!    writes included) at every I/O primitive; the follower is
//!    promoted and must answer queries **byte-identically** to the
//!    prefix it replicated, and must itself be a fully functional
//!    durable store (checkpoint + reopen).
//! 2. **Follower crashes** — the follower's I/O layer crashes at every
//!    primitive; the supervisor restarts it from its own directory and
//!    it must reconverge to the primary's exact final state.
//! 3. **Transport faults** — at every transport operation, either a
//!    short loud outage (the link must heal through bounded backoff
//!    and reconverge) or a permanent silent partition (the supervisor
//!    declares the link down; failover promotes the follower, the
//!    deposed primary must refuse writes with
//!    [`ReplicaError::Fenced`], and the promoted state must be a
//!    byte-identical prefix).
//!
//! A separate staged scenario forks two histories after a shared
//! prefix and proves divergence is refused with a typed error on both
//! sides of the protocol.
//!
//! The whole sweep is generic over how the transport is built
//! (`TransportLab`): [`replica_sweep`] runs it over the in-process
//! channel transport, [`replica_sweep_net`] over real TCP on loopback —
//! a [`MsgRouter`] per run, with socket faults
//! (dropped and stalled connections) injected by a
//! [`FaultProxy`] sitting between the client
//! and the router.

use std::path::Path;

use mvolap_core::persist::write_tmd;
use mvolap_core::Tmd;
use mvolap_durable::fault::{generate, Step, Workload};
use mvolap_durable::{CheckpointPolicy, DurableTmd, FaultPlan, Io, Options, WalRecord};

use crate::error::ReplicaError;
use crate::follower::Follower;
use crate::net::{FaultProxy, MsgRouter, NetAddr, NetConfig, ProxyFault, TcpTransport};
use crate::record::ReplicaMsg;
use crate::set::{LinkState, ReplicaConfig, ReplicaSet, TickEvent};
use crate::tailer::WalTailer;
use crate::transport::{ChannelTransport, FaultyTransport, LossMode, ReplicaTransport};

/// The reference query every surviving node must answer identically to
/// the in-memory prefix replay.
const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division IN MODE tcm";

/// Ticks the drain loop will spend waiting for a follower to converge
/// before giving up (far above the worst backoff chain).
const DRAIN_TICKS: usize = 64;

/// What a [`replica_sweep`] established.
#[derive(Debug, Default)]
pub struct ReplicaSweepOutcome {
    /// Total injection points exercised across all classes.
    pub injection_points: u64,
    /// Runs where the primary's I/O crashed.
    pub primary_crashes: u64,
    /// Runs where the follower's I/O crashed.
    pub follower_crashes: u64,
    /// Runs with an injected transport fault.
    pub transport_faults: u64,
    /// Successful promotions asserted prefix-consistent.
    pub promotions: u64,
    /// Deposed primaries observed refusing a write with `Fenced`.
    pub fenced_refusals: u64,
    /// Crashes so early no replica held any state to promote.
    pub unpromotable: u64,
    /// Snapshot bootstraps served over all runs (pruned-log path).
    pub snapshots_served: u64,
    /// Typed divergence refusals observed in the fork scenario.
    pub divergence_refusals: u64,
    /// Logical records in the workload.
    pub records: usize,
}

/// Store options matching the durable sweep: tiny segments so rotation
/// and pruning happen often, manual checkpoints only.
fn sweep_options() -> Options {
    Options {
        segment_bytes: 2048,
        policy: CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

fn sweep_config() -> ReplicaConfig {
    ReplicaConfig {
        batch_frames: 32,
        heartbeat_miss_limit: 3,
        max_retries: 4,
        backoff_start: 1,
    }
}

/// Builds the transports the sweep stages need. The sweep body is
/// generic over this, so the identical invariants run over the
/// in-process channel and over real sockets.
trait TransportLab {
    /// The transport this lab builds.
    type T: ReplicaTransport;

    /// A fault-free transport.
    fn clean(&self) -> Result<Self::T, String>;

    /// A transport suffering a short *loud* outage from step `j` that
    /// then heals.
    fn loud_outage(&self, j: u64, seed: u64) -> Result<Self::T, String>;

    /// A transport permanently partitioned from step `j` on.
    fn partition(&self, j: u64, seed: u64) -> Result<Self::T, String>;
}

/// The in-process lab: channel transports, faults injected by
/// [`FaultyTransport`].
struct ChannelLab;

impl TransportLab for ChannelLab {
    type T = FaultyTransport;

    fn clean(&self) -> Result<FaultyTransport, String> {
        // An outage of zero operations: the plan fires but nothing is
        // ever faulted — behaviourally a plain channel transport.
        Ok(FaultyTransport::new(
            FaultPlan::crash_after(0, 0),
            0,
            LossMode::Error,
        ))
    }

    fn loud_outage(&self, j: u64, seed: u64) -> Result<FaultyTransport, String> {
        Ok(FaultyTransport::new(
            FaultPlan::crash_after(j, seed),
            3,
            LossMode::Error,
        ))
    }

    fn partition(&self, j: u64, seed: u64) -> Result<FaultyTransport, String> {
        Ok(FaultyTransport::new(
            FaultPlan::crash_after(j, seed),
            u64::MAX,
            LossMode::Silent,
        ))
    }
}

/// The loopback-TCP lab: every run gets its own [`MsgRouter`] on an
/// ephemeral port, and faulted runs put a [`FaultProxy`] between the
/// client and the router. A *loud* outage drops a few connections (the
/// client sees resets and the supervisor retries through backoff); a
/// partition stalls every connection past the client's read timeout,
/// which is how a dead link actually presents over a socket.
struct TcpLab {
    read_timeout_ms: u64,
    stall_ms: u64,
}

impl TcpLab {
    fn cfg(&self) -> NetConfig {
        NetConfig {
            connect_timeout_ms: 2_000,
            read_timeout_ms: self.read_timeout_ms,
            write_timeout_ms: 2_000,
            reconnect_attempts: 1,
            backoff_start_ms: 1,
        }
    }

    fn build(
        &self,
        fault: Option<(FaultPlan, u64, ProxyFault)>,
    ) -> Result<NetSweepTransport, String> {
        let router = MsgRouter::spawn(&NetAddr::Tcp("127.0.0.1:0".into()))
            .map_err(|e| format!("sweep router spawn: {e}"))?;
        let (proxy, addr) = match fault {
            Some((plan, outage_len, kind)) => {
                let p = FaultProxy::spawn(router.addr().clone(), plan, outage_len, kind)
                    .map_err(|e| format!("sweep proxy spawn: {e}"))?;
                let a = p.addr().clone();
                (Some(p), a)
            }
            None => (None, router.addr().clone()),
        };
        Ok(NetSweepTransport {
            inner: TcpTransport::connect(addr, self.cfg()),
            _proxy: proxy,
            _router: router,
        })
    }
}

impl TransportLab for TcpLab {
    type T = NetSweepTransport;

    fn clean(&self) -> Result<NetSweepTransport, String> {
        self.build(None)
    }

    fn loud_outage(&self, j: u64, seed: u64) -> Result<NetSweepTransport, String> {
        // Three dropped request frames: enough that the client's own
        // bounded reconnect cannot absorb the outage alone, so the
        // supervisor's retry/backoff path is exercised too.
        self.build(Some((FaultPlan::crash_after(j, seed), 3, ProxyFault::Drop)))
    }

    fn partition(&self, j: u64, seed: u64) -> Result<NetSweepTransport, String> {
        self.build(Some((
            FaultPlan::crash_after(j, seed),
            u64::MAX,
            ProxyFault::Stall(self.stall_ms),
        )))
    }
}

/// A [`TcpTransport`] bundled with the loopback infrastructure that
/// must outlive it; dropping it per run tears the sockets and threads
/// down so a long sweep never accumulates them.
struct NetSweepTransport {
    inner: TcpTransport,
    _proxy: Option<FaultProxy>,
    _router: MsgRouter,
}

impl ReplicaTransport for NetSweepTransport {
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), crate::error::TransportError> {
        self.inner.send(to, msg)
    }

    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, crate::error::TransportError> {
        self.inner.recv(node)
    }

    fn steps(&self) -> u64 {
        self.inner.steps()
    }
}

fn serialise(tmd: &Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).expect("in-memory serialisation cannot fail");
    buf
}

/// Fingerprints the reference query's full answer through the query
/// pipeline (`run_with_versions`), value bits and confidences included.
fn fingerprint(tmd: &Tmd) -> Result<Vec<String>, String> {
    let svs = tmd.structure_versions();
    let rs = mvolap_query::run_with_versions(tmd, &svs, QUERY)
        .map_err(|e| format!("query failed: {e}"))?;
    Ok(rs
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| format!("{}:{:?}", c.value.map_or(0, f64::to_bits), c.confidence))
                .collect();
            format!("{}|{}|{}", r.time, r.keys.join(","), cells.join(","))
        })
        .collect())
}

/// Result of one replicated workload run.
struct RunResult<T: ReplicaTransport> {
    /// The set, unless the primary crashed while bootstrapping.
    set: Option<ReplicaSet<T>>,
    committed: u64,
    primary_crashed: bool,
    follower_crashes: u64,
}

/// Runs `workload` on a fresh primary+follower set under `base`.
/// Non-faulty failures are hard errors; injected crashes are recorded.
/// With `restart_follower` set, a crashed follower is immediately
/// reopened from its directory (with plain I/O) and replication
/// continues.
fn run_replicated<T: ReplicaTransport>(
    base: &Path,
    workload: &Workload,
    primary_io: Io,
    follower_io: Io,
    transport: T,
    restart_follower: bool,
) -> Result<RunResult<T>, String> {
    std::fs::remove_dir_all(base).ok();
    let mut set = match ReplicaSet::bootstrap(
        base,
        workload.seed_schema.clone(),
        sweep_options(),
        sweep_config(),
        transport,
        primary_io,
    ) {
        Ok(set) => set,
        Err(ReplicaError::Durable(e)) if e.is_io_class() => {
            return Ok(RunResult {
                set: None,
                committed: 0,
                primary_crashed: true,
                follower_crashes: 0,
            })
        }
        Err(e) => return Err(format!("bootstrap failed non-faultily: {e}")),
    };
    set.add_follower("f1", follower_io);

    let mut committed = 0u64;
    let mut primary_crashed = false;
    let mut follower_crashes = 0u64;
    let handle_events = |set: &mut ReplicaSet<T>,
                         events: Vec<TickEvent>,
                         crashes: &mut u64|
     -> Result<(), String> {
        for ev in events {
            if let TickEvent::FollowerCrashed { node } = ev {
                *crashes += 1;
                if restart_follower {
                    set.restart_follower(&node)
                        .map_err(|e| format!("follower restart failed: {e}"))?;
                }
            }
        }
        Ok(())
    };

    for step in &workload.steps {
        let res = match step {
            Step::Op(record) => set.apply(record.clone()).map(|_| ()),
            Step::Checkpoint => set.checkpoint(),
        };
        match res {
            Ok(()) => {
                if matches!(step, Step::Op(_)) {
                    committed += 1;
                }
            }
            Err(ReplicaError::Durable(e)) if e.is_io_class() => {
                primary_crashed = true;
                break;
            }
            Err(e) => return Err(format!("workload step failed non-faultily: {e}")),
        }
        let events = set.tick();
        handle_events(&mut set, events, &mut follower_crashes)?;
    }

    if !primary_crashed {
        for _ in 0..DRAIN_TICKS {
            let head = set.primary().map_or(1, |p| p.wal_position());
            let done = set.follower("f1").is_none_or(|f| f.next_lsn() >= head);
            if done {
                break;
            }
            if matches!(
                set.link_state("f1"),
                Some(LinkState::Down | LinkState::Crashed | LinkState::Refusing)
            ) {
                break;
            }
            let events = set.tick();
            handle_events(&mut set, events, &mut follower_crashes)?;
        }
    }

    Ok(RunResult {
        set: Some(set),
        committed,
        primary_crashed,
        follower_crashes,
    })
}

/// Asserts the current primary of `set` (a just-promoted follower)
/// holds a byte-identical prefix of the workload history and answers
/// the reference query exactly like the in-memory replay of that
/// prefix. Returns the prefix length.
fn assert_promoted<T: ReplicaTransport>(
    set: &ReplicaSet<T>,
    prefix_bytes: &[Vec<u8>],
    prefix_tmds: &[Tmd],
    max_q: usize,
    what: &str,
) -> Result<usize, String> {
    let p = set.primary().expect("just promoted");
    let q = (p.wal_position() - 2) as usize;
    if q > max_q {
        return Err(format!(
            "{what}: promoted follower holds {q} records, more than the {max_q} attempted"
        ));
    }
    if serialise(p.schema()) != prefix_bytes[q] {
        return Err(format!(
            "{what}: promoted follower state is not byte-identical to prefix {q}"
        ));
    }
    if fingerprint(p.schema())? != fingerprint(&prefix_tmds[q])? {
        return Err(format!(
            "{what}: promoted follower answers the reference query differently at prefix {q}"
        ));
    }
    Ok(q)
}

/// Forks two histories after a shared prefix and proves both sides of
/// the protocol refuse the divergence with a typed error. Returns the
/// number of distinct refusals observed (primary-side gate,
/// follower-side duplicate check, promotion refusal).
fn divergence_scenario(base: &Path, seed: u64) -> Result<u64, String> {
    std::fs::remove_dir_all(base).ok();
    let workload = generate(seed, 8);
    let records: Vec<&WalRecord> = workload
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Op(r) => Some(r),
            Step::Checkpoint => None,
        })
        .collect();

    // History A: the full workload, replicated to follower f1.
    let set_base = base.join("a");
    let mut set = ReplicaSet::bootstrap(
        &set_base,
        workload.seed_schema.clone(),
        sweep_options(),
        sweep_config(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .map_err(|e| format!("fork scenario bootstrap: {e}"))?;
    set.add_follower("f1", Io::plain());
    for r in &records {
        set.apply((*r).clone())
            .map_err(|e| format!("fork scenario apply: {e}"))?;
        set.tick();
    }

    // History B: same prefix, but the last record is replaced by a
    // different (valid) evolution — the classic post-failover fork.
    let b_dir = base.join("b");
    let mut b = DurableTmd::create_with(
        &b_dir,
        workload.seed_schema.clone(),
        sweep_options(),
        Io::plain(),
    )
    .map_err(|e| format!("fork scenario history B create: {e}"))?;
    for r in &records[..records.len() - 1] {
        b.apply((*r).clone())
            .map_err(|e| format!("fork scenario history B apply: {e}"))?;
    }
    let fork = WalRecord::Create {
        dim: workload.org,
        name: "Dept-fork".to_string(),
        level: Some("Department".to_string()),
        at: mvolap_temporal::Instant::ym(2030, 1),
        parents: vec![mvolap_core::MemberVersionId(0)],
    };
    b.apply(fork)
        .map_err(|e| format!("fork record apply: {e}"))?;

    let mut refusals = 0u64;

    // Primary-side gate: f1's position claim names a frame CRC history
    // B never wrote — B must refuse to serve it.
    let f1 = set.follower("f1").expect("follower registered");
    let ReplicaMsg::Hello {
        next_lsn, last_crc, ..
    } = f1.hello()
    else {
        unreachable!("hello() builds a Hello")
    };
    let tailer = WalTailer::new(&b_dir);
    match tailer.verify_position(next_lsn, last_crc, b.wal_position()) {
        Err(ReplicaError::Diverged { lsn, .. }) => {
            if lsn != next_lsn - 1 {
                return Err(format!(
                    "fork scenario: divergence reported at LSN {lsn}, expected {}",
                    next_lsn - 1
                ));
            }
            refusals += 1;
        }
        other => {
            return Err(format!(
                "fork scenario: primary-side gate did not refuse ({other:?})"
            ))
        }
    }

    // Follower-side duplicate check: replaying history B's forked frame
    // over f1's log must be refused, and the refusal must be sticky.
    let fork_lsn = b.wal_position() - 1;
    let forked_frames = b
        .tail(fork_lsn)
        .map_err(|e| format!("fork scenario tail: {e}"))?;
    let mut set = set; // follower handle needs &mut access
    let f1 = set_follower_mut(&mut set, "f1");
    match f1.handle(ReplicaMsg::Frames {
        epoch: 0,
        frames: forked_frames,
    }) {
        Err(ReplicaError::Diverged { lsn, .. }) if lsn == fork_lsn => refusals += 1,
        other => {
            return Err(format!(
                "fork scenario: follower duplicate check did not refuse ({other:?})"
            ))
        }
    }
    if !f1.is_refusing() {
        return Err("fork scenario: refusal is not sticky".to_string());
    }

    // A refusing follower must never be promoted.
    match set.promote("f1") {
        Err(ReplicaError::RefusedMember { node, .. }) if node == "f1" => refusals += 1,
        other => {
            return Err(format!(
                "fork scenario: diverged follower was promotable ({other:?})"
            ))
        }
    }

    std::fs::remove_dir_all(base).ok();
    Ok(refusals)
}

/// `ReplicaSet` exposes followers immutably; the fork scenario needs to
/// drive `handle` directly, so it rebuilds a standalone handle over the
/// follower's directory.
fn set_follower_mut<'a, T: ReplicaTransport>(
    set: &'a mut ReplicaSet<T>,
    name: &str,
) -> &'a mut Follower {
    set.follower_mut(name).expect("follower registered")
}

/// Sweeps every fault-injection point of the replicated workload and
/// checks the failover invariants at each one.
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// replication bug.
pub fn replica_sweep(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<ReplicaSweepOutcome, String> {
    sweep_with(&ChannelLab, base_dir, seed, target_records)
}

/// [`replica_sweep`] over real TCP on loopback: every run ships its
/// frames through a [`MsgRouter`] socket, and
/// the transport-fault stage injects *socket* faults — dropped and
/// stalled connections — through a
/// [`FaultProxy`]. The invariants checked are
/// identical to the in-process sweep's.
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// replication (or socket-layer) bug.
pub fn replica_sweep_net(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<ReplicaSweepOutcome, String> {
    let lab = TcpLab {
        // Comfortably above a loopback round trip, comfortably below
        // anyone's patience: a stalled connection must time out fast
        // enough that exhausting the retry budget stays cheap.
        read_timeout_ms: 50,
        stall_ms: 150,
    };
    sweep_with(&lab, base_dir, seed, target_records)
}

fn sweep_with<L: TransportLab>(
    lab: &L,
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<ReplicaSweepOutcome, String> {
    let workload = generate(seed, target_records);

    // Prefix states, exactly as in the durable crash sweep.
    let mut prefix_bytes = Vec::with_capacity(workload.records + 1);
    let mut prefix_tmds = Vec::with_capacity(workload.records + 1);
    let mut state = workload.seed_schema.clone();
    prefix_bytes.push(serialise(&state));
    prefix_tmds.push(state.clone());
    for step in &workload.steps {
        if let Step::Op(record) = step {
            record
                .apply(&mut state)
                .map_err(|e| format!("prefix replay failed: {e}"))?;
            prefix_bytes.push(serialise(&state));
            prefix_tmds.push(state.clone());
        }
    }

    let mut outcome = ReplicaSweepOutcome {
        records: workload.records,
        ..ReplicaSweepOutcome::default()
    };

    // ---- Stage 0: fault-free replicated run ------------------------
    let free_dir = base_dir.join("free");
    let free = run_replicated(
        &free_dir,
        &workload,
        Io::plain(),
        Io::plain(),
        lab.clean()?,
        false,
    )?;
    let mut set = free.set.expect("fault-free run has a set");
    if free.primary_crashed || free.committed != workload.records as u64 {
        return Err(format!(
            "fault-free run committed {}/{} records",
            free.committed, workload.records
        ));
    }
    let head = set.primary().expect("primary lives").wal_position();
    {
        let f1 = set.follower("f1").expect("follower registered");
        if f1.next_lsn() != head {
            return Err(format!(
                "fault-free follower stopped at LSN {} of {head}",
                f1.next_lsn()
            ));
        }
        let schema = f1.schema().expect("follower bootstrapped");
        if serialise(schema) != prefix_bytes[workload.records] {
            return Err("fault-free follower diverged from the applied sequence".to_string());
        }
        if fingerprint(schema)? != fingerprint(&prefix_tmds[workload.records])? {
            return Err("fault-free follower answers the reference query differently".to_string());
        }
    }
    let primary_points = set.primary().expect("primary lives").store().io_ops();
    let follower_points = set.follower("f1").expect("follower registered").io_ops();
    let transport_points = set.transport_steps();

    // Late joiner: checkpointing first prunes the log's head, so the
    // new follower must be served the snapshot path.
    set.checkpoint()
        .map_err(|e| format!("post-workload checkpoint failed: {e}"))?;
    let pruned = set
        .primary()
        .expect("primary lives")
        .store()
        .oldest_lsn()
        .map_err(|e| format!("oldest_lsn failed: {e}"))?
        > 1;
    set.add_follower("f2", Io::plain());
    for _ in 0..DRAIN_TICKS {
        if set.follower("f2").is_some_and(|f| f.next_lsn() >= head) {
            break;
        }
        set.tick();
    }
    {
        let f2 = set.follower("f2").expect("late follower registered");
        if f2.next_lsn() != head {
            return Err(format!(
                "late follower stopped at LSN {} of {head}",
                f2.next_lsn()
            ));
        }
        if serialise(f2.schema().expect("late follower bootstrapped"))
            != prefix_bytes[workload.records]
        {
            return Err("late follower diverged from the applied sequence".to_string());
        }
        if pruned && set.stats().snapshots_served == 0 {
            return Err(
                "log head pruned but the late follower was never served a snapshot".to_string(),
            );
        }
    }
    outcome.snapshots_served += set.stats().snapshots_served;
    drop(set);

    // ---- Stage A: primary crashes at every I/O primitive -----------
    let a_dir = base_dir.join("p-crash");
    for k in 0..primary_points {
        outcome.injection_points += 1;
        outcome.primary_crashes += 1;
        let io = Io::faulty(FaultPlan::crash_after(k, seed));
        let run = run_replicated(&a_dir, &workload, io, Io::plain(), lab.clean()?, false)?;
        let Some(mut set) = run.set else {
            outcome.unpromotable += 1; // Crashed creating the primary.
            continue;
        };
        if !run.primary_crashed {
            return Err(format!("primary crash point {k} never fired"));
        }
        outcome.snapshots_served += set.stats().snapshots_served;
        let acked = set.acked_lsn("f1");
        let old = set.kill_primary().expect("primary present before kill");
        match set.promote("f1") {
            Ok(_) => {
                outcome.promotions += 1;
                assert_promoted(
                    &set,
                    &prefix_bytes,
                    &prefix_tmds,
                    run.committed as usize + 1,
                    &format!("primary crash {k}"),
                )?;
                // The promoted follower must be a fully functional
                // durable store: checkpoint, then recover from disk to
                // the same state.
                let dir = set.primary().expect("promoted").store().dir().to_path_buf();
                set.primary_mut()
                    .expect("promoted")
                    .checkpoint()
                    .map_err(|e| format!("primary crash {k}: promoted checkpoint failed: {e}"))?;
                let reopened = DurableTmd::open(&dir)
                    .map_err(|e| format!("primary crash {k}: promoted reopen failed: {e}"))?;
                if serialise(reopened.schema())
                    != serialise(set.primary().expect("promoted").schema())
                {
                    return Err(format!(
                        "primary crash {k}: promoted store does not survive reopen"
                    ));
                }
            }
            Err(_) if acked <= 1 => {
                // Nothing was ever replicated before the crash; there
                // is no replica to fail over to.
                outcome.unpromotable += 1;
            }
            Err(e) => {
                return Err(format!(
                    "primary crash {k}: promotion refused despite replicated state \
                     (acked {acked}): {e}"
                ))
            }
        }
        drop(old);
    }

    // ---- Stage B: follower crashes at every I/O primitive ----------
    let b_dir = base_dir.join("f-crash");
    for k in 0..follower_points {
        outcome.injection_points += 1;
        let io = Io::faulty(FaultPlan::crash_after(k, seed ^ 0x5EED_F011));
        let run = run_replicated(&b_dir, &workload, Io::plain(), io, lab.clean()?, true)?;
        if run.follower_crashes == 0 {
            return Err(format!("follower crash point {k} never fired"));
        }
        outcome.follower_crashes += 1;
        if run.primary_crashed || run.committed != workload.records as u64 {
            return Err(format!(
                "follower crash {k}: primary was disturbed ({} committed)",
                run.committed
            ));
        }
        let set = run.set.expect("set lives");
        outcome.snapshots_served += set.stats().snapshots_served;
        let head = set.primary().expect("primary lives").wal_position();
        let f1 = set.follower("f1").expect("follower registered");
        if f1.next_lsn() != head {
            return Err(format!(
                "follower crash {k}: restarted follower stopped at LSN {} of {head}",
                f1.next_lsn()
            ));
        }
        if serialise(f1.schema().expect("bootstrapped")) != prefix_bytes[workload.records] {
            return Err(format!(
                "follower crash {k}: restarted follower diverged from the applied sequence"
            ));
        }
    }

    // ---- Stage C: transport faults at every transport step ---------
    let c_dir = base_dir.join("t-fault");
    let mut healed_runs = 0u64;
    for j in 0..transport_points {
        outcome.injection_points += 1;
        outcome.transport_faults += 1;
        if j % 2 == 0 {
            // Short loud outage: bounded backoff must heal the link and
            // the follower must reconverge exactly.
            let t = lab.loud_outage(j, seed)?;
            let run = run_replicated(&c_dir, &workload, Io::plain(), Io::plain(), t, false)?;
            if run.primary_crashed || run.committed != workload.records as u64 {
                return Err(format!("transport fault {j}: primary was disturbed"));
            }
            let set = run.set.expect("set lives");
            outcome.snapshots_served += set.stats().snapshots_served;
            let head = set.primary().expect("primary lives").wal_position();
            let f1 = set.follower("f1").expect("follower registered");
            if f1.next_lsn() != head
                || serialise(f1.schema().expect("bootstrapped")) != prefix_bytes[workload.records]
            {
                return Err(format!(
                    "transport fault {j}: link did not heal to the exact final state \
                     (follower at {}, head {head})",
                    f1.next_lsn()
                ));
            }
            if set.stats().retries > 0 {
                healed_runs += 1;
            }
        } else {
            // Permanent partition: failover. The follower keeps its
            // surviving prefix, the deposed primary is fenced.
            let t = lab.partition(j, seed)?;
            let run = run_replicated(&c_dir, &workload, Io::plain(), Io::plain(), t, false)?;
            if run.primary_crashed || run.committed != workload.records as u64 {
                return Err(format!("transport fault {j}: primary was disturbed"));
            }
            let mut set = run.set.expect("set lives");
            outcome.snapshots_served += set.stats().snapshots_served;
            let acked = set.acked_lsn("f1");
            match set.promote("f1") {
                Ok(_) => {
                    outcome.promotions += 1;
                    assert_promoted(
                        &set,
                        &prefix_bytes,
                        &prefix_tmds,
                        workload.records,
                        &format!("transport fault {j}"),
                    )?;
                    let old = set.retired_mut().expect("deposed primary retained");
                    if !old.is_fenced() {
                        return Err(format!("transport fault {j}: deposed primary not fenced"));
                    }
                    let probe = workload
                        .steps
                        .iter()
                        .find_map(|s| match s {
                            Step::Op(r) => Some(r.clone()),
                            Step::Checkpoint => None,
                        })
                        .expect("workload has records");
                    match old.apply(probe) {
                        Err(ReplicaError::Fenced { .. }) => outcome.fenced_refusals += 1,
                        other => {
                            return Err(format!(
                                "transport fault {j}: deposed primary accepted a write \
                                 ({other:?})"
                            ))
                        }
                    }
                }
                Err(_) if acked <= 1 => outcome.unpromotable += 1,
                Err(e) => {
                    return Err(format!(
                        "transport fault {j}: promotion refused despite replicated state \
                         (acked {acked}): {e}"
                    ))
                }
            }
        }
    }
    if transport_points >= 8 && healed_runs == 0 {
        return Err("no transport outage ever exercised the retry/backoff path".to_string());
    }

    // ---- Divergence: forked histories refuse with typed errors -----
    outcome.divergence_refusals = divergence_scenario(&base_dir.join("fork"), seed)?;

    std::fs::remove_dir_all(&free_dir).ok();
    std::fs::remove_dir_all(&a_dir).ok();
    std::fs::remove_dir_all(&b_dir).ok();
    std::fs::remove_dir_all(&c_dir).ok();
    Ok(outcome)
}
