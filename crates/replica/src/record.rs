//! Wire grammar of the replication protocol.
//!
//! Messages are space-separated ASCII tokens, mirroring the WAL record
//! grammar in `mvolap-durable`: human-readable, canonical (decode ∘
//! encode is the identity on valid input) and self-describing. Binary
//! payloads (WAL frame bodies, checkpoint snapshots) travel as one
//! token under a byte-level escape: printable ASCII stays literal,
//! space becomes `\s`, backslash `\\`, tab `\t`, newline `\n`, any
//! other byte `\xHH`, and the empty payload is `\0`.

use crate::error::ReplicaError;
use mvolap_durable::TailFrame;

/// Upper bound on list counts, guarding against corrupt headers
/// allocating unbounded memory.
const MAX_COUNT: u64 = 1 << 20;

/// A replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaMsg {
    /// Follower → primary: announce position. `next_lsn` is the LSN the
    /// follower wants next; `last_crc` is the frame CRC it recorded at
    /// `next_lsn - 1` (0 when it has no log yet). The primary checks
    /// `last_crc` against its own log before serving — the divergence
    /// gate.
    Hello {
        /// Follower node name.
        node: String,
        /// Epoch the follower believes is current.
        epoch: u64,
        /// First LSN the follower is missing.
        next_lsn: u64,
        /// CRC of the follower's frame at `next_lsn - 1`; 0 if none.
        last_crc: u32,
    },
    /// Primary → follower: liveness beacon carrying the log head.
    Heartbeat {
        /// Current primary epoch.
        epoch: u64,
        /// Primary's next LSN (log head).
        next_lsn: u64,
    },
    /// Primary → follower: a batch of contiguous WAL frames.
    Frames {
        /// Current primary epoch.
        epoch: u64,
        /// Contiguous frames, ascending LSN.
        frames: Vec<TailFrame>,
    },
    /// Primary → follower: full-state bootstrap when the requested LSNs
    /// are pruned. The snapshot is a `core::persist` image covering
    /// everything below `next_lsn`.
    Snapshot {
        /// Current primary epoch.
        epoch: u64,
        /// LSN the follower should resume tailing from.
        next_lsn: u64,
        /// Serialised schema snapshot.
        snapshot: Vec<u8>,
    },
    /// Primary → follower: one chunk of a checkpoint snapshot, shipped
    /// through the pump's batch envelope so a large image never
    /// monopolises the in-flight window. Chunks are sequential
    /// (`seq` in `0..total`); the follower reassembles, verifies the
    /// byte count and installs once all `total` chunks arrived.
    /// Resumable: a reconnecting pump asks the follower which chunk it
    /// got up to and resumes there.
    SnapChunk {
        /// Current primary epoch.
        epoch: u64,
        /// LSN the follower resumes tailing from once installed.
        next_lsn: u64,
        /// This chunk's index, `0..total`.
        seq: u64,
        /// Total number of chunks in the image.
        total: u64,
        /// Total byte length of the reassembled image.
        total_bytes: u64,
        /// The chunk's bytes.
        chunk: Vec<u8>,
    },
    /// Primary → member: a quorum-committed membership change notice.
    /// Carries the same fields as the journaled `Reconfig` WAL record;
    /// members learn group changes from it without replaying the log.
    Reconfig {
        /// Epoch the reconfiguration was issued under.
        epoch: u64,
        /// `true` = `member` joins, `false` = it leaves.
        add: bool,
        /// The member id joining or leaving.
        member: String,
        /// The member's read-server address (empty for removals).
        addr: String,
    },
    /// Follower → primary: durable up to (excluding) `next_lsn`.
    Ack {
        /// Follower node name.
        node: String,
        /// Epoch the follower is at.
        epoch: u64,
        /// Follower's next LSN after journaling.
        next_lsn: u64,
    },
    /// Supervisor → follower: become primary at `epoch`.
    Promote {
        /// Node being promoted.
        node: String,
        /// The new, strictly larger epoch.
        epoch: u64,
    },
    /// Supervisor → old primary: stop accepting writes; `epoch` is the
    /// new primary's epoch.
    Fence {
        /// Epoch of the new primary.
        epoch: u64,
    },
    /// Primary → follower: your position contradicts my log; refuse.
    Diverged {
        /// Current primary epoch.
        epoch: u64,
        /// LSN at which the histories fork.
        lsn: u64,
        /// Frame CRC the primary holds at `lsn`.
        expected_crc: u32,
        /// Frame CRC the follower reported at `lsn`.
        got_crc: u32,
    },
    /// Member → primary: quorum ack carrying both replication
    /// positions. `applied_lsn` feeds fleet read routing (how fresh
    /// the member's schema is); `synced_lsn` is the member's quorum
    /// credential (everything below it is fsynced on the member) and
    /// advances the primary's quorum watermark.
    QuorumAck {
        /// Member node name.
        node: String,
        /// Epoch the member is at.
        epoch: u64,
        /// First LSN not yet applied to the member's schema.
        applied_lsn: u64,
        /// First LSN not yet durably synced on the member.
        synced_lsn: u64,
    },
    /// Candidate (via the supervisor) → member: request a vote for
    /// `candidate` in the new `epoch`. `synced_lsn` is the candidate's
    /// durably-synced position — its election credential.
    VoteRequest {
        /// Node standing for election.
        candidate: String,
        /// The proposed new epoch, strictly above the voter's.
        epoch: u64,
        /// The candidate's durably-synced position.
        synced_lsn: u64,
    },
    /// Member → candidate: one vote for `candidate` in `epoch`,
    /// carrying the voter's own synced position so the winner can
    /// report the electorate's commit floor.
    VoteGrant {
        /// The voting member's name.
        node: String,
        /// Epoch the vote is valid for.
        epoch: u64,
        /// Candidate the vote is for.
        candidate: String,
        /// The voter's durably-synced position.
        synced_lsn: u64,
    },
}

impl ReplicaMsg {
    /// Short tag naming the variant, for logs and errors.
    pub fn kind(&self) -> &'static str {
        match self {
            ReplicaMsg::Hello { .. } => "hello",
            ReplicaMsg::Heartbeat { .. } => "heartbeat",
            ReplicaMsg::Frames { .. } => "frames",
            ReplicaMsg::Snapshot { .. } => "snapshot",
            ReplicaMsg::SnapChunk { .. } => "snap",
            ReplicaMsg::Reconfig { .. } => "reconfig",
            ReplicaMsg::Ack { .. } => "ack",
            ReplicaMsg::Promote { .. } => "promote",
            ReplicaMsg::Fence { .. } => "fence",
            ReplicaMsg::Diverged { .. } => "diverged",
            ReplicaMsg::QuorumAck { .. } => "qack",
            ReplicaMsg::VoteRequest { .. } => "votereq",
            ReplicaMsg::VoteGrant { .. } => "vote",
        }
    }

    /// Canonical wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ReplicaMsg::Hello {
                node,
                epoch,
                next_lsn,
                last_crc,
            } => {
                e.tok("hello");
                e.bytes(node.as_bytes());
                e.u64(*epoch);
                e.u64(*next_lsn);
                e.u64(u64::from(*last_crc));
            }
            ReplicaMsg::Heartbeat { epoch, next_lsn } => {
                e.tok("heartbeat");
                e.u64(*epoch);
                e.u64(*next_lsn);
            }
            ReplicaMsg::Frames { epoch, frames } => {
                e.tok("frames");
                e.u64(*epoch);
                e.u64(frames.len() as u64);
                for f in frames {
                    e.u64(f.lsn);
                    e.u64(u64::from(f.crc));
                    e.bytes(&f.payload);
                }
            }
            ReplicaMsg::Snapshot {
                epoch,
                next_lsn,
                snapshot,
            } => {
                e.tok("snapshot");
                e.u64(*epoch);
                e.u64(*next_lsn);
                e.bytes(snapshot);
            }
            ReplicaMsg::SnapChunk {
                epoch,
                next_lsn,
                seq,
                total,
                total_bytes,
                chunk,
            } => {
                e.tok("snap");
                e.u64(*epoch);
                e.u64(*next_lsn);
                e.u64(*seq);
                e.u64(*total);
                e.u64(*total_bytes);
                e.bytes(chunk);
            }
            ReplicaMsg::Reconfig {
                epoch,
                add,
                member,
                addr,
            } => {
                e.tok("reconfig");
                e.u64(*epoch);
                e.tok(if *add { "add" } else { "remove" });
                e.bytes(member.as_bytes());
                e.bytes(addr.as_bytes());
            }
            ReplicaMsg::Ack {
                node,
                epoch,
                next_lsn,
            } => {
                e.tok("ack");
                e.bytes(node.as_bytes());
                e.u64(*epoch);
                e.u64(*next_lsn);
            }
            ReplicaMsg::Promote { node, epoch } => {
                e.tok("promote");
                e.bytes(node.as_bytes());
                e.u64(*epoch);
            }
            ReplicaMsg::Fence { epoch } => {
                e.tok("fence");
                e.u64(*epoch);
            }
            ReplicaMsg::Diverged {
                epoch,
                lsn,
                expected_crc,
                got_crc,
            } => {
                e.tok("diverged");
                e.u64(*epoch);
                e.u64(*lsn);
                e.u64(u64::from(*expected_crc));
                e.u64(u64::from(*got_crc));
            }
            ReplicaMsg::QuorumAck {
                node,
                epoch,
                applied_lsn,
                synced_lsn,
            } => {
                e.tok("qack");
                e.bytes(node.as_bytes());
                e.u64(*epoch);
                e.u64(*applied_lsn);
                e.u64(*synced_lsn);
            }
            ReplicaMsg::VoteRequest {
                candidate,
                epoch,
                synced_lsn,
            } => {
                e.tok("votereq");
                e.bytes(candidate.as_bytes());
                e.u64(*epoch);
                e.u64(*synced_lsn);
            }
            ReplicaMsg::VoteGrant {
                node,
                epoch,
                candidate,
                synced_lsn,
            } => {
                e.tok("vote");
                e.bytes(node.as_bytes());
                e.u64(*epoch);
                e.bytes(candidate.as_bytes());
                e.u64(*synced_lsn);
            }
        }
        e.out.into_bytes()
    }

    /// Decode a wire message; rejects trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<ReplicaMsg, ReplicaError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| ReplicaError::protocol("message is not UTF-8"))?;
        let mut d = Dec::new(text);
        let kind = d.tok("message kind")?.to_string();
        let msg = match kind.as_str() {
            "hello" => ReplicaMsg::Hello {
                node: d.name("hello node")?,
                epoch: d.u64("hello epoch")?,
                next_lsn: d.u64("hello next_lsn")?,
                last_crc: d.u32("hello last_crc")?,
            },
            "heartbeat" => ReplicaMsg::Heartbeat {
                epoch: d.u64("heartbeat epoch")?,
                next_lsn: d.u64("heartbeat next_lsn")?,
            },
            "frames" => {
                let epoch = d.u64("frames epoch")?;
                let n = d.count("frames count")?;
                let mut frames = Vec::with_capacity(n);
                for i in 0..n {
                    let lsn = d.u64(&format!("frame {i} lsn"))?;
                    let crc = d.u32(&format!("frame {i} crc"))?;
                    let payload = d.bytes(&format!("frame {i} payload"))?;
                    frames.push(TailFrame { lsn, crc, payload });
                }
                ReplicaMsg::Frames { epoch, frames }
            }
            "snapshot" => ReplicaMsg::Snapshot {
                epoch: d.u64("snapshot epoch")?,
                next_lsn: d.u64("snapshot next_lsn")?,
                snapshot: d.bytes("snapshot body")?,
            },
            "snap" => {
                let epoch = d.u64("snap epoch")?;
                let next_lsn = d.u64("snap next_lsn")?;
                let seq = d.u64("snap seq")?;
                let total = d.u64("snap total")?;
                let total_bytes = d.u64("snap total_bytes")?;
                let chunk = d.bytes("snap chunk")?;
                // Structural sanity only; the follower enforces the
                // assembly rules (ordering, byte-count honesty).
                if total == 0 || seq >= total {
                    return Err(ReplicaError::Protocol(format!(
                        "snap chunk {seq} outside total {total}"
                    )));
                }
                if chunk.len() as u64 > total_bytes {
                    return Err(ReplicaError::Protocol(format!(
                        "snap chunk of {} bytes exceeds declared image of {total_bytes}",
                        chunk.len()
                    )));
                }
                ReplicaMsg::SnapChunk {
                    epoch,
                    next_lsn,
                    seq,
                    total,
                    total_bytes,
                    chunk,
                }
            }
            "reconfig" => {
                let epoch = d.u64("reconfig epoch")?;
                let add = match d.tok("reconfig direction")? {
                    "add" => true,
                    "remove" => false,
                    t => {
                        return Err(ReplicaError::Protocol(format!(
                            "reconfig direction: expected add|remove, got `{t}`"
                        )))
                    }
                };
                ReplicaMsg::Reconfig {
                    epoch,
                    add,
                    member: d.name("reconfig member")?,
                    addr: d.name("reconfig addr")?,
                }
            }
            "ack" => ReplicaMsg::Ack {
                node: d.name("ack node")?,
                epoch: d.u64("ack epoch")?,
                next_lsn: d.u64("ack next_lsn")?,
            },
            "promote" => ReplicaMsg::Promote {
                node: d.name("promote node")?,
                epoch: d.u64("promote epoch")?,
            },
            "fence" => ReplicaMsg::Fence {
                epoch: d.u64("fence epoch")?,
            },
            "diverged" => ReplicaMsg::Diverged {
                epoch: d.u64("diverged epoch")?,
                lsn: d.u64("diverged lsn")?,
                expected_crc: d.u32("diverged expected_crc")?,
                got_crc: d.u32("diverged got_crc")?,
            },
            "qack" => ReplicaMsg::QuorumAck {
                node: d.name("qack node")?,
                epoch: d.u64("qack epoch")?,
                applied_lsn: d.u64("qack applied_lsn")?,
                synced_lsn: d.u64("qack synced_lsn")?,
            },
            "votereq" => ReplicaMsg::VoteRequest {
                candidate: d.name("votereq candidate")?,
                epoch: d.u64("votereq epoch")?,
                synced_lsn: d.u64("votereq synced_lsn")?,
            },
            "vote" => ReplicaMsg::VoteGrant {
                node: d.name("vote node")?,
                epoch: d.u64("vote epoch")?,
                candidate: d.name("vote candidate")?,
                synced_lsn: d.u64("vote synced_lsn")?,
            },
            other => {
                return Err(ReplicaError::Protocol(format!(
                    "unknown message kind `{other}`"
                )))
            }
        };
        d.finish()?;
        Ok(msg)
    }
}

/// Escape arbitrary bytes into a single space-free ASCII token — the
/// wire grammar's token encoding, shared by the replication protocol
/// and the session server's request grammar.
pub fn esc_bytes(b: &[u8]) -> String {
    if b.is_empty() {
        return "\\0".to_string();
    }
    let mut out = String::with_capacity(b.len() + 8);
    for &c in b {
        match c {
            b'\\' => out.push_str("\\\\"),
            b' ' => out.push_str("\\s"),
            b'\t' => out.push_str("\\t"),
            b'\n' => out.push_str("\\n"),
            0x21..=0x7e => out.push(c as char),
            other => {
                out.push_str(&format!("\\x{other:02x}"));
            }
        }
    }
    out
}

/// Inverse of [`esc_bytes`]; `what` names the token in error messages.
///
/// # Errors
///
/// [`ReplicaError::Protocol`] on a malformed escape sequence.
pub fn unesc_bytes(tok: &str, what: &str) -> Result<Vec<u8>, ReplicaError> {
    if tok == "\\0" {
        return Ok(Vec::new());
    }
    let mut out = Vec::with_capacity(tok.len());
    let mut chars = tok.bytes();
    while let Some(c) = chars.next() {
        if c != b'\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some(b'\\') => out.push(b'\\'),
            Some(b's') => out.push(b' '),
            Some(b't') => out.push(b'\t'),
            Some(b'n') => out.push(b'\n'),
            Some(b'x') => {
                let hi = chars.next();
                let lo = chars.next();
                let (Some(hi), Some(lo)) = (hi, lo) else {
                    return Err(ReplicaError::Protocol(format!(
                        "{what}: truncated \\x escape"
                    )));
                };
                let hex = |d: u8| -> Option<u8> {
                    match d {
                        b'0'..=b'9' => Some(d - b'0'),
                        b'a'..=b'f' => Some(d - b'a' + 10),
                        _ => None,
                    }
                };
                let (Some(hi), Some(lo)) = (hex(hi), hex(lo)) else {
                    return Err(ReplicaError::Protocol(format!(
                        "{what}: bad \\x escape digits"
                    )));
                };
                out.push(hi << 4 | lo);
            }
            other => {
                return Err(ReplicaError::Protocol(format!(
                    "{what}: bad escape {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

struct Enc {
    out: String,
}

impl Enc {
    fn new() -> Enc {
        Enc { out: String::new() }
    }

    fn sep(&mut self) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
    }

    fn tok(&mut self, t: &str) {
        self.sep();
        self.out.push_str(t);
    }

    fn u64(&mut self, v: u64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    fn bytes(&mut self, b: &[u8]) {
        self.sep();
        self.out.push_str(&esc_bytes(b));
    }
}

struct Dec<'a> {
    toks: std::str::Split<'a, char>,
}

impl<'a> Dec<'a> {
    fn new(text: &'a str) -> Dec<'a> {
        Dec {
            toks: text.split(' '),
        }
    }

    fn tok(&mut self, what: &str) -> Result<&'a str, ReplicaError> {
        self.toks
            .next()
            .ok_or_else(|| ReplicaError::Protocol(format!("{what}: message truncated")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ReplicaError> {
        let t = self.tok(what)?;
        t.parse::<u64>()
            .map_err(|_| ReplicaError::Protocol(format!("{what}: bad integer `{t}`")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, ReplicaError> {
        let v = self.u64(what)?;
        u32::try_from(v)
            .map_err(|_| ReplicaError::Protocol(format!("{what}: value {v} exceeds u32")))
    }

    fn count(&mut self, what: &str) -> Result<usize, ReplicaError> {
        let v = self.u64(what)?;
        if v > MAX_COUNT {
            return Err(ReplicaError::Protocol(format!(
                "{what}: count {v} exceeds cap {MAX_COUNT}"
            )));
        }
        Ok(v as usize)
    }

    fn bytes(&mut self, what: &str) -> Result<Vec<u8>, ReplicaError> {
        let t = self.tok(what)?;
        unesc_bytes(t, what)
    }

    fn name(&mut self, what: &str) -> Result<String, ReplicaError> {
        let b = self.bytes(what)?;
        String::from_utf8(b)
            .map_err(|_| ReplicaError::Protocol(format!("{what}: node name is not UTF-8")))
    }

    fn finish(&mut self) -> Result<(), ReplicaError> {
        match self.toks.next() {
            None => Ok(()),
            Some(extra) => Err(ReplicaError::Protocol(format!(
                "trailing token `{extra}` after message"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: &ReplicaMsg) {
        let wire = msg.encode();
        let back = ReplicaMsg::decode(&wire).expect("decode");
        assert_eq!(&back, msg);
        // Canonical: re-encoding the decoded message is byte-identical.
        assert_eq!(back.encode(), wire);
    }

    #[test]
    fn control_messages_roundtrip() {
        roundtrip(&ReplicaMsg::Hello {
            node: "f1".into(),
            epoch: 3,
            next_lsn: 42,
            last_crc: 0xDEAD_BEEF,
        });
        roundtrip(&ReplicaMsg::Heartbeat {
            epoch: 7,
            next_lsn: 1,
        });
        roundtrip(&ReplicaMsg::Ack {
            node: "follower-two".into(),
            epoch: 0,
            next_lsn: u64::MAX,
        });
        roundtrip(&ReplicaMsg::Promote {
            node: "f2".into(),
            epoch: 9,
        });
        roundtrip(&ReplicaMsg::Fence { epoch: 10 });
        roundtrip(&ReplicaMsg::Diverged {
            epoch: 2,
            lsn: 17,
            expected_crc: 1,
            got_crc: u32::MAX,
        });
        roundtrip(&ReplicaMsg::QuorumAck {
            node: "member-a".into(),
            epoch: 5,
            applied_lsn: 40,
            synced_lsn: 42,
        });
        roundtrip(&ReplicaMsg::VoteRequest {
            candidate: "member-b".into(),
            epoch: 6,
            synced_lsn: u64::MAX,
        });
        roundtrip(&ReplicaMsg::VoteGrant {
            node: "member-a".into(),
            epoch: 6,
            candidate: "member-b".into(),
            synced_lsn: 41,
        });
        roundtrip(&ReplicaMsg::Reconfig {
            epoch: 8,
            add: true,
            member: "m3".into(),
            addr: "127.0.0.1:9001".into(),
        });
        roundtrip(&ReplicaMsg::Reconfig {
            epoch: u64::MAX,
            add: false,
            member: "member with space".into(),
            addr: String::new(),
        });
    }

    #[test]
    fn snap_chunks_roundtrip_binary_body() {
        let body: Vec<u8> = (0..=255u8).collect();
        roundtrip(&ReplicaMsg::SnapChunk {
            epoch: 4,
            next_lsn: 99,
            seq: 2,
            total: 7,
            total_bytes: 1 << 20,
            chunk: body,
        });
        // Empty chunk (a zero-byte image ships as one empty chunk).
        roundtrip(&ReplicaMsg::SnapChunk {
            epoch: 1,
            next_lsn: 5,
            seq: 0,
            total: 1,
            total_bytes: 0,
            chunk: vec![],
        });
    }

    #[test]
    fn frames_roundtrip_with_awkward_payloads() {
        roundtrip(&ReplicaMsg::Frames {
            epoch: 1,
            frames: vec![
                TailFrame {
                    lsn: 2,
                    crc: 123,
                    payload: b"create Org D\\ept\\s1 member".to_vec(),
                },
                TailFrame {
                    lsn: 3,
                    crc: 456,
                    payload: vec![],
                },
                TailFrame {
                    lsn: 4,
                    crc: 789,
                    payload: vec![0x00, 0xff, b' ', b'\\', b'\t', b'\n', 0x7f],
                },
            ],
        });
    }

    #[test]
    fn snapshot_roundtrip_binary_body() {
        let body: Vec<u8> = (0..=255u8).collect();
        roundtrip(&ReplicaMsg::Snapshot {
            epoch: 4,
            next_lsn: 99,
            snapshot: body,
        });
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ReplicaMsg::decode(b"").is_err());
        assert!(ReplicaMsg::decode(b"warp 1 2").is_err());
        assert!(ReplicaMsg::decode(b"heartbeat 1").is_err());
        assert!(ReplicaMsg::decode(b"heartbeat 1 2 3").is_err());
        assert!(ReplicaMsg::decode(b"hello f1 1 2 notanint").is_err());
        // last_crc must fit in u32.
        assert!(ReplicaMsg::decode(b"hello f1 1 2 4294967296").is_err());
        // Frame count capped.
        assert!(ReplicaMsg::decode(b"frames 1 99999999").is_err());
        // Bad escapes in payloads.
        assert!(ReplicaMsg::decode(b"snapshot 1 2 \\q").is_err());
        assert!(ReplicaMsg::decode(b"snapshot 1 2 \\x4").is_err());
        assert!(ReplicaMsg::decode(b"snapshot 1 2 \\xzz").is_err());
        // Non-UTF-8 node name.
        assert!(ReplicaMsg::decode(b"ack \\xff 1 2").is_err());
        // Quorum envelope: truncated, overlong and malformed forms.
        assert!(ReplicaMsg::decode(b"qack m 1 2").is_err());
        assert!(ReplicaMsg::decode(b"qack m 1 2 3 4").is_err());
        assert!(ReplicaMsg::decode(b"votereq m 1").is_err());
        assert!(ReplicaMsg::decode(b"votereq m notanint 3").is_err());
        assert!(ReplicaMsg::decode(b"vote m 1 c").is_err());
        assert!(ReplicaMsg::decode(b"vote \\xff 1 c 3").is_err());
        // Snap chunks: truncated, seq outside total, zero total, chunk
        // longer than the declared image, trailing garbage.
        assert!(ReplicaMsg::decode(b"snap 1 2 0 1").is_err());
        assert!(ReplicaMsg::decode(b"snap 1 2 3 3 10 \\0").is_err());
        assert!(ReplicaMsg::decode(b"snap 1 2 0 0 10 \\0").is_err());
        assert!(ReplicaMsg::decode(b"snap 1 2 0 1 2 abc").is_err());
        assert!(ReplicaMsg::decode(b"snap 1 2 0 1 3 abc extra").is_err());
        // Reconfig: bad direction, truncation, trailing garbage.
        assert!(ReplicaMsg::decode(b"reconfig 1 sideways m \\0").is_err());
        assert!(ReplicaMsg::decode(b"reconfig 1 add m").is_err());
        assert!(ReplicaMsg::decode(b"reconfig 1 add m \\0 extra").is_err());
        assert!(ReplicaMsg::decode(b"reconfig notanint add m \\0").is_err());
    }
}
