//! Message transport between replication nodes.
//!
//! The supervisor is transport-agnostic: anything that can move encoded
//! [`ReplicaMsg`] bytes between named nodes works. Two implementations
//! ship: an in-process channel ([`ChannelTransport`]) and a
//! fault-injecting wrapper ([`FaultyTransport`]) that drops or refuses
//! messages on a deterministic schedule, reusing the durability
//! crate's [`FaultPlan`] so replication sweeps and crash sweeps share
//! one scheduling mechanism.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use mvolap_durable::FaultPlan;

use crate::error::TransportError;
use crate::record::ReplicaMsg;

/// Moves messages between named nodes. Every message crosses the wire
/// as its canonical encoding — even the in-process transport encodes
/// and decodes, so the wire grammar is exercised on every hop.
pub trait ReplicaTransport {
    /// Queue `msg` for delivery to node `to`.
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), TransportError>;

    /// Pop the next message addressed to `node`, if any.
    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, TransportError>;

    /// Number of transport operations performed so far (sends plus
    /// receive attempts). Fault-injection harnesses use this to
    /// enumerate injection points.
    fn steps(&self) -> u64;
}

/// In-process transport: one FIFO inbox per node.
#[derive(Debug, Default)]
pub struct ChannelTransport {
    inboxes: BTreeMap<String, VecDeque<Vec<u8>>>,
    steps: u64,
}

impl ChannelTransport {
    /// An empty transport; inboxes materialise on first use.
    pub fn new() -> ChannelTransport {
        ChannelTransport::default()
    }

    /// Messages currently queued for `node`.
    pub fn pending(&self, node: &str) -> usize {
        self.inboxes.get(node).map_or(0, VecDeque::len)
    }
}

impl ReplicaTransport for ChannelTransport {
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), TransportError> {
        self.steps += 1;
        self.inboxes
            .entry(to.to_string())
            .or_default()
            .push_back(msg.encode());
        Ok(())
    }

    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, TransportError> {
        self.steps += 1;
        let Some(inbox) = self.inboxes.get_mut(node) else {
            return Ok(None);
        };
        let Some(wire) = inbox.pop_front() else {
            return Ok(None);
        };
        // A message that does not decode is treated as lost on the
        // wire: the sender will retransmit on the next round.
        match ReplicaMsg::decode(&wire) {
            Ok(msg) => Ok(Some(msg)),
            Err(_) => Err(TransportError::Lost),
        }
    }

    fn steps(&self) -> u64 {
        self.steps
    }
}

/// How a faulted transport operation presents to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossMode {
    /// The operation returns an error — the caller knows the link
    /// misbehaved and can retry with backoff.
    Error,
    /// Messages silently vanish: sends succeed but deliver nothing,
    /// receives find nothing. Only missed heartbeats reveal the
    /// outage.
    Silent,
}

/// A transport whose operations fail on a deterministic schedule.
///
/// The wrapped [`FaultPlan`] counts every send and receive; when it
/// fires, the link enters an outage for `outage_len` further
/// operations (use `u64::MAX` for a permanent partition). During an
/// outage, sends are dropped and receives deliver nothing — loudly or
/// silently per [`LossMode`]. After the outage the link heals.
#[derive(Debug)]
pub struct FaultyTransport {
    inner: ChannelTransport,
    plan: FaultPlan,
    mode: LossMode,
    outage_len: u64,
    faulted_ops: u64,
}

impl FaultyTransport {
    /// Wraps a fresh channel transport with the given fault schedule.
    pub fn new(plan: FaultPlan, outage_len: u64, mode: LossMode) -> FaultyTransport {
        FaultyTransport {
            inner: ChannelTransport::new(),
            plan,
            mode,
            outage_len,
            faulted_ops: 0,
        }
    }

    /// Number of operations the outage has swallowed so far.
    pub fn faulted_ops(&self) -> u64 {
        self.faulted_ops
    }

    /// Counts one operation; `true` when it should fail.
    fn faulted(&mut self) -> bool {
        if !self.plan.fires() {
            return false;
        }
        if self.faulted_ops >= self.outage_len {
            return false; // Outage over; the link healed.
        }
        self.faulted_ops += 1;
        true
    }
}

impl ReplicaTransport for FaultyTransport {
    fn send(&mut self, to: &str, msg: &ReplicaMsg) -> Result<(), TransportError> {
        if self.faulted() {
            // The message is dropped either way; the mode only decides
            // whether the sender finds out.
            return match self.mode {
                LossMode::Error => Err(TransportError::Lost),
                LossMode::Silent => Ok(()),
            };
        }
        self.inner.send(to, msg)
    }

    fn recv(&mut self, node: &str) -> Result<Option<ReplicaMsg>, TransportError> {
        if self.faulted() {
            return match self.mode {
                LossMode::Error => Err(TransportError::Down),
                LossMode::Silent => Ok(None),
            };
        }
        self.inner.recv(node)
    }

    fn steps(&self) -> u64 {
        self.inner.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hb(epoch: u64) -> ReplicaMsg {
        ReplicaMsg::Heartbeat { epoch, next_lsn: 1 }
    }

    #[test]
    fn channel_delivers_in_order_per_node() {
        let mut t = ChannelTransport::new();
        t.send("a", &hb(1)).unwrap();
        t.send("b", &hb(2)).unwrap();
        t.send("a", &hb(3)).unwrap();
        assert_eq!(t.recv("a").unwrap(), Some(hb(1)));
        assert_eq!(t.recv("a").unwrap(), Some(hb(3)));
        assert_eq!(t.recv("a").unwrap(), None);
        assert_eq!(t.recv("b").unwrap(), Some(hb(2)));
        assert_eq!(t.steps(), 7);
    }

    #[test]
    fn faulty_outage_heals_after_window() {
        // Fault after 1 op, outage of 2 ops, loud mode.
        let plan = FaultPlan::crash_after(1, 0xF00D);
        let mut t = FaultyTransport::new(plan, 2, LossMode::Error);
        t.send("a", &hb(1)).unwrap(); // op 0: fine
        assert_eq!(t.send("a", &hb(2)), Err(TransportError::Lost)); // dropped
        assert_eq!(t.recv("a"), Err(TransportError::Down)); // outage
        t.send("a", &hb(3)).unwrap(); // healed
        assert_eq!(t.recv("a").unwrap(), Some(hb(1)));
        assert_eq!(t.recv("a").unwrap(), Some(hb(3)));
        assert_eq!(t.faulted_ops(), 2);
    }

    #[test]
    fn faulty_silent_mode_swallows_without_errors() {
        let plan = FaultPlan::crash_after(0, 1);
        let mut t = FaultyTransport::new(plan, u64::MAX, LossMode::Silent);
        t.send("a", &hb(1)).unwrap(); // silently dropped
        assert_eq!(t.recv("a").unwrap(), None);
    }
}
