//! Primary-side log tap: serves WAL frames (or a covering checkpoint
//! snapshot) to followers, and verifies follower positions against the
//! local log — the divergence gate.

use std::path::{Path, PathBuf};

use mvolap_durable::{checkpoint, wal, DurableError, TailFrame};

use crate::error::ReplicaError;

/// What a fetch produced: either log frames from the requested LSN, or
/// a full snapshot when that part of the log is already pruned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailSource {
    /// Contiguous frames starting at the requested LSN.
    Frames(Vec<TailFrame>),
    /// The requested LSNs are pruned; bootstrap from this snapshot and
    /// resume tailing at `next_lsn`.
    Snapshot {
        /// LSN to resume tailing from after installing the snapshot.
        next_lsn: u64,
        /// Serialised schema covering everything below `next_lsn`.
        snapshot: Vec<u8>,
    },
}

/// Reads a store's log directly from its directory. The store fsyncs
/// every append before reporting a commit, so reading behind a live
/// [`mvolap_durable::DurableTmd`] always observes committed frames.
#[derive(Debug, Clone)]
pub struct WalTailer {
    dir: PathBuf,
}

impl WalTailer {
    /// A tailer over the store directory `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> WalTailer {
        WalTailer { dir: dir.into() }
    }

    /// The store directory this tailer reads.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Up to `max` frames starting at `from_lsn`; falls back to the
    /// covering checkpoint snapshot when the log below `from_lsn` is
    /// pruned.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Durable`] on log damage or I/O failure;
    /// [`ReplicaError::Protocol`] when the log is pruned but no
    /// covering checkpoint exists (a store invariant violation).
    pub fn fetch(&self, from_lsn: u64, max: usize) -> Result<TailSource, ReplicaError> {
        match wal::tail(&self.dir, from_lsn) {
            Ok(mut frames) => {
                frames.truncate(max);
                Ok(TailSource::Frames(frames))
            }
            Err(DurableError::Pruned { .. }) => {
                let Some((id, tmd)) = checkpoint::load_latest(&self.dir)? else {
                    return Err(ReplicaError::protocol(format!(
                        "log pruned below LSN {from_lsn} but no checkpoint covers it"
                    )));
                };
                let mut snapshot = Vec::new();
                mvolap_core::persist::write_tmd(&tmd, &mut snapshot).map_err(DurableError::from)?;
                Ok(TailSource::Snapshot {
                    next_lsn: id.next_lsn,
                    snapshot,
                })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Like [`WalTailer::fetch`], but bounded three ways — the batch
    /// shape the async pump ships: at most `max_frames` frames, at
    /// most `max_bytes` of cumulative payload (always at least one
    /// frame, so a single oversized record still moves), and nothing
    /// at or above `below`. The `below` bound is the primary's durable
    /// watermark: the log file is append-only and may be growing under
    /// a concurrent committer, so only frames already covered by an
    /// fsync are eligible to ship — a torn in-flight tail is never
    /// observed, and no member can ack a record the primary could
    /// still lose.
    ///
    /// # Errors
    ///
    /// As [`WalTailer::fetch`].
    pub fn fetch_budget(
        &self,
        from_lsn: u64,
        below: u64,
        max_frames: usize,
        max_bytes: usize,
    ) -> Result<TailSource, ReplicaError> {
        match self.fetch(from_lsn, max_frames)? {
            TailSource::Frames(mut frames) => {
                frames.retain(|f| f.lsn < below);
                let mut bytes = 0usize;
                let mut keep = 0usize;
                for f in &frames {
                    if keep > 0 && bytes + f.payload.len() > max_bytes {
                        break;
                    }
                    bytes += f.payload.len();
                    keep += 1;
                }
                frames.truncate(keep);
                Ok(TailSource::Frames(frames))
            }
            snap @ TailSource::Snapshot { .. } => Ok(snap),
        }
    }

    /// Frame CRC at `lsn`, or `None` when that LSN is pruned.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Durable`] on damage or a request past the head.
    pub fn crc_at(&self, lsn: u64) -> Result<Option<u32>, ReplicaError> {
        match wal::tail(&self.dir, lsn) {
            Ok(frames) => Ok(frames.first().filter(|f| f.lsn == lsn).map(|f| f.crc)),
            Err(DurableError::Pruned { .. }) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The divergence gate: checks a follower's claimed position
    /// (`next_lsn`, CRC of its frame at `next_lsn - 1`) against this
    /// log, given the primary's current head. `last_crc == 0` means
    /// the follower cannot name its last frame (fresh store, or its own
    /// tail is pruned) and the check is skipped; a position inside this
    /// log's pruned range is likewise unverifiable and accepted —
    /// subsequent frames still replay through full validation.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Diverged`] when the follower's history provably
    /// forks from this log: its frame CRC differs, or it claims frames
    /// past this head (`expected_crc` is 0 then — the primary has no
    /// frame there at all).
    pub fn verify_position(
        &self,
        next_lsn: u64,
        last_crc: u32,
        head: u64,
    ) -> Result<(), ReplicaError> {
        if next_lsn <= 1 {
            return Ok(()); // Fresh follower; nothing to contradict.
        }
        let lsn = next_lsn - 1;
        if next_lsn > head {
            return Err(ReplicaError::Diverged {
                lsn,
                expected_crc: 0,
                got_crc: last_crc,
            });
        }
        if last_crc == 0 {
            return Ok(());
        }
        match self.crc_at(lsn)? {
            Some(crc) if crc == last_crc => Ok(()),
            Some(crc) => Err(ReplicaError::Diverged {
                lsn,
                expected_crc: crc,
                got_crc: last_crc,
            }),
            None => Ok(()), // Pruned here; unverifiable, accepted.
        }
    }
}
