//! A replication follower: replays the primary's WAL frames through
//! the same validated apply path the primary committed them with, into
//! its own WAL + checkpoint store.
//!
//! Because WAL record encoding is canonical (decode ∘ encode is the
//! identity), a follower journaling the records it decodes produces a
//! log *byte-identical* to the primary's at every LSN — which is what
//! makes frame-CRC comparison a sound divergence test in both
//! directions.

use std::path::{Path, PathBuf};

use mvolap_core::Tmd;
use mvolap_durable::checksum::crc32;
use mvolap_durable::{DurableError, DurableTmd, Io, Options, TailFrame, WalRecord};

use crate::error::ReplicaError;
use crate::record::ReplicaMsg;

/// Why a follower refuses further replay. Sticky: once set, every
/// subsequent frame batch is refused until the follower is rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Refusal {
    /// Frame CRCs disagree at `lsn` — the histories forked.
    Diverged {
        lsn: u64,
        expected_crc: u32,
        got_crc: u32,
    },
    /// A frame decoded but its record does not apply to our state —
    /// the histories are semantically incompatible.
    Invalid { lsn: u64, reason: String },
}

impl Refusal {
    fn to_error(&self) -> ReplicaError {
        match self {
            Refusal::Diverged {
                lsn,
                expected_crc,
                got_crc,
            } => ReplicaError::Diverged {
                lsn: *lsn,
                expected_crc: *expected_crc,
                got_crc: *got_crc,
            },
            Refusal::Invalid { lsn, reason } => ReplicaError::Protocol(format!(
                "frame {lsn} does not apply to follower state: {reason}"
            )),
        }
    }
}

/// An in-progress chunked snapshot transfer: the image identity
/// (`next_lsn`, `total`, `total_bytes`) plus the contiguous prefix of
/// chunks received so far. Mirrored to a spill file in the follower's
/// directory so a crashed joiner resumes from its last durable chunk
/// instead of restarting the transfer.
#[derive(Debug)]
struct SnapAssembly {
    next_lsn: u64,
    total: u64,
    total_bytes: u64,
    received: u64,
    bytes: Vec<u8>,
}

/// Spill file name (inside the follower directory) for a partial
/// chunked snapshot.
const SNAP_SPILL: &str = "snap-partial";
const SNAP_MAGIC: &str = "mvolap-snap v1";

/// A follower node. Owns (or will own, once bootstrapped) a
/// [`DurableTmd`] under its own directory; applies [`ReplicaMsg`]s and
/// produces the replies the protocol calls for.
#[derive(Debug)]
pub struct Follower {
    name: String,
    dir: PathBuf,
    opts: Options,
    /// `None` until the first bootstrap frame or snapshot arrives.
    store: Option<DurableTmd>,
    /// I/O layer held for the store once it materialises.
    io: Option<Io>,
    /// CRC of the last frame journaled via replication; 0 = unknown.
    last_crc: u32,
    epoch: u64,
    refusal: Option<Refusal>,
    /// The vote this member has cast: `(epoch, candidate)`. At most
    /// one candidate per epoch — the guarantee elections build on.
    voted: Option<(u64, String)>,
    /// Chunked snapshot transfer in progress, if any.
    snap: Option<SnapAssembly>,
}

impl Follower {
    /// A fresh, empty follower that will bootstrap from the primary.
    /// `io` is the I/O layer its store will use (fault injection
    /// enters here).
    pub fn create(
        name: impl Into<String>,
        dir: impl Into<PathBuf>,
        opts: Options,
        io: Io,
    ) -> Follower {
        Follower {
            name: name.into(),
            dir: dir.into(),
            opts,
            store: None,
            io: Some(io),
            last_crc: 0,
            epoch: 0,
            refusal: None,
            voted: None,
            snap: None,
        }
    }

    /// Reopens a follower after a crash: recovers its store and
    /// re-derives its replication position from its own log. A
    /// directory with nothing recoverable (crash before anything was
    /// durable) yields an empty follower that re-bootstraps.
    ///
    /// The epoch restarts at 0 and is re-learnt from the first message
    /// of the current primary — the supervisor routes messages, so a
    /// restarted follower only ever hears from the live primary.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Durable`] on I/O failure or corruption.
    pub fn open(
        name: impl Into<String>,
        dir: impl Into<PathBuf>,
        opts: Options,
        io: Io,
    ) -> Result<Follower, ReplicaError> {
        let name = name.into();
        let dir = dir.into();
        let mut follower = match DurableTmd::open_with(&dir, opts.clone(), io) {
            Ok(store) => {
                let oldest = store.oldest_lsn()?;
                let last_crc = store.tail(oldest)?.last().map_or(0, |f| f.crc);
                Follower {
                    name,
                    dir,
                    opts,
                    store: Some(store),
                    io: None,
                    last_crc,
                    epoch: 0,
                    refusal: None,
                    voted: None,
                    snap: None,
                }
            }
            Err(DurableError::NoStore) => Follower::create(name, dir, opts, Io::plain()),
            Err(e) => return Err(e.into()),
        };
        // A crashed joiner resumes its chunked snapshot from the spill
        // file — unless the store already covers the image.
        follower.snap =
            Self::spill_load(&follower.dir).filter(|a| a.next_lsn > follower.next_lsn());
        Ok(follower)
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Epoch this follower believes is current.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The first LSN this follower is missing (1 when empty).
    pub fn next_lsn(&self) -> u64 {
        self.store.as_ref().map_or(1, DurableTmd::wal_position)
    }

    /// The replicated schema, once bootstrapped.
    pub fn schema(&self) -> Option<&Tmd> {
        self.store.as_ref().map(DurableTmd::schema)
    }

    /// I/O primitives performed by this follower's store so far.
    pub fn io_ops(&self) -> u64 {
        self.store.as_ref().map_or(0, DurableTmd::io_ops)
    }

    /// Whether this follower has refused replay (diverged or invalid).
    pub fn is_refusing(&self) -> bool {
        self.refusal.is_some()
    }

    /// The sticky refusal, as the error it raises.
    pub fn refusal_error(&self) -> Option<ReplicaError> {
        self.refusal.as_ref().map(Refusal::to_error)
    }

    /// The position announcement this follower sends each round.
    pub fn hello(&self) -> ReplicaMsg {
        ReplicaMsg::Hello {
            node: self.name.clone(),
            epoch: self.epoch,
            next_lsn: self.next_lsn(),
            last_crc: self.last_crc,
        }
    }

    fn ack(&self) -> ReplicaMsg {
        ReplicaMsg::Ack {
            node: self.name.clone(),
            epoch: self.epoch,
            next_lsn: self.next_lsn(),
        }
    }

    /// The quorum-flavoured ack: both replication positions in one
    /// envelope. A follower fsyncs every record it applies, so its
    /// synced and applied positions coincide; the grammar still
    /// carries both because the primary consumes them differently
    /// (read routing vs. the quorum watermark).
    pub fn quorum_ack(&self) -> ReplicaMsg {
        ReplicaMsg::QuorumAck {
            node: self.name.clone(),
            epoch: self.epoch,
            applied_lsn: self.next_lsn(),
            synced_lsn: self.next_lsn(),
        }
    }

    /// Checks the message's epoch: stale senders are refused, newer
    /// epochs adopted.
    fn check_epoch(&mut self, epoch: u64) -> Result<(), ReplicaError> {
        if epoch < self.epoch {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        self.epoch = epoch;
        Ok(())
    }

    /// Handles one protocol message, returning the reply to send (if
    /// any).
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Fenced`] for messages from a stale epoch;
    /// [`ReplicaError::Diverged`] / [`ReplicaError::Protocol`] when
    /// replay is refused; I/O-class [`ReplicaError::Durable`] when the
    /// follower's own store crashes.
    pub fn handle(&mut self, msg: ReplicaMsg) -> Result<Option<ReplicaMsg>, ReplicaError> {
        match msg {
            ReplicaMsg::Heartbeat { epoch, .. } => {
                self.check_epoch(epoch)?;
                Ok(Some(self.ack()))
            }
            ReplicaMsg::Frames { epoch, frames } => {
                self.check_epoch(epoch)?;
                if let Some(r) = &self.refusal {
                    return Err(r.to_error());
                }
                self.apply_frames(&frames)?;
                Ok(Some(self.ack()))
            }
            ReplicaMsg::Snapshot {
                epoch,
                next_lsn,
                snapshot,
            } => {
                self.check_epoch(epoch)?;
                if let Some(r) = &self.refusal {
                    return Err(r.to_error());
                }
                self.install_snapshot(next_lsn, &snapshot)?;
                Ok(Some(self.ack()))
            }
            ReplicaMsg::SnapChunk {
                epoch,
                next_lsn,
                seq,
                total,
                total_bytes,
                chunk,
            } => {
                self.check_epoch(epoch)?;
                if let Some(r) = &self.refusal {
                    return Err(r.to_error());
                }
                self.apply_snap_chunk(next_lsn, seq, total, total_bytes, &chunk)?;
                Ok(Some(self.ack()))
            }
            ReplicaMsg::Reconfig { epoch, .. } => {
                // Membership changes are decided by the quorum layer;
                // a member just learns the epoch and acknowledges. A
                // stale-epoch reconfiguration is fenced like any other
                // stale write.
                self.check_epoch(epoch)?;
                Ok(Some(self.ack()))
            }
            ReplicaMsg::Promote { node, epoch } => {
                if node == self.name {
                    self.check_epoch(epoch)?;
                }
                Ok(None)
            }
            ReplicaMsg::Fence { epoch } => {
                // Followers hold no write authority to fence; just
                // learn the new epoch.
                self.check_epoch(epoch)?;
                Ok(None)
            }
            ReplicaMsg::Diverged {
                lsn,
                expected_crc,
                got_crc,
                ..
            } => {
                let r = Refusal::Diverged {
                    lsn,
                    expected_crc,
                    got_crc,
                };
                let err = r.to_error();
                self.refusal = Some(r);
                Err(err)
            }
            ReplicaMsg::VoteRequest {
                candidate,
                epoch,
                synced_lsn,
            } => {
                let grant = self.consider_vote(&candidate, epoch, synced_lsn)?;
                Ok(Some(grant))
            }
            other @ (ReplicaMsg::Hello { .. }
            | ReplicaMsg::Ack { .. }
            | ReplicaMsg::QuorumAck { .. }
            | ReplicaMsg::VoteGrant { .. }) => Err(ReplicaError::Protocol(format!(
                "follower received {}",
                other.kind()
            ))),
        }
    }

    /// Election rules, from the voter's side: a refusing member never
    /// votes, a vote request must open a *new* epoch, each epoch gets
    /// at most one candidate (re-granting the same one is idempotent,
    /// a second candidate is a typed violation), and the candidate's
    /// durably-synced position must rank at least as high as the
    /// voter's own, ties broken by node name — so every voter ranks
    /// candidates identically and the election is deterministic.
    /// Granting adopts the new epoch, fencing the old primary from
    /// this member's point of view.
    fn consider_vote(
        &mut self,
        candidate: &str,
        epoch: u64,
        synced_lsn: u64,
    ) -> Result<ReplicaMsg, ReplicaError> {
        if let Some(r) = &self.refusal {
            return Err(r.to_error());
        }
        // The split-vote guard outranks the epoch fence: a second
        // candidate in an epoch already voted must surface as the
        // explicit conflict, not a generic stale-epoch refusal.
        if let Some((e, prior)) = &self.voted {
            if *e >= epoch && prior != candidate {
                return Err(ReplicaError::Protocol(format!(
                    "already voted for `{prior}` in epoch {e}; \
                     refusing `{candidate}` in epoch {epoch}"
                )));
            }
        }
        let repeat = self
            .voted
            .as_ref()
            .is_some_and(|(e, c)| *e == epoch && c == candidate);
        if !repeat && epoch <= self.epoch {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        let mine = self.next_lsn();
        if (synced_lsn, candidate) < (mine, self.name.as_str()) {
            return Err(ReplicaError::Protocol(format!(
                "vote refused: candidate `{candidate}` at LSN {synced_lsn} ranks \
                 below `{}` at {mine}",
                self.name
            )));
        }
        self.voted = Some((epoch, candidate.to_string()));
        self.epoch = epoch;
        Ok(ReplicaMsg::VoteGrant {
            node: self.name.clone(),
            epoch,
            candidate: candidate.to_string(),
            synced_lsn: mine,
        })
    }

    /// Applies a contiguous batch. Duplicates (frames below our
    /// position) are cross-checked by CRC and skipped; a gap is a
    /// protocol violation; everything else journals through the
    /// validated apply path.
    fn apply_frames(&mut self, frames: &[TailFrame]) -> Result<(), ReplicaError> {
        for f in frames {
            let pos = self.next_lsn();
            if f.lsn < pos {
                self.check_duplicate(f)?;
                continue;
            }
            if f.lsn > pos {
                return Err(ReplicaError::Protocol(format!(
                    "frame gap: at LSN {pos}, got frame {}",
                    f.lsn
                )));
            }
            if crc32(&f.payload) != f.crc {
                return Err(ReplicaError::Protocol(format!(
                    "frame {} checksum mismatch in transit",
                    f.lsn
                )));
            }
            let record = WalRecord::decode(&f.payload)?;
            match record {
                WalRecord::Bootstrap { ref snapshot } => {
                    if self.store.is_some() || f.lsn != 1 {
                        return Err(ReplicaError::Protocol(format!(
                            "unexpected bootstrap frame at LSN {} (position {pos})",
                            f.lsn
                        )));
                    }
                    let tmd = mvolap_core::persist::read_tmd(&mut snapshot.as_slice())
                        .map_err(DurableError::from)?;
                    self.wipe()?;
                    let io = self.take_io();
                    let store = DurableTmd::create_with(&self.dir, tmd, self.opts.clone(), io)?;
                    // The store re-encoded the bootstrap itself; the
                    // canonical encoding must reproduce the primary's
                    // frame exactly or the CRC chain is broken from
                    // LSN 1.
                    let own = store.tail(1)?;
                    let own_crc = own.first().map_or(0, |fr| fr.crc);
                    if own_crc != f.crc {
                        return Err(ReplicaError::protocol(
                            "bootstrap snapshot round-trip drift: local frame CRC \
                             differs from primary's",
                        ));
                    }
                    self.store = Some(store);
                }
                record => {
                    let Some(store) = self.store.as_mut() else {
                        return Err(ReplicaError::Protocol(format!(
                            "frame {} ({}) before bootstrap",
                            f.lsn,
                            record.kind()
                        )));
                    };
                    match store.apply(record) {
                        Ok(lsn) => debug_assert_eq!(lsn, f.lsn),
                        Err(e) if e.is_io_class() => return Err(e.into()),
                        Err(e) => {
                            let r = Refusal::Invalid {
                                lsn: f.lsn,
                                reason: e.to_string(),
                            };
                            let err = r.to_error();
                            self.refusal = Some(r);
                            return Err(err);
                        }
                    }
                }
            }
            self.last_crc = f.crc;
        }
        Ok(())
    }

    /// A frame we already hold: its CRC must match ours, else the
    /// histories forked behind our back.
    fn check_duplicate(&mut self, f: &TailFrame) -> Result<(), ReplicaError> {
        let store = self.store.as_ref().expect("position > 1 implies a store");
        let ours = match store.tail(f.lsn) {
            Ok(frames) => frames.first().filter(|o| o.lsn == f.lsn).map(|o| o.crc),
            Err(DurableError::Pruned { .. }) => None,
            Err(e) => return Err(e.into()),
        };
        match ours {
            Some(crc) if crc != f.crc => {
                let r = Refusal::Diverged {
                    lsn: f.lsn,
                    expected_crc: f.crc,
                    got_crc: crc,
                };
                let err = r.to_error();
                self.refusal = Some(r);
                Err(err)
            }
            _ => Ok(()), // Matches, or pruned locally (unverifiable).
        }
    }

    /// One chunk of a chunked snapshot transfer. Chunks must arrive in
    /// sequence; duplicates below the received count are idempotent, a
    /// gap or a chunk from a different image mid-assembly is a typed
    /// protocol violation, and a byte count that disagrees with the
    /// declared total (a lying chunk count) refuses and drops the
    /// assembly. The final chunk installs the image.
    fn apply_snap_chunk(
        &mut self,
        next_lsn: u64,
        seq: u64,
        total: u64,
        total_bytes: u64,
        chunk: &[u8],
    ) -> Result<(), ReplicaError> {
        if self.next_lsn() >= next_lsn {
            // Already at or past the image; nothing to assemble.
            self.drop_assembly()?;
            return Ok(());
        }
        let mismatched = self.snap.as_ref().is_some_and(|a| {
            (a.next_lsn, a.total, a.total_bytes) != (next_lsn, total, total_bytes)
        });
        if mismatched {
            if seq == 0 {
                // A fresh image supersedes the stale partial transfer.
                self.drop_assembly()?;
            } else {
                return Err(ReplicaError::Protocol(format!(
                    "snap chunk {seq} belongs to a different image than the assembly \
                     in progress"
                )));
            }
        }
        if self.snap.is_none() {
            if seq != 0 {
                return Err(ReplicaError::Protocol(format!(
                    "snap chunk {seq} without an assembly in progress; a resuming \
                     sender must start from the acknowledged chunk count"
                )));
            }
            let assembly = SnapAssembly {
                next_lsn,
                total,
                total_bytes,
                received: 0,
                bytes: Vec::new(),
            };
            self.spill_start(&assembly)?;
            self.snap = Some(assembly);
        }
        let a = self.snap.as_mut().expect("assembly exists past the guards");
        if seq < a.received {
            return Ok(()); // Duplicate of a chunk we hold: idempotent.
        }
        if seq > a.received {
            return Err(ReplicaError::Protocol(format!(
                "snap chunk gap: hold {} chunks, got chunk {seq}",
                a.received
            )));
        }
        if a.bytes.len() as u64 + chunk.len() as u64 > a.total_bytes {
            let declared = a.total_bytes;
            self.drop_assembly()?;
            return Err(ReplicaError::Protocol(format!(
                "snap chunks overflow the declared image of {declared} bytes"
            )));
        }
        Self::spill_append(&self.dir, chunk)?;
        a.bytes.extend_from_slice(chunk);
        a.received += 1;
        if a.received == a.total {
            if a.bytes.len() as u64 != a.total_bytes {
                let (got, declared) = (a.bytes.len(), a.total_bytes);
                self.drop_assembly()?;
                return Err(ReplicaError::Protocol(format!(
                    "snapshot assembly complete at {got} bytes but the sender \
                     declared {declared}: lying chunk count"
                )));
            }
            let a = self.snap.take().expect("assembly present");
            self.install_snapshot(a.next_lsn, &a.bytes)?;
            // `install_snapshot` wiped the directory (spill included);
            // make the no-op path equally clean.
            self.drop_assembly()?;
        }
        Ok(())
    }

    /// How many chunks of the image identified by (`next_lsn`,
    /// `total`, `total_bytes`) this follower already holds durably —
    /// the index a resuming sender should ship next. 0 when no
    /// matching assembly is in progress.
    pub fn snap_resume(&self, next_lsn: u64, total: u64, total_bytes: u64) -> u64 {
        self.snap
            .as_ref()
            .filter(|a| (a.next_lsn, a.total, a.total_bytes) == (next_lsn, total, total_bytes))
            .map_or(0, |a| a.received)
    }

    fn spill_path(&self) -> PathBuf {
        self.dir.join(SNAP_SPILL)
    }

    /// Starts (or restarts) the spill file for a new assembly: magic +
    /// image identity header, chunks appended after it.
    fn spill_start(&self, a: &SnapAssembly) -> Result<(), ReplicaError> {
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(
                self.spill_path(),
                format!(
                    "{SNAP_MAGIC} {} {} {}\n",
                    a.next_lsn, a.total, a.total_bytes
                ),
            )
        };
        write().map_err(|e| DurableError::from(e).into())
    }

    /// Appends one length-prefixed chunk to the spill file.
    fn spill_append(dir: &Path, chunk: &[u8]) -> Result<(), ReplicaError> {
        let write = || -> std::io::Result<()> {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(SNAP_SPILL))?;
            f.write_all(&(chunk.len() as u64).to_le_bytes())?;
            f.write_all(chunk)?;
            f.sync_data()
        };
        write().map_err(|e| DurableError::from(e).into())
    }

    /// Loads a partial assembly from the spill file. Tolerant: a
    /// missing file, foreign magic or inconsistent header yields
    /// `None`; a torn trailing chunk is truncated away so resumption
    /// appends cleanly after the last complete chunk.
    fn spill_load(dir: &Path) -> Option<SnapAssembly> {
        let path = dir.join(SNAP_SPILL);
        let data = std::fs::read(&path).ok()?;
        let nl = data.iter().position(|&b| b == b'\n')?;
        let header = std::str::from_utf8(&data[..nl]).ok()?;
        let mut toks = header.split(' ');
        if (toks.next()?, toks.next()?) != ("mvolap-snap", "v1") {
            return None;
        }
        let next_lsn: u64 = toks.next()?.parse().ok()?;
        let total: u64 = toks.next()?.parse().ok()?;
        let total_bytes: u64 = toks.next()?.parse().ok()?;
        if toks.next().is_some() || total == 0 {
            return None;
        }
        let mut bytes = Vec::new();
        let mut received = 0u64;
        let mut consumed = nl + 1;
        while data.len() - consumed >= 8 {
            let len = u64::from_le_bytes(data[consumed..consumed + 8].try_into().unwrap()) as usize;
            if data.len() - consumed - 8 < len {
                break; // Torn tail chunk: discard.
            }
            bytes.extend_from_slice(&data[consumed + 8..consumed + 8 + len]);
            consumed += 8 + len;
            received += 1;
        }
        if received == 0 || received > total || bytes.len() as u64 > total_bytes {
            return None;
        }
        if consumed < data.len() {
            // Cut the torn tail so the next append lands after the
            // last complete chunk.
            let f = std::fs::OpenOptions::new().write(true).open(&path).ok()?;
            f.set_len(consumed as u64).ok()?;
        }
        Some(SnapAssembly {
            next_lsn,
            total,
            total_bytes,
            received,
            bytes,
        })
    }

    /// Abandons any in-progress assembly and removes its spill file.
    fn drop_assembly(&mut self) -> Result<(), ReplicaError> {
        self.snap = None;
        match std::fs::remove_file(self.spill_path()) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(DurableError::from(e).into()),
        }
    }

    /// Wipes and re-creates the store from a checkpoint snapshot at
    /// `next_lsn` — the pruned-log bootstrap path.
    fn install_snapshot(&mut self, next_lsn: u64, snapshot: &[u8]) -> Result<(), ReplicaError> {
        if self.next_lsn() >= next_lsn {
            // Already at or past the snapshot; nothing to install.
            return Ok(());
        }
        let tmd = mvolap_core::persist::read_tmd(&mut &snapshot[..]).map_err(DurableError::from)?;
        let io = self.take_io();
        self.store = None;
        self.wipe()?;
        let store =
            DurableTmd::create_from_snapshot(&self.dir, tmd, next_lsn, self.opts.clone(), io)?;
        self.store = Some(store);
        self.last_crc = 0; // Our previous tail is gone; position is unverifiable.
        Ok(())
    }

    fn wipe(&mut self) -> Result<(), ReplicaError> {
        match std::fs::remove_dir_all(&self.dir) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(DurableError::from(e).into()),
        }
    }

    /// The I/O layer for (re)creating the store: recovered from the
    /// previous store if one existed, else the layer given at
    /// construction.
    fn take_io(&mut self) -> Io {
        if let Some(store) = self.store.take() {
            return store.into_io();
        }
        self.io.take().unwrap_or_default()
    }

    /// Consumes the follower for promotion, yielding its store.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Protocol`] when the follower never bootstrapped;
    /// the sticky refusal when it is refusing replay (a diverged or
    /// inconsistent follower must never take writes).
    pub fn into_primary_store(self) -> Result<DurableTmd, ReplicaError> {
        if let Some(r) = &self.refusal {
            return Err(r.to_error());
        }
        self.store.ok_or_else(|| {
            ReplicaError::protocol("follower holds no replicated state; cannot promote")
        })
    }

    /// Direct store access (read-only), for assertions and queries.
    pub fn store(&self) -> Option<&DurableTmd> {
        self.store.as_ref()
    }

    /// Checkpoints the follower's store, if it has one.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), ReplicaError> {
        if let Some(store) = self.store.as_mut() {
            store.checkpoint()?;
        }
        Ok(())
    }
}
