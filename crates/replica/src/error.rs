//! Errors of the replication subsystem.

use mvolap_durable::DurableError;

/// A transport-level failure. Both variants are *transient* from the
/// supervisor's point of view: it retries with bounded exponential
/// backoff before declaring the peer unreachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The message was lost in transit.
    Lost,
    /// The link refused the operation outright.
    Down,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Lost => write!(f, "message lost in transit"),
            TransportError::Down => write!(f, "link down"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Errors raised by tailing, replay, supervision and failover.
#[derive(Debug)]
pub enum ReplicaError {
    /// The durability layer failed underneath (I/O, corruption, …).
    Durable(DurableError),
    /// The transport failed; retryable.
    Transport(TransportError),
    /// The follower's log and the primary's log disagree at `lsn`: the
    /// checksums of the frames differ, so the two histories forked
    /// (classically: a failover promoted a follower that had not seen
    /// this record, and the new primary wrote a different one at the
    /// same position). Replay past this point is refused — the follower
    /// must be rebuilt, never patched.
    Diverged {
        /// The position where the histories fork.
        lsn: u64,
        /// Frame CRC the serving primary has at `lsn`.
        expected_crc: u32,
        /// Frame CRC the follower recorded at `lsn`.
        got_crc: u32,
    },
    /// The node was fenced at `epoch`: a newer primary exists and this
    /// handle must not accept writes.
    Fenced {
        /// The epoch the node was fenced at.
        epoch: u64,
    },
    /// The operation needs a live primary and there is none.
    NotPrimary,
    /// Promotion (or a vote) named a member whose sticky refusal is
    /// set — a diverged or invalid replica must never become primary.
    RefusedMember {
        /// The refusing member's name.
        node: String,
        /// The member's refusal, rendered.
        reason: String,
    },
    /// An election closed without a majority of the group granting the
    /// candidate their vote; the group stays primary-less rather than
    /// risk two histories.
    NoQuorum {
        /// The epoch the failed election proposed.
        epoch: u64,
        /// Votes collected, the candidate's own included.
        votes: usize,
        /// Votes a majority requires.
        required: usize,
    },
    /// No node of that name is registered.
    UnknownNode(String),
    /// The replication protocol was violated (malformed message, LSN
    /// gap, snapshot round-trip drift, …).
    Protocol(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Durable(e) => write!(f, "durable layer: {e}"),
            ReplicaError::Transport(e) => write!(f, "transport: {e}"),
            ReplicaError::Diverged {
                lsn,
                expected_crc,
                got_crc,
            } => write!(
                f,
                "diverged at LSN {lsn}: primary frame crc {expected_crc:#010x}, \
                 follower recorded {got_crc:#010x}; refusing replay"
            ),
            ReplicaError::Fenced { epoch } => {
                write!(f, "fenced at epoch {epoch}: a newer primary exists")
            }
            ReplicaError::NotPrimary => write!(f, "no live primary"),
            ReplicaError::RefusedMember { node, reason } => {
                write!(f, "member `{node}` is refusing replication: {reason}")
            }
            ReplicaError::NoQuorum {
                epoch,
                votes,
                required,
            } => write!(
                f,
                "election for epoch {epoch} failed: {votes} vote(s) of {required} required"
            ),
            ReplicaError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            ReplicaError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<DurableError> for ReplicaError {
    fn from(e: DurableError) -> Self {
        ReplicaError::Durable(e)
    }
}

impl From<TransportError> for ReplicaError {
    fn from(e: TransportError) -> Self {
        ReplicaError::Transport(e)
    }
}

impl ReplicaError {
    /// Classifies an OS-level socket error as a transport failure:
    /// timeouts and would-blocks mean the link is down (retry may
    /// succeed), anything else means the message was lost.
    #[must_use]
    pub fn from_io(e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                ReplicaError::Transport(TransportError::Down)
            }
            _ => ReplicaError::Transport(TransportError::Lost),
        }
    }

    pub(crate) fn protocol(m: impl Into<String>) -> Self {
        ReplicaError::Protocol(m.into())
    }

    /// Whether the error is a transient transport failure the
    /// supervisor should retry (with backoff) rather than escalate.
    pub fn is_transient(&self) -> bool {
        matches!(self, ReplicaError::Transport(_))
    }

    /// Whether the error means the underlying store crashed (real or
    /// injected I/O failure) — the node is down until restarted.
    pub fn is_crash(&self) -> bool {
        matches!(self, ReplicaError::Durable(e) if e.is_io_class())
    }
}
