//! The replication supervisor: one primary, N followers, a transport
//! between them, and the failure-handling policy — heartbeat-based
//! liveness, bounded retry with exponential backoff, divergence
//! refusal, and explicit promotion with fencing.
//!
//! Everything is deterministic and single-threaded: time advances only
//! through [`ReplicaSet::tick`], which runs one replication round per
//! healthy follower. Heartbeat misses, backoff waits and retry budgets
//! are all counted in ticks, so fault-injection sweeps replay
//! identically.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use mvolap_core::Tmd;
use mvolap_durable::{DurableTmd, Io, Options, WalRecord};

use crate::error::ReplicaError;
use crate::follower::Follower;
use crate::record::ReplicaMsg;
use crate::tailer::{TailSource, WalTailer};
use crate::transport::ReplicaTransport;

/// Supervision policy knobs.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Max frames shipped per round.
    pub batch_frames: usize,
    /// Rounds without an ack before a silent follower is declared down.
    pub heartbeat_miss_limit: u64,
    /// Transport-error retries before the link is declared down.
    pub max_retries: u32,
    /// Backoff after the first transport error, in ticks; doubles per
    /// consecutive failure.
    pub backoff_start: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            batch_frames: 32,
            heartbeat_miss_limit: 3,
            max_retries: 4,
            backoff_start: 1,
        }
    }
}

/// The write-accepting node. Wraps a [`DurableTmd`] with an epoch and
/// a fencing flag: once fenced, every write is refused with
/// [`ReplicaError::Fenced`].
#[derive(Debug)]
pub struct PrimaryNode {
    name: String,
    store: DurableTmd,
    epoch: u64,
    fenced: bool,
}

impl PrimaryNode {
    /// Wraps an existing store as primary at `epoch`.
    pub fn from_store(name: impl Into<String>, store: DurableTmd, epoch: u64) -> PrimaryNode {
        PrimaryNode {
            name: name.into(),
            store,
            epoch,
            fenced: false,
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this node has been fenced.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &DurableTmd {
        &self.store
    }

    /// Current schema.
    pub fn schema(&self) -> &Tmd {
        self.store.schema()
    }

    /// Log head (next LSN).
    pub fn wal_position(&self) -> u64 {
        self.store.wal_position()
    }

    /// A tailer over this node's log.
    pub fn tailer(&self) -> WalTailer {
        WalTailer::new(self.store.dir())
    }

    /// Journals one record — refused once fenced.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Fenced`] after fencing; otherwise as
    /// [`DurableTmd::apply`].
    pub fn apply(&mut self, record: WalRecord) -> Result<u64, ReplicaError> {
        if self.fenced {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        Ok(self.store.apply(record)?)
    }

    /// Checkpoints the store — refused once fenced.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::Fenced`] after fencing; otherwise as
    /// [`DurableTmd::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), ReplicaError> {
        if self.fenced {
            return Err(ReplicaError::Fenced { epoch: self.epoch });
        }
        self.store.checkpoint()?;
        Ok(())
    }

    /// Runs the store's policy-gated checkpoint check — the periodic
    /// driver behind `CheckpointPolicy::max_tail_age_ms`. A fenced
    /// node's store is frozen, so the check is skipped (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::maybe_checkpoint`].
    pub fn maybe_checkpoint(
        &mut self,
    ) -> Result<Option<mvolap_durable::CheckpointId>, ReplicaError> {
        if self.fenced {
            return Ok(None);
        }
        Ok(self.store.maybe_checkpoint()?)
    }

    /// Fences this node at `epoch`: every further write is refused with
    /// [`ReplicaError::Fenced`]. The supervisor calls this on the
    /// deposed primary at promotion; a [`crate::net::ReplicaServer`]
    /// calls it when a request proves a newer primary exists.
    pub fn fence(&mut self, epoch: u64) {
        self.fenced = true;
        self.epoch = epoch;
    }
}

/// Supervisor's view of one follower link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkState {
    /// Replicating normally.
    Healthy,
    /// Waiting out a backoff window after transport errors.
    Backoff,
    /// Declared unreachable (retries exhausted or heartbeats missed).
    Down,
    /// The follower's store crashed; needs [`ReplicaSet::restart_follower`].
    Crashed,
    /// The follower refuses replay; needs [`ReplicaSet::rebuild_follower`].
    Refusing,
}

#[derive(Debug)]
struct Link {
    state: LinkState,
    acked_lsn: u64,
    missed: u64,
    retry_attempt: u32,
    retry_wait: u64,
}

impl Link {
    fn new() -> Link {
        Link {
            state: LinkState::Healthy,
            acked_lsn: 0,
            missed: 0,
            retry_attempt: 0,
            retry_wait: 0,
        }
    }

    fn reset(&mut self) {
        self.state = LinkState::Healthy;
        self.missed = 0;
        self.retry_attempt = 0;
        self.retry_wait = 0;
    }
}

/// Noteworthy state changes surfaced by one [`ReplicaSet::tick`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickEvent {
    /// The follower's store hit an I/O-class failure.
    FollowerCrashed {
        /// Node name.
        node: String,
    },
    /// Retries exhausted or heartbeat misses over the limit.
    LinkDown {
        /// Node name.
        node: String,
    },
    /// The follower refuses replay (divergence or invalid record).
    FollowerRefused {
        /// Node name.
        node: String,
        /// Human-readable refusal.
        detail: String,
    },
}

/// Cumulative supervisor counters.
#[derive(Debug, Default, Clone)]
pub struct SetStats {
    /// WAL frames shipped to followers.
    pub frames_shipped: u64,
    /// Snapshot bootstraps served (pruned-log path).
    pub snapshots_served: u64,
    /// Acks processed.
    pub acks: u64,
    /// Transport errors that triggered a backoff retry.
    pub retries: u64,
    /// Promotions performed.
    pub promotions: u64,
    /// Fence messages delivered to deposed primaries.
    pub fences: u64,
}

/// One primary + N followers over a transport.
#[derive(Debug)]
pub struct ReplicaSet<T: ReplicaTransport> {
    base: PathBuf,
    opts: Options,
    cfg: ReplicaConfig,
    transport: T,
    epoch: u64,
    primary: Option<PrimaryNode>,
    /// The most recently deposed primary, kept for post-failover
    /// assertions (it must refuse writes).
    retired: Option<PrimaryNode>,
    followers: BTreeMap<String, Follower>,
    links: BTreeMap<String, Link>,
    stats: SetStats,
}

impl<T: ReplicaTransport> ReplicaSet<T> {
    /// Creates a set whose primary is a fresh store under
    /// `base/primary` seeded with `seed`, using `io` for the primary's
    /// I/O.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::create_with`].
    pub fn bootstrap(
        base: &Path,
        seed: Tmd,
        opts: Options,
        cfg: ReplicaConfig,
        transport: T,
        io: Io,
    ) -> Result<ReplicaSet<T>, ReplicaError> {
        let dir = base.join("primary");
        let store = DurableTmd::create_with(&dir, seed, opts.clone(), io)?;
        Ok(ReplicaSet {
            base: base.to_path_buf(),
            opts,
            cfg,
            transport,
            epoch: 0,
            primary: Some(PrimaryNode::from_store("primary", store, 0)),
            retired: None,
            followers: BTreeMap::new(),
            links: BTreeMap::new(),
            stats: SetStats::default(),
        })
    }

    /// Registers a fresh follower under `base/<name>`; it bootstraps
    /// from the primary on subsequent ticks.
    pub fn add_follower(&mut self, name: &str, io: Io) {
        let dir = self.base.join(name);
        self.followers.insert(
            name.to_string(),
            Follower::create(name, dir, self.opts.clone(), io),
        );
        self.links.insert(name.to_string(), Link::new());
    }

    /// Replaces a crashed follower with one recovered from its
    /// directory and marks the link healthy again.
    ///
    /// # Errors
    ///
    /// As [`Follower::open`].
    pub fn restart_follower(&mut self, name: &str) -> Result<(), ReplicaError> {
        if !self.followers.contains_key(name) {
            return Err(ReplicaError::UnknownNode(name.to_string()));
        }
        let dir = self.base.join(name);
        let f = Follower::open(name, dir, self.opts.clone(), Io::plain())?;
        self.followers.insert(name.to_string(), f);
        self.links.get_mut(name).expect("link exists").reset();
        Ok(())
    }

    /// Discards a refusing follower's state entirely; it re-bootstraps
    /// from the current primary.
    ///
    /// # Errors
    ///
    /// I/O failure wiping the directory.
    pub fn rebuild_follower(&mut self, name: &str) -> Result<(), ReplicaError> {
        if !self.followers.contains_key(name) {
            return Err(ReplicaError::UnknownNode(name.to_string()));
        }
        let dir = self.base.join(name);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(ReplicaError::Durable(e.into())),
        }
        self.followers.insert(
            name.to_string(),
            Follower::create(name, dir, self.opts.clone(), Io::plain()),
        );
        self.links.get_mut(name).expect("link exists").reset();
        Ok(())
    }

    /// Journals one record on the primary.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary; otherwise
    /// as [`PrimaryNode::apply`].
    pub fn apply(&mut self, record: WalRecord) -> Result<u64, ReplicaError> {
        self.primary
            .as_mut()
            .ok_or(ReplicaError::NotPrimary)?
            .apply(record)
    }

    /// Checkpoints the primary.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::NotPrimary`] without a live primary; otherwise
    /// as [`PrimaryNode::checkpoint`].
    pub fn checkpoint(&mut self) -> Result<(), ReplicaError> {
        self.primary
            .as_mut()
            .ok_or(ReplicaError::NotPrimary)?
            .checkpoint()
    }

    /// Removes the primary, simulating its crash or loss; returns the
    /// node for inspection.
    pub fn kill_primary(&mut self) -> Option<PrimaryNode> {
        self.primary.take()
    }

    /// Promotes follower `name`: bumps the epoch, fences the deposed
    /// primary (message best-effort, local flag unconditional — the
    /// supervisor never routes writes to it again), and installs the
    /// follower's store as the new primary.
    ///
    /// # Errors
    ///
    /// [`ReplicaError::UnknownNode`]; the typed
    /// [`ReplicaError::RefusedMember`] when the follower's sticky
    /// `Diverged`/`Invalid` refusal is set (a refusing replica must
    /// never take writes — the operator names it, the supervisor says
    /// no); [`Follower::into_primary_store`] errors otherwise (never
    /// bootstrapped).
    pub fn promote(&mut self, name: &str) -> Result<u64, ReplicaError> {
        let candidate = self
            .followers
            .get(name)
            .ok_or_else(|| ReplicaError::UnknownNode(name.to_string()))?;
        if let Some(reason) = candidate.refusal_error() {
            // Refuse *before* dismantling anything: the set keeps
            // supervising the refusing follower as-is.
            return Err(ReplicaError::RefusedMember {
                node: name.to_string(),
                reason: reason.to_string(),
            });
        }
        let follower = self
            .followers
            .remove(name)
            .ok_or_else(|| ReplicaError::UnknownNode(name.to_string()))?;
        let store = match follower.into_primary_store() {
            Ok(store) => store,
            Err(e) => {
                // Promotion refused; the follower's directory is
                // intact — reopen so the set stays consistent.
                let dir = self.base.join(name);
                if let Ok(f) = Follower::open(name, dir, self.opts.clone(), Io::plain()) {
                    self.followers.insert(name.to_string(), f);
                }
                return Err(e);
            }
        };
        self.epoch += 1;
        self.stats.promotions += 1;
        if let Some(mut old) = self.primary.take() {
            old.fence(self.epoch);
            let fence = ReplicaMsg::Fence { epoch: self.epoch };
            if self.transport.send(old.name(), &fence).is_ok() {
                self.stats.fences += 1;
            }
            self.retired = Some(old);
        }
        self.links.remove(name);
        for link in self.links.values_mut() {
            // Links re-evaluate against the new primary; crashed or
            // refusing followers still need explicit repair.
            if matches!(
                link.state,
                LinkState::Healthy | LinkState::Backoff | LinkState::Down
            ) {
                link.reset();
            }
        }
        self.primary = Some(PrimaryNode::from_store(name, store, self.epoch));
        Ok(self.epoch)
    }

    /// One supervision round: for every healthy follower, exchange
    /// hello → heartbeat + frames/snapshot → acks, then update
    /// liveness and backoff state.
    pub fn tick(&mut self) -> Vec<TickEvent> {
        let mut events = Vec::new();
        if self.primary.is_none() {
            return events;
        }
        let names: Vec<String> = self.followers.keys().cloned().collect();
        for name in names {
            let link = self.links.get_mut(&name).expect("link exists");
            match link.state {
                LinkState::Crashed | LinkState::Refusing | LinkState::Down => continue,
                LinkState::Backoff if link.retry_wait > 0 => {
                    link.retry_wait -= 1;
                    continue;
                }
                _ => {}
            }
            match self.round(&name) {
                Ok(acked) => {
                    let link = self.links.get_mut(&name).expect("link exists");
                    if acked {
                        link.reset();
                    } else {
                        link.missed += 1;
                        if link.missed > self.cfg.heartbeat_miss_limit {
                            link.state = LinkState::Down;
                            events.push(TickEvent::LinkDown { node: name.clone() });
                        }
                    }
                }
                Err(RoundFail::Transport) => {
                    self.stats.retries += 1;
                    let link = self.links.get_mut(&name).expect("link exists");
                    link.retry_attempt += 1;
                    if link.retry_attempt > self.cfg.max_retries {
                        link.state = LinkState::Down;
                        events.push(TickEvent::LinkDown { node: name.clone() });
                    } else {
                        link.state = LinkState::Backoff;
                        link.retry_wait = self.cfg.backoff_start << (link.retry_attempt - 1);
                    }
                }
                Err(RoundFail::Crashed) => {
                    self.links.get_mut(&name).expect("link exists").state = LinkState::Crashed;
                    events.push(TickEvent::FollowerCrashed { node: name.clone() });
                }
                Err(RoundFail::Refused(detail)) => {
                    self.links.get_mut(&name).expect("link exists").state = LinkState::Refusing;
                    events.push(TickEvent::FollowerRefused {
                        node: name.clone(),
                        detail,
                    });
                }
            }
        }
        events
    }

    /// One hello/replicate/ack exchange with follower `name`. `Ok`
    /// carries whether an ack arrived.
    fn round(&mut self, name: &str) -> Result<bool, RoundFail> {
        let primary_name = self
            .primary
            .as_ref()
            .expect("primary exists")
            .name()
            .to_string();
        let hello = self.followers.get(name).expect("follower exists").hello();
        self.transport
            .send(&primary_name, &hello)
            .map_err(|_| RoundFail::Transport)?;
        let mut acked = self.pump_primary(&primary_name)?;
        acked |= self.pump_follower(name, &primary_name)?;
        acked |= self.pump_primary(&primary_name)?;
        Ok(acked)
    }

    /// Drains the primary's inbox, answering hellos and recording
    /// acks. Returns whether any ack was recorded.
    fn pump_primary(&mut self, primary_name: &str) -> Result<bool, RoundFail> {
        let mut acked = false;
        loop {
            let msg = self
                .transport
                .recv(primary_name)
                .map_err(|_| RoundFail::Transport)?;
            let Some(msg) = msg else { break };
            match msg {
                ReplicaMsg::Hello {
                    node,
                    next_lsn,
                    last_crc,
                    ..
                } => self.answer_hello(&node, next_lsn, last_crc)?,
                ReplicaMsg::Ack { node, next_lsn, .. } => {
                    self.stats.acks += 1;
                    acked = true;
                    if let Some(link) = self.links.get_mut(&node) {
                        link.acked_lsn = link.acked_lsn.max(next_lsn);
                    }
                }
                // A deposed primary's stray traffic; ignore.
                _ => {}
            }
        }
        Ok(acked)
    }

    /// Answers one follower hello: divergence gate, then heartbeat plus
    /// frames or a snapshot.
    fn answer_hello(&mut self, node: &str, next_lsn: u64, last_crc: u32) -> Result<(), RoundFail> {
        let primary = self.primary.as_ref().expect("primary exists");
        let epoch = self.epoch;
        let head = primary.wal_position();
        let tailer = primary.tailer();
        if let Err(ReplicaError::Diverged {
            lsn,
            expected_crc,
            got_crc,
        }) = tailer.verify_position(next_lsn, last_crc, head)
        {
            self.transport
                .send(
                    node,
                    &ReplicaMsg::Diverged {
                        epoch,
                        lsn,
                        expected_crc,
                        got_crc,
                    },
                )
                .map_err(|_| RoundFail::Transport)?;
            return Ok(());
        }
        self.transport
            .send(
                node,
                &ReplicaMsg::Heartbeat {
                    epoch,
                    next_lsn: head,
                },
            )
            .map_err(|_| RoundFail::Transport)?;
        if next_lsn >= head {
            return Ok(());
        }
        let reply = match tailer.fetch(next_lsn, self.cfg.batch_frames) {
            Ok(TailSource::Frames(frames)) => {
                self.stats.frames_shipped += frames.len() as u64;
                ReplicaMsg::Frames { epoch, frames }
            }
            Ok(TailSource::Snapshot { next_lsn, snapshot }) => {
                self.stats.snapshots_served += 1;
                ReplicaMsg::Snapshot {
                    epoch,
                    next_lsn,
                    snapshot,
                }
            }
            // Serving-side read problems surface as a skipped round;
            // the follower retries next tick.
            Err(_) => return Ok(()),
        };
        self.transport
            .send(node, &reply)
            .map_err(|_| RoundFail::Transport)?;
        Ok(())
    }

    /// Drains follower `name`'s inbox through [`Follower::handle`],
    /// forwarding replies to the primary.
    fn pump_follower(&mut self, name: &str, primary_name: &str) -> Result<bool, RoundFail> {
        loop {
            let msg = self
                .transport
                .recv(name)
                .map_err(|_| RoundFail::Transport)?;
            let Some(msg) = msg else { break };
            let follower = self.followers.get_mut(name).expect("follower exists");
            match follower.handle(msg) {
                Ok(Some(reply)) => {
                    self.transport
                        .send(primary_name, &reply)
                        .map_err(|_| RoundFail::Transport)?;
                }
                Ok(None) => {}
                Err(e) if e.is_crash() => return Err(RoundFail::Crashed),
                Err(e) => return Err(RoundFail::Refused(e.to_string())),
            }
        }
        Ok(false)
    }

    /// Runs `rounds` supervision ticks spaced `interval_ms` apart on
    /// `clock`, collecting every event. With a
    /// [`crate::clock::SystemClock`] this is the deployment loop; with
    /// a [`crate::clock::ManualClock`] it is instant and deterministic,
    /// while store-side wall-clock policies sharing the clock still see
    /// time pass between rounds.
    pub fn run_ticks(
        &mut self,
        clock: &impl crate::clock::Clock,
        interval_ms: u64,
        rounds: u64,
    ) -> Vec<TickEvent> {
        let mut events = Vec::new();
        for _ in 0..rounds {
            events.extend(self.tick());
            clock.sleep_ms(interval_ms);
        }
        events
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live primary.
    pub fn primary(&self) -> Option<&PrimaryNode> {
        self.primary.as_ref()
    }

    /// The live primary, mutable.
    pub fn primary_mut(&mut self) -> Option<&mut PrimaryNode> {
        self.primary.as_mut()
    }

    /// The most recently deposed primary.
    pub fn retired(&self) -> Option<&PrimaryNode> {
        self.retired.as_ref()
    }

    /// The most recently deposed primary, mutable (for refusal
    /// assertions).
    pub fn retired_mut(&mut self) -> Option<&mut PrimaryNode> {
        self.retired.as_mut()
    }

    /// Follower by name.
    pub fn follower(&self, name: &str) -> Option<&Follower> {
        self.followers.get(name)
    }

    /// Follower by name, mutable (test harnesses drive
    /// [`Follower::handle`] directly through this).
    pub fn follower_mut(&mut self, name: &str) -> Option<&mut Follower> {
        self.followers.get_mut(name)
    }

    /// Registered follower names.
    pub fn follower_names(&self) -> Vec<String> {
        self.followers.keys().cloned().collect()
    }

    /// Supervisor's view of a follower link.
    pub fn link_state(&self, name: &str) -> Option<LinkState> {
        self.links.get(name).map(|l| l.state)
    }

    /// Highest LSN follower `name` has acknowledged as durable.
    pub fn acked_lsn(&self, name: &str) -> u64 {
        self.links.get(name).map_or(0, |l| l.acked_lsn)
    }

    /// Cumulative counters.
    pub fn stats(&self) -> &SetStats {
        &self.stats
    }

    /// Transport operations performed so far.
    pub fn transport_steps(&self) -> u64 {
        self.transport.steps()
    }
}

enum RoundFail {
    /// Transport error: retry with backoff.
    Transport,
    /// The follower's store crashed.
    Crashed,
    /// The follower refuses replay.
    Refused(String),
}
