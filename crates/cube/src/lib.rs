//! # mvolap-cube
//!
//! The OLAP-server tier of the §5.1 architecture: the cube "calculates
//! and optimizes the hypercube … query results are pre-calculated in the
//! form of aggregates", and the front end navigates it with roll-up,
//! drill-down, slice, dice and rotate while confidence colours and the
//! global quality factor guide the user (§5.2).
//!
//! * [`Cube`] — materialises the aggregate lattice (every combination of
//!   per-dimension level and time level) for one temporal mode;
//! * [`CubeView`] — a navigable viewpoint over a cube with the classic
//!   OLAP operators;
//! * [`quality`] — the §5.2 global quality factor and best-mode choice.

pub mod lattice;
pub mod quality;
pub mod view;

pub use lattice::{BuildStats, Cube, CubeSpec, LatticeNode};
pub use quality::{best_mode, mode_qualities, ModeQuality};
pub use view::CubeView;
