//! The global quality factor `Q` (paper §5.2).
//!
//! Once a request is built, each temporal mode scores
//! `Q = (Σᵢⱼ pds(fb(i,j))) / (Ni·Nj·10)` with user-weighted confidence
//! factors, and "the user can choose his best version among all temporal
//! modes of presentation, according to its own criteria of quality".

use mvolap_core::aggregate::{evaluate, AggregateQuery};
use mvolap_core::error::Result;
use mvolap_core::structure_version::StructureVersion;
use mvolap_core::tmp::{all_modes, TemporalMode};
use mvolap_core::{ConfidenceWeights, Tmd};

/// The quality score of one temporal mode for a given query.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeQuality {
    /// The scored mode.
    pub mode: TemporalMode,
    /// The §5.2 global quality factor in `[0, 1]`.
    pub quality: f64,
    /// Result rows the mode produced.
    pub rows: usize,
    /// Source facts unrepresentable in the mode.
    pub unmapped_rows: usize,
}

/// Evaluates `query` under **every** temporal mode (tcm plus each
/// structure version), scoring each with the user's weights. The query's
/// own `mode` field is ignored — it is re-run per mode.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn mode_qualities(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    query: &AggregateQuery,
    weights: &ConfidenceWeights,
) -> Result<Vec<ModeQuality>> {
    let mut out = Vec::new();
    for mode in all_modes(structure_versions) {
        let mut q = query.clone();
        q.mode = mode.clone();
        let rs = evaluate(tmd, structure_versions, &q)?;
        out.push(ModeQuality {
            mode,
            quality: rs.quality(weights),
            rows: rs.rows.len(),
            unmapped_rows: rs.unmapped_rows,
        });
    }
    Ok(out)
}

/// The mode with the highest quality factor (ties resolve to the
/// earliest mode in TMP order, i.e. tcm first).
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn best_mode(
    tmd: &Tmd,
    structure_versions: &[StructureVersion],
    query: &AggregateQuery,
    weights: &ConfidenceWeights,
) -> Result<ModeQuality> {
    let qualities = mode_qualities(tmd, structure_versions, query, weights)?;
    Ok(qualities
        .into_iter()
        .reduce(|best, cur| {
            if cur.quality > best.quality {
                cur
            } else {
                best
            }
        })
        .expect("all_modes always yields at least tcm"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_core::case_study::case_study;
    use mvolap_temporal::Interval;

    fn q2() -> (Tmd, mvolap_core::DimensionId, AggregateQuery) {
        let cs = case_study();
        let q = AggregateQuery::by_year(cs.org, "Department", TemporalMode::Consistent)
            .in_range(Interval::years(2002, 2003));
        (cs.tmd, cs.org, q)
    }

    #[test]
    fn tcm_scores_perfect_quality() {
        let (tmd, _, q) = q2();
        let svs = tmd.structure_versions();
        let scores = mode_qualities(&tmd, &svs, &q, &ConfidenceWeights::DEFAULT).unwrap();
        assert_eq!(scores.len(), 4); // tcm + 3 versions
        assert_eq!(scores[0].mode, TemporalMode::Consistent);
        assert!((scores[0].quality - 1.0).abs() < 1e-12);
        // Mapped modes lose quality.
        assert!(scores[3].quality < 1.0);
    }

    #[test]
    fn best_mode_is_tcm_with_default_weights() {
        let (tmd, _, q) = q2();
        let svs = tmd.structure_versions();
        let best = best_mode(&tmd, &svs, &q, &ConfidenceWeights::DEFAULT).unwrap();
        assert_eq!(best.mode, TemporalMode::Consistent);
    }

    #[test]
    fn weights_change_the_ranking_between_mapped_modes() {
        let (tmd, _, q) = q2();
        let svs = tmd.structure_versions();
        // A user who trusts exact mappings as much as source data: the
        // 2002 mode (exact merge of Bill+Paul into Jones) ties tcm and
        // beats the 2003 mode (approximate split).
        let w = ConfidenceWeights::new(10, 10, 0, 0);
        let scores = mode_qualities(&tmd, &svs, &q, &w).unwrap();
        let by_mode = |label: &str| {
            scores
                .iter()
                .find(|s| s.mode.label() == label)
                .map(|s| s.quality)
                .unwrap()
        };
        assert!((by_mode("VS1") - 1.0).abs() < 1e-12);
        assert!(by_mode("VS1") > by_mode("VS2"));
    }
}
