//! Interactive navigation over a materialised cube.
//!
//! [`CubeView`] is the front-end tier's viewpoint: the classic OLAP
//! operators (roll-up, drill-down, slice, dice, rotate) move it around
//! the precomputed lattice, and rendering tags every cell with its
//! confidence colour (§5.2's white/green/yellow/red guidance).

use mvolap_core::aggregate::{ResultRow, TimeLevel};
use mvolap_core::error::{CoreError, Result};
use mvolap_core::{ConfidenceWeights, DimensionId};

use crate::lattice::Cube;

/// A navigable viewpoint over a [`Cube`].
#[derive(Debug, Clone)]
pub struct CubeView<'a> {
    cube: &'a Cube,
    /// Current level per dimension (`None` = rolled up to All).
    levels: Vec<Option<String>>,
    /// Current time grouping.
    time_level: TimeLevel,
    /// Dice filters: per dimension, the allowed member names (empty =
    /// no filter). Index 0 filters the time axis.
    filters: Vec<Vec<String>>,
    /// Column order for rendering: indices into [time, dim0, dim1, …].
    pivot: Vec<usize>,
}

impl<'a> CubeView<'a> {
    /// Opens a view at the finest materialised granularity: the deepest
    /// level of every dimension, by year.
    pub fn open(cube: &'a Cube) -> Self {
        let levels: Vec<Option<String>> = cube
            .dimension_names()
            .iter()
            .enumerate()
            .map(|(d, _)| {
                cube.levels_of(DimensionId(d as u32))
                    .ok()
                    .and_then(|ls| ls.last().cloned())
            })
            .collect();
        let n = levels.len();
        CubeView {
            cube,
            levels,
            time_level: TimeLevel::Year,
            filters: vec![Vec::new(); n + 1],
            pivot: (0..=n).collect(),
        }
    }

    /// The current level per dimension.
    pub fn levels(&self) -> &[Option<String>] {
        &self.levels
    }

    /// The current time level.
    pub fn time_level(&self) -> TimeLevel {
        self.time_level
    }

    /// **Roll-up**: moves one dimension one level towards All.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`] for a bad id. Rolling up from All
    /// is a no-op.
    pub fn roll_up(&mut self, dim: DimensionId) -> Result<()> {
        let all = self.cube.levels_of(dim)?;
        let cur = self
            .levels
            .get_mut(dim.index())
            .ok_or(CoreError::UnknownDimension(dim))?;
        *cur = match cur.as_deref() {
            None => None,
            Some(level) => {
                let pos = all.iter().position(|l| l == level);
                match pos {
                    Some(0) | None => None,
                    Some(p) => Some(all[p - 1].clone()),
                }
            }
        };
        Ok(())
    }

    /// **Drill-down**: moves one dimension one level away from All.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`] for a bad id. Drilling below the
    /// deepest level is a no-op.
    pub fn drill_down(&mut self, dim: DimensionId) -> Result<()> {
        let all = self.cube.levels_of(dim)?;
        let cur = self
            .levels
            .get_mut(dim.index())
            .ok_or(CoreError::UnknownDimension(dim))?;
        *cur = match cur.as_deref() {
            None => all.first().cloned(),
            Some(level) => {
                let pos = all.iter().position(|l| l == level);
                match pos {
                    Some(p) if p + 1 < all.len() => Some(all[p + 1].clone()),
                    _ => cur.clone(),
                }
            }
        };
        Ok(())
    }

    /// Rolls the time axis up to a single all-time group.
    pub fn roll_up_time(&mut self) {
        self.time_level = TimeLevel::All;
    }

    /// Drills the time axis down to years.
    pub fn drill_down_time(&mut self) {
        self.time_level = TimeLevel::Year;
    }

    /// **Slice**: fixes one dimension to a single member name.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`] for a bad id.
    pub fn slice(&mut self, dim: DimensionId, member: impl Into<String>) -> Result<()> {
        self.dice(dim, vec![member.into()])
    }

    /// **Dice**: restricts one dimension to a set of member names
    /// (empty clears the filter).
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`] for a bad id.
    pub fn dice(&mut self, dim: DimensionId, members: Vec<String>) -> Result<()> {
        let slot = self
            .filters
            .get_mut(dim.index() + 1)
            .ok_or(CoreError::UnknownDimension(dim))?;
        *slot = members;
        Ok(())
    }

    /// Restricts the time axis to a set of rendered time keys
    /// (e.g. `"2002"`).
    pub fn dice_time(&mut self, times: Vec<String>) {
        self.filters[0] = times;
    }

    /// **Rotate / pivot**: reorders the rendered axes. `order` indexes
    /// into `[time, dim0, dim1, …]` and must be a permutation.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidEvolution`] when `order` is not a permutation
    /// of the axes.
    pub fn rotate(&mut self, order: Vec<usize>) -> Result<()> {
        let n = self.filters.len();
        let mut seen = vec![false; n];
        if order.len() != n
            || order
                .iter()
                .any(|&i| i >= n || std::mem::replace(&mut seen[i], true))
        {
            return Err(CoreError::InvalidEvolution(format!(
                "rotate order must be a permutation of 0..{n}"
            )));
        }
        self.pivot = order;
        Ok(())
    }

    /// The rows visible from the current viewpoint (level choice, time
    /// level, filters applied). Rows come from the precomputed lattice.
    pub fn rows(&self) -> Vec<ResultRow> {
        let Some(node) = self.cube.node(&self.levels, self.time_level) else {
            return Vec::new();
        };
        node.rows
            .iter()
            .filter(|r| {
                if !self.filters[0].is_empty() && !self.filters[0].contains(&r.time) {
                    return false;
                }
                // Key columns correspond to dimensions that currently
                // have a level selected, in dimension order.
                let mut key_idx = 0;
                for (d, level) in self.levels.iter().enumerate() {
                    if level.is_none() {
                        continue;
                    }
                    let filter = &self.filters[d + 1];
                    if !filter.is_empty() && !filter.contains(&r.keys[key_idx]) {
                        return false;
                    }
                    key_idx += 1;
                }
                true
            })
            .cloned()
            .collect()
    }

    /// The §5.2 quality factor of the current viewpoint.
    pub fn quality(&self, weights: &ConfidenceWeights) -> f64 {
        let rows = self.rows();
        let nj = self
            .cube
            .node(&self.levels, self.time_level)
            .map(|n| n.measure_headers.len())
            .unwrap_or(0);
        if rows.is_empty() || nj == 0 {
            return 0.0;
        }
        let sum: u64 = rows
            .iter()
            .flat_map(|r| r.cells.iter())
            .map(|c| weights.weight(c.confidence) as u64)
            .sum();
        sum as f64 / (rows.len() as f64 * nj as f64 * 10.0)
    }

    /// Renders the viewpoint as a pivot grid — time down the side, the
    /// first grouped dimension's members across the top — the layout of
    /// the prototype's result grids, with each cell carrying its
    /// confidence code. `measure` selects the measure column (0-based);
    /// blank cells are the "impossible cross-points" the prototype
    /// coloured red.
    pub fn render_grid(&self, measure: usize) -> String {
        mvolap_core::aggregate::render_rows_grid(&self.rows(), measure)
    }

    /// Renders the viewpoint as text, one line per row in pivot order,
    /// every cell tagged with its confidence colour — the textual stand-in
    /// for the prototype's coloured grid.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        for r in &rows {
            // Assemble axis labels: time plus the selected-level keys.
            let mut labels: Vec<&str> = vec![&r.time];
            labels.extend(r.keys.iter().map(String::as_str));
            let ordered: Vec<&str> = self
                .pivot
                .iter()
                .filter_map(|&i| labels.get(i).copied())
                .collect();
            out.push_str(&ordered.join(" | "));
            out.push_str(" :");
            for c in &r.cells {
                match c.value {
                    Some(v) => out.push_str(&format!(" {v} [{}]", c.confidence.colour())),
                    None => out.push_str(&format!(" ? [{}]", c.confidence.colour())),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::CubeSpec;
    use mvolap_core::case_study::case_study;
    use mvolap_core::tmp::TemporalMode;
    use mvolap_core::StructureVersionId;

    fn cube_for(mode: TemporalMode) -> (Cube, DimensionId) {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        (
            Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(mode)).unwrap(),
            cs.org,
        )
    }

    #[test]
    fn open_starts_at_deepest_level() {
        let (cube, _) = cube_for(TemporalMode::Consistent);
        let view = CubeView::open(&cube);
        assert_eq!(view.levels(), &[Some("Department".to_owned())]);
        assert_eq!(view.time_level(), TimeLevel::Year);
        assert_eq!(view.rows().len(), 10); // one per Table 3 fact
    }

    #[test]
    fn roll_up_and_drill_down_walk_the_lattice() {
        let (cube, org) = cube_for(TemporalMode::Consistent);
        let mut view = CubeView::open(&cube);
        view.roll_up(org).unwrap();
        assert_eq!(view.levels(), &[Some("Division".to_owned())]);
        assert_eq!(view.rows().len(), 6); // 3 years × 2 divisions
        view.roll_up(org).unwrap();
        assert_eq!(view.levels(), &[None]);
        assert_eq!(view.rows().len(), 3); // one per year
        view.roll_up(org).unwrap(); // no-op at the top
        assert_eq!(view.levels(), &[None]);
        view.drill_down(org).unwrap();
        assert_eq!(view.levels(), &[Some("Division".to_owned())]);
        view.drill_down(org).unwrap();
        view.drill_down(org).unwrap(); // no-op at the bottom
        assert_eq!(view.levels(), &[Some("Department".to_owned())]);
    }

    #[test]
    fn time_rollup() {
        let (cube, org) = cube_for(TemporalMode::Consistent);
        let mut view = CubeView::open(&cube);
        view.roll_up(org).unwrap();
        view.roll_up_time();
        let rows = view.rows();
        assert_eq!(rows.len(), 2); // Sales, R&D over all time
        let sales = rows.iter().find(|r| r.keys[0] == "Sales").unwrap();
        assert_eq!(sales.cells[0].value, Some(450.0));
        view.drill_down_time();
        assert_eq!(view.rows().len(), 6);
    }

    #[test]
    fn slice_and_dice() {
        let (cube, org) = cube_for(TemporalMode::Consistent);
        let mut view = CubeView::open(&cube);
        view.roll_up(org).unwrap();
        view.slice(org, "Sales").unwrap();
        assert!(view.rows().iter().all(|r| r.keys[0] == "Sales"));
        assert_eq!(view.rows().len(), 3);
        view.dice(org, vec![]).unwrap(); // clear
        view.dice_time(vec!["2002".into(), "2003".into()]);
        assert_eq!(view.rows().len(), 4);
    }

    #[test]
    fn rotate_validates_permutation() {
        let (cube, _) = cube_for(TemporalMode::Consistent);
        let mut view = CubeView::open(&cube);
        view.rotate(vec![1, 0]).unwrap();
        assert!(view.rotate(vec![0, 0]).is_err());
        assert!(view.rotate(vec![0]).is_err());
        let text = view.render();
        // Department name now leads each line.
        assert!(text.lines().next().unwrap().starts_with("Dpt."));
    }

    #[test]
    fn render_grid_pivots_members_to_columns() {
        let (cube, _) = cube_for(TemporalMode::Version(StructureVersionId(2)));
        let view = CubeView::open(&cube);
        let grid = view.render_grid(0);
        let lines: Vec<&str> = grid.lines().collect();
        // Header has the departments of the 2003 structure.
        assert!(lines[0].contains("Dpt.Bill"));
        assert!(lines[0].contains("Dpt.Smith"));
        assert!(!lines[0].contains("Dpt.Jones")); // not valid in VS2
                                                  // Rows are years; the 2002 Bill cell is the mapped 40 (am).
        let row_2002 = lines.iter().find(|l| l.starts_with("2002")).unwrap();
        assert!(row_2002.contains("40 (am)"));
        let row_2003 = lines.iter().find(|l| l.starts_with("2003")).unwrap();
        assert!(row_2003.contains("150 (sd)"));
        // Years 2001-2003: header + 3 rows.
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn render_grid_leaves_impossible_cells_blank() {
        // In tcm, Jones has no 2003 column entries and Bill none before
        // 2003: those cross-points render blank.
        let (cube, _) = cube_for(TemporalMode::Consistent);
        let view = CubeView::open(&cube);
        let grid = view.render_grid(0);
        let header = grid.lines().next().unwrap().to_owned();
        let jones_col = header.find("Dpt.Jones").unwrap();
        let row_2003 = grid.lines().find(|l| l.starts_with("2003")).unwrap();
        // The Jones column in 2003 is whitespace (or the row ends first).
        let cell = row_2003.get(jones_col..jones_col + 3).unwrap_or("");
        assert!(cell.trim().is_empty(), "expected blank, got `{cell}`");
    }

    #[test]
    fn render_tags_confidence_colours() {
        let (cube, _) = cube_for(TemporalMode::Version(StructureVersionId(2)));
        let view = CubeView::open(&cube);
        let text = view.render();
        assert!(text.contains("[white]")); // source cells
        assert!(text.contains("[yellow]")); // approx-mapped split cells
    }

    #[test]
    fn view_quality_tracks_filters() {
        let (cube, _) = cube_for(TemporalMode::Version(StructureVersionId(2)));
        let mut view = CubeView::open(&cube);
        let w = ConfidenceWeights::DEFAULT;
        let q_all = view.quality(&w);
        assert!(q_all < 1.0);
        // Slicing to 2003 leaves only source cells.
        view.dice_time(vec!["2003".into()]);
        assert!((view.quality(&w) - 1.0).abs() < 1e-12);
    }
}
