//! Aggregate-lattice materialisation.
//!
//! A cube precomputes one aggregation per *lattice node* — a choice of
//! level (or `All`) per dimension, crossed with a time level. Navigation
//! then answers roll-ups and drill-downs from the precomputed results
//! instead of re-scanning facts, which is exactly the aggregate
//! precomputation the paper attributes to the OLAP server tier.
//!
//! Two build strategies exist:
//!
//! * [`Cube::build`] evaluates every node from the base facts;
//! * [`Cube::build_incremental`] evaluates only the finest node from
//!   facts and derives each coarser node by re-aggregating its
//!   already-computed child — the classic lattice roll-up computation.
//!   Derivation requires a *fixed* hierarchy (a `Version` mode; under
//!   `tcm` a member's ancestor can change between two facts of the same
//!   output row) and *decomposable* aggregates (`sum`/`min`/`max`/
//!   `count`; `avg` of `avg` is wrong), so the builder transparently
//!   falls back to base evaluation when either precondition fails.

use std::collections::HashMap;

use mvolap_core::aggregate::{
    evaluate, evaluate_par, AggregateQuery, ResultRow, ResultSet, TimeLevel,
};
use mvolap_core::error::{CoreError, Result};
use mvolap_core::fact::MeasureAccumulator;
use mvolap_core::levels::{all_level_names, ancestors_at_level};
use mvolap_core::multiversion::MvCell;
use mvolap_core::structure_version::StructureVersion;
use mvolap_core::tmp::TemporalMode;
use mvolap_core::{Aggregator, Confidence, DimensionId, ExecContext, QueryMemo, Tmd};
use mvolap_temporal::{Instant, Interval};

/// The specification of a cube to materialise.
#[derive(Debug, Clone)]
pub struct CubeSpec {
    /// The temporal mode the cube presents.
    pub mode: TemporalMode,
    /// Optional restriction of fact times.
    pub time_range: Option<Interval>,
    /// Time levels to materialise (e.g. year and all-time).
    pub time_levels: Vec<TimeLevel>,
}

impl CubeSpec {
    /// A spec materialising year and all-time groupings of one mode.
    pub fn for_mode(mode: TemporalMode) -> Self {
        CubeSpec {
            mode,
            time_range: None,
            time_levels: vec![TimeLevel::Year, TimeLevel::All],
        }
    }
}

/// One node of the aggregation lattice: the chosen level per dimension
/// (`None` = rolled all the way up) and the time level.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LatticeNode {
    /// Per dimension (by id order): level name, or `None` for `All`.
    pub levels: Vec<Option<String>>,
    /// The time grouping of this node.
    pub time_level: TimeLevel,
}

/// How the nodes of a cube were computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Nodes evaluated from the base facts.
    pub from_facts: usize,
    /// Nodes derived by re-aggregating a finer node.
    pub derived: usize,
}

/// A materialised hypercube: every lattice node's aggregation, computed
/// once from the multiversion presentation of the facts.
#[derive(Debug, Clone)]
pub struct Cube {
    spec: CubeSpec,
    /// Per dimension: the level names available, top-down.
    dimension_levels: Vec<Vec<String>>,
    dimension_names: Vec<String>,
    nodes: Vec<(LatticeNode, ResultSet)>,
    stats: BuildStats,
}

impl Cube {
    /// Materialises the full lattice of `tmd` under `spec`.
    ///
    /// The lattice has `∏(levels_i + 1) × |time_levels|` nodes; for the
    /// paper's two-level Org dimension with two time levels that is six
    /// aggregations.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (unknown mode version etc.).
    pub fn build(
        tmd: &Tmd,
        structure_versions: &[StructureVersion],
        spec: CubeSpec,
    ) -> Result<Self> {
        Self::build_par(
            tmd,
            structure_versions,
            spec,
            &ExecContext::sequential(),
            &QueryMemo::new(),
        )
    }

    /// Parallel [`Cube::build`]: lattice nodes are independent
    /// aggregations, so they evaluate concurrently across `ctx`'s
    /// workers (each node's inner fold stays sequential to avoid
    /// oversubscription), sharing `memo`'s route and roll-up caches
    /// across nodes. Node order and every cell are bit-identical to
    /// [`Cube::build`] for any thread count.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (unknown mode version etc.).
    pub fn build_par(
        tmd: &Tmd,
        structure_versions: &[StructureVersion],
        spec: CubeSpec,
        ctx: &ExecContext,
        memo: &QueryMemo,
    ) -> Result<Self> {
        let dimension_levels: Vec<Vec<String>> =
            tmd.dimensions().iter().map(all_level_names).collect();
        let dimension_names: Vec<String> = tmd
            .dimensions()
            .iter()
            .map(|d| d.name().to_owned())
            .collect();

        // Enumerate level choices per dimension: None (All) + each level.
        let mut choice_sets: Vec<Vec<Option<String>>> = Vec::with_capacity(dimension_levels.len());
        for levels in &dimension_levels {
            let mut choices: Vec<Option<String>> = vec![None];
            choices.extend(levels.iter().cloned().map(Some));
            choice_sets.push(choices);
        }

        // Materialise the node list first; evaluation fans out below.
        let mut planned: Vec<(LatticeNode, AggregateQuery)> = Vec::new();
        let mut combo = vec![0usize; choice_sets.len()];
        loop {
            let levels: Vec<Option<String>> = choice_sets
                .iter()
                .zip(&combo)
                .map(|(set, &i)| set[i].clone())
                .collect();
            for &tl in &spec.time_levels {
                let group_by: Vec<(DimensionId, String)> = levels
                    .iter()
                    .enumerate()
                    .filter_map(|(d, l)| l.as_ref().map(|l| (DimensionId(d as u32), l.clone())))
                    .collect();
                let query = AggregateQuery {
                    group_by,
                    time_level: tl,
                    measures: Vec::new(),
                    mode: spec.mode.clone(),
                    time_range: spec.time_range,
                    filters: Vec::new(),
                };
                planned.push((
                    LatticeNode {
                        levels: levels.clone(),
                        time_level: tl,
                    },
                    query,
                ));
            }
            // Advance the mixed-radix counter over level choices.
            let mut d = 0;
            loop {
                if d == combo.len() {
                    break;
                }
                combo[d] += 1;
                if combo[d] < choice_sets[d].len() {
                    break;
                }
                combo[d] = 0;
                d += 1;
            }
            if d == combo.len() || choice_sets.is_empty() {
                break;
            }
        }

        // One worker per node; `parallel_map` preserves node order, and
        // the first error in node order is the one `build` would have
        // hit first.
        let inner = ExecContext::sequential();
        let results = ctx.parallel_map(&planned, |_, (_, query)| {
            evaluate_par(tmd, structure_versions, query, &inner, memo)
        });
        let mut nodes = Vec::with_capacity(planned.len());
        for ((node, _), result) in planned.into_iter().zip(results) {
            nodes.push((node, result?));
        }

        let stats = BuildStats {
            from_facts: nodes.len(),
            derived: 0,
        };
        Ok(Cube {
            spec,
            dimension_levels,
            dimension_names,
            nodes,
            stats,
        })
    }

    /// Materialises the lattice, deriving coarser nodes from finer ones
    /// where sound (fixed hierarchy + decomposable aggregates); falls
    /// back to [`Cube::build`] otherwise. The result is equal to
    /// `build`'s up to row order within a node.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn build_incremental(
        tmd: &Tmd,
        structure_versions: &[StructureVersion],
        spec: CubeSpec,
    ) -> Result<Self> {
        // Preconditions for sound derivation.
        let hierarchy_instant: Option<Instant> = match &spec.mode {
            TemporalMode::Version(v) => structure_versions
                .get(v.index())
                .map(|sv| sv.interval.start()),
            _ => None,
        };
        let decomposable = tmd.measures().iter().all(|m| {
            matches!(
                m.aggregator,
                Aggregator::Sum | Aggregator::Min | Aggregator::Max | Aggregator::Count
            )
        });
        let (Some(at), true) = (hierarchy_instant, decomposable) else {
            return Self::build(tmd, structure_versions, spec);
        };

        let dimension_levels: Vec<Vec<String>> =
            tmd.dimensions().iter().map(all_level_names).collect();
        let dimension_names: Vec<String> = tmd
            .dimensions()
            .iter()
            .map(|d| d.name().to_owned())
            .collect();
        let n_dims = dimension_levels.len();

        // Level choices per dimension, coarse → fine: index 0 is All,
        // the last index the deepest level.
        let choice_sets: Vec<Vec<Option<String>>> = dimension_levels
            .iter()
            .map(|levels| {
                std::iter::once(None)
                    .chain(levels.iter().cloned().map(Some))
                    .collect()
            })
            .collect();

        let mut stats = BuildStats::default();
        let mut nodes: Vec<(LatticeNode, ResultSet)> = Vec::new();
        // Computed results keyed by (per-dim choice index, time level).
        let mut computed: HashMap<(Vec<usize>, TimeLevel), usize> = HashMap::new();

        for &tl in &spec.time_levels {
            // Enumerate combos ordered by descending fineness (sum of
            // choice indexes), so every parent's finer child exists.
            let mut combos: Vec<Vec<usize>> = enumerate_combos(&choice_sets);
            combos.sort_by_key(|c| std::cmp::Reverse(c.iter().sum::<usize>()));

            for combo in combos {
                let levels: Vec<Option<String>> = combo
                    .iter()
                    .zip(&choice_sets)
                    .map(|(&i, set)| set[i].clone())
                    .collect();
                let is_finest = combo
                    .iter()
                    .zip(&choice_sets)
                    .all(|(&i, set)| i + 1 == set.len());

                let result = if is_finest {
                    stats.from_facts += 1;
                    let group_by: Vec<(DimensionId, String)> = levels
                        .iter()
                        .enumerate()
                        .filter_map(|(d, l)| l.as_ref().map(|l| (DimensionId(d as u32), l.clone())))
                        .collect();
                    evaluate(
                        tmd,
                        structure_versions,
                        &AggregateQuery {
                            group_by,
                            time_level: tl,
                            measures: Vec::new(),
                            mode: spec.mode.clone(),
                            time_range: spec.time_range,
                            filters: Vec::new(),
                        },
                    )?
                } else {
                    // Derive from the child combo that is one step finer
                    // in the first non-finest dimension.
                    let d = combo
                        .iter()
                        .zip(&choice_sets)
                        .position(|(&i, set)| i + 1 < set.len())
                        .expect("non-finest combo has a refinable dimension");
                    let mut child = combo.clone();
                    child[d] += 1;
                    let child_idx = computed[&(child.clone(), tl)];
                    let child_result = &nodes[child_idx].1;
                    stats.derived += 1;
                    derive_rollup(
                        tmd,
                        child_result,
                        &choice_sets,
                        &child,
                        d,
                        levels[d].as_deref(),
                        at,
                    )?
                };
                computed.insert((combo.clone(), tl), nodes.len());
                nodes.push((
                    LatticeNode {
                        levels,
                        time_level: tl,
                    },
                    result,
                ));
            }
        }

        // Restore `build`'s node ordering contract is not required —
        // lookup is by (levels, time_level) — but keep dims stable.
        let _ = n_dims;
        Ok(Cube {
            spec,
            dimension_levels,
            dimension_names,
            nodes,
            stats,
        })
    }

    /// How this cube's nodes were computed.
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// The cube's specification.
    pub fn spec(&self) -> &CubeSpec {
        &self.spec
    }

    /// Number of materialised lattice nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total materialised cells across all nodes.
    pub fn cell_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|(_, rs)| rs.rows.len() * rs.measure_headers.len())
            .sum()
    }

    /// Level names available for one dimension, top-down.
    ///
    /// # Errors
    ///
    /// [`CoreError::UnknownDimension`] for an out-of-range id.
    pub fn levels_of(&self, dim: DimensionId) -> Result<&[String]> {
        self.dimension_levels
            .get(dim.index())
            .map(Vec::as_slice)
            .ok_or(CoreError::UnknownDimension(dim))
    }

    /// The dimension names, in id order.
    pub fn dimension_names(&self) -> &[String] {
        &self.dimension_names
    }

    /// Fetches the precomputed result at one lattice node.
    pub fn node(&self, levels: &[Option<String>], time_level: TimeLevel) -> Option<&ResultSet> {
        self.nodes
            .iter()
            .find(|(n, _)| n.levels == levels && n.time_level == time_level)
            .map(|(_, rs)| rs)
    }

    /// Iterates over all `(node, result)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&LatticeNode, &ResultSet)> {
        self.nodes.iter().map(|(n, r)| (n, r))
    }
}

/// All index combinations over the per-dimension choice sets.
fn enumerate_combos(choice_sets: &[Vec<Option<String>>]) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut combo = vec![0usize; choice_sets.len()];
    loop {
        out.push(combo.clone());
        let mut d = 0;
        loop {
            if d == combo.len() {
                return out;
            }
            combo[d] += 1;
            if combo[d] < choice_sets[d].len() {
                break;
            }
            combo[d] = 0;
            d += 1;
        }
        if choice_sets.is_empty() {
            return out;
        }
    }
}

/// Derives a coarser lattice node from a finer one: dimension `d` (at
/// the level named by `child_combo`) rolls up to `target_level`
/// (`None` = All, dropping the key column). Sound only for a fixed
/// hierarchy (instant `at`) and decomposable aggregates — the caller
/// guarantees both.
fn derive_rollup(
    tmd: &Tmd,
    child: &ResultSet,
    choice_sets: &[Vec<Option<String>>],
    child_combo: &[usize],
    d: usize,
    target_level: Option<&str>,
    at: Instant,
) -> Result<ResultSet> {
    let dim_id = DimensionId(d as u32);
    let dimension = tmd.dimension(dim_id)?;
    // Key-column position of dimension `d` in the child result: one
    // column per dimension with a selected level, in dimension order.
    let key_pos = (0..d).filter(|&i| child_combo[i] > 0).count();
    debug_assert!(child_combo[d] > 0, "child must group dimension d");

    // Derivation aggregators: counts add up; sums add; min/max nest.
    let derive_aggs: Vec<Aggregator> = tmd
        .measures()
        .iter()
        .map(|m| m.aggregator.combining())
        .collect();

    struct Acc {
        acc: MeasureAccumulator,
        confidence: Confidence,
        unknown: bool,
    }
    let mut index: HashMap<(String, Vec<String>), usize> = HashMap::new();
    let mut keys: Vec<(String, Vec<String>)> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    // Ancestor-name cache: every row with the same member maps alike.
    let mut ancestor_cache: HashMap<String, Vec<String>> = HashMap::new();

    for row in &child.rows {
        let member = &row.keys[key_pos];
        let mapped: Vec<String> = match target_level {
            None => vec![],
            Some(level) => {
                if member == "(unclassified)" {
                    vec!["(unclassified)".to_owned()]
                } else {
                    match ancestor_cache.get(member) {
                        Some(names) => names.clone(),
                        None => {
                            let leaf = dimension.version_named_at(member, at)?.id;
                            let ancestors = ancestors_at_level(dimension, leaf, level, at)?;
                            let names: Vec<String> = if ancestors.is_empty() {
                                vec!["(unclassified)".to_owned()]
                            } else {
                                ancestors
                                    .iter()
                                    .map(|&a| dimension.version(a).map(|v| v.name.clone()))
                                    .collect::<Result<Vec<_>>>()?
                            };
                            ancestor_cache.insert(member.clone(), names.clone());
                            names
                        }
                    }
                }
            }
        };
        // Multi-hierarchy fan-out (usually one ancestor); All-level
        // rollups contribute once with the key removed.
        let targets: Vec<Option<&String>> = if mapped.is_empty() {
            vec![None]
        } else {
            mapped.iter().map(Some).collect()
        };
        for target in targets {
            let mut new_keys = row.keys.clone();
            match target {
                Some(name) => new_keys[key_pos] = name.clone(),
                None => {
                    new_keys.remove(key_pos);
                }
            }
            let key = (row.time.clone(), new_keys);
            let idx = *index.entry(key.clone()).or_insert_with(|| {
                keys.push(key);
                accs.push(
                    derive_aggs
                        .iter()
                        .map(|&a| Acc {
                            acc: MeasureAccumulator::new(a),
                            confidence: Confidence::Source,
                            unknown: false,
                        })
                        .collect(),
                );
                keys.len() - 1
            });
            for (cell, acc) in row.cells.iter().zip(&mut accs[idx]) {
                acc.confidence = acc.confidence.combine(cell.confidence);
                match cell.value {
                    Some(v) => acc.acc.update(v),
                    None => acc.unknown = true,
                }
            }
        }
    }

    let mut key_headers = child.key_headers.clone();
    match target_level {
        Some(level) => key_headers[key_pos] = level.to_owned(),
        None => {
            key_headers.remove(key_pos);
        }
    }
    // Child rows arrive time-ordered; first-seen preserves that order.
    let rows: Vec<ResultRow> = keys
        .into_iter()
        .zip(&accs)
        .map(|((time, group_keys), cell_accs)| ResultRow {
            time,
            keys: group_keys,
            cells: cell_accs
                .iter()
                .map(|a| MvCell {
                    value: if a.unknown { None } else { a.acc.finish() },
                    confidence: a.confidence,
                })
                .collect(),
        })
        .collect();

    let _ = choice_sets;
    Ok(ResultSet {
        mode: child.mode.clone(),
        time_header: child.time_header.clone(),
        key_headers,
        measure_headers: child.measure_headers.clone(),
        rows,
        unmapped_rows: child.unmapped_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_core::case_study::case_study;
    use mvolap_core::StructureVersionId;

    #[test]
    fn lattice_has_all_level_time_combinations() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let cube =
            Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent)).unwrap();
        // (All, Division, Department) × (Year, All) = 6 nodes.
        assert_eq!(cube.node_count(), 6);
        assert!(cube.cell_count() > 0);
        assert_eq!(cube.levels_of(cs.org).unwrap(), ["Division", "Department"]);
        assert_eq!(cube.dimension_names(), ["Org"]);
    }

    #[test]
    fn node_lookup_matches_direct_evaluation() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let cube =
            Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent)).unwrap();
        let node = cube
            .node(&[Some("Division".into())], TimeLevel::Year)
            .unwrap();
        // 2001-2003 × {Sales, R&D} = 6 rows.
        assert_eq!(node.rows.len(), 6);
        let direct = evaluate(
            &cs.tmd,
            &svs,
            &AggregateQuery::by_year(cs.org, "Division", TemporalMode::Consistent),
        )
        .unwrap();
        assert_eq!(node.rows, direct.rows);
    }

    #[test]
    fn grand_total_node() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let cube =
            Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent)).unwrap();
        let total = cube.node(&[None], TimeLevel::All).unwrap();
        assert_eq!(total.rows.len(), 1);
        // Sum of every Table 3 amount: 850.
        assert_eq!(total.rows[0].cells[0].value, Some(850.0));
    }

    #[test]
    fn incremental_build_matches_base_build() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        for svid in [0u32, 1, 2] {
            let mode = TemporalMode::Version(StructureVersionId(svid));
            let base = Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(mode.clone())).unwrap();
            let incr = Cube::build_incremental(&cs.tmd, &svs, CubeSpec::for_mode(mode)).unwrap();
            // Only the finest node per time level came from facts.
            assert_eq!(incr.stats().from_facts, 2);
            assert_eq!(incr.stats().derived, 4);
            assert_eq!(incr.node_count(), base.node_count());
            for (node, base_rs) in base.iter() {
                let incr_rs = incr
                    .node(&node.levels, node.time_level)
                    .unwrap_or_else(|| panic!("node {node:?} missing"));
                // Same cells, order-insensitively.
                assert_eq!(incr_rs.rows.len(), base_rs.rows.len(), "node {node:?}");
                for row in &base_rs.rows {
                    let other = incr_rs
                        .rows
                        .iter()
                        .find(|r| r.time == row.time && r.keys == row.keys)
                        .unwrap_or_else(|| panic!("row {row:?} missing in {node:?}"));
                    for (a, b) in row.cells.iter().zip(&other.cells) {
                        assert_eq!(a.confidence, b.confidence);
                        match (a.value, b.value) {
                            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9),
                            (x, y) => assert_eq!(x, y),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_falls_back_for_tcm_and_avg() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        // tcm: hierarchy varies per fact time -> fallback.
        let cube =
            Cube::build_incremental(&cs.tmd, &svs, CubeSpec::for_mode(TemporalMode::Consistent))
                .unwrap();
        assert_eq!(cube.stats().derived, 0);
        assert_eq!(cube.stats().from_facts, cube.node_count());

        // An avg measure -> fallback even in a version mode.
        use mvolap_core::{MeasureDef, MemberVersionSpec, TemporalDimension, Tmd};
        use mvolap_temporal::{Granularity, Instant, Interval};
        let mut tmd = Tmd::new("avg", Granularity::Month);
        let mut d = TemporalDimension::new("D");
        let all = Interval::since(Instant::ym(2001, 1));
        let top = d.add_version(MemberVersionSpec::named("Top").at_level("L1"), all);
        let leaf = d.add_version(MemberVersionSpec::named("Leaf").at_level("L2"), all);
        d.add_relationship(leaf, top, all).unwrap();
        tmd.add_dimension(d).unwrap();
        tmd.add_measure(MeasureDef {
            name: "m".into(),
            aggregator: mvolap_core::Aggregator::Avg,
        })
        .unwrap();
        tmd.add_fact(&[leaf], Instant::ym(2001, 6), &[4.0]).unwrap();
        let svs = tmd.structure_versions();
        let cube = Cube::build_incremental(
            &tmd,
            &svs,
            CubeSpec::for_mode(TemporalMode::Version(svs[0].id)),
        )
        .unwrap();
        assert_eq!(cube.stats().derived, 0);
    }

    #[test]
    fn incremental_derives_count_measures_correctly() {
        use mvolap_core::{MeasureDef, MemberVersionSpec, TemporalDimension, Tmd};
        use mvolap_temporal::{Granularity, Instant, Interval};
        let mut tmd = Tmd::new("count", Granularity::Month);
        let mut d = TemporalDimension::new("D");
        let all = Interval::since(Instant::ym(2001, 1));
        let top = d.add_version(MemberVersionSpec::named("Top").at_level("L1"), all);
        let a = d.add_version(MemberVersionSpec::named("A").at_level("L2"), all);
        let b = d.add_version(MemberVersionSpec::named("B").at_level("L2"), all);
        d.add_relationship(a, top, all).unwrap();
        d.add_relationship(b, top, all).unwrap();
        tmd.add_dimension(d).unwrap();
        tmd.add_measure(MeasureDef {
            name: "n".into(),
            aggregator: mvolap_core::Aggregator::Count,
        })
        .unwrap();
        for leaf in [a, a, a, b] {
            tmd.add_fact(&[leaf], Instant::ym(2001, 6), &[1.0]).unwrap();
        }
        let svs = tmd.structure_versions();
        let cube = Cube::build_incremental(
            &tmd,
            &svs,
            CubeSpec::for_mode(TemporalMode::Version(svs[0].id)),
        )
        .unwrap();
        assert!(cube.stats().derived > 0);
        // Counts must ADD under roll-up: Top = 3 + 1 = 4 (a derived
        // count-of-counts would say 2).
        let node = cube.node(&[Some("L1".into())], TimeLevel::All).unwrap();
        assert_eq!(node.rows.len(), 1);
        assert_eq!(node.rows[0].cells[0].value, Some(4.0));
    }

    #[test]
    fn version_mode_cube() {
        let cs = case_study();
        let svs = cs.tmd.structure_versions();
        let cube = Cube::build(
            &cs.tmd,
            &svs,
            CubeSpec::for_mode(TemporalMode::Version(StructureVersionId(2))),
        )
        .unwrap();
        let node = cube
            .node(&[Some("Department".into())], TimeLevel::Year)
            .unwrap();
        // 2002 data appears under Bill/Paul (the split), never Jones.
        assert!(node.rows.iter().all(|r| r.keys[0] != "Dpt.Jones"));
        assert!(node
            .rows
            .iter()
            .any(|r| r.time == "2002" && r.keys[0] == "Dpt.Bill"));
    }
}
