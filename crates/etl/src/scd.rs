//! Kimball's Slowly Changing Dimensions, Types 1–3 (paper §1.2).
//!
//! These are the baselines the paper positions itself against:
//!
//! * **Type 1** overwrites — it "avoids the real goal", the tracking of
//!   history: every query sees only the latest structure;
//! * **Type 2** versions rows — history is kept, but "comparisons across
//!   the transitions cannot be made, since links between them are not
//!   kept";
//! * **Type 3** keeps the previous value in a second column — bounded
//!   history, no overlap support, attribute changes only.
//!
//! Each maintainer ingests the same [`Snapshot`]
//! stream the multiversion loader consumes, storing its dimension as a
//! relational [`Table`], so the benchmark suite can compare load cost,
//! storage and — crucially — answerable queries.

use mvolap_storage::{ColumnDef, DataType, StorageError, Table, TableSchema, Value};
use mvolap_temporal::Instant;

use crate::snapshot::Snapshot;

/// SCD **Type 1**: one row per member, updated in place.
#[derive(Debug, Clone)]
pub struct Scd1Dimension {
    table: Table,
}

impl Scd1Dimension {
    /// An empty Type 1 dimension table.
    ///
    /// # Errors
    ///
    /// Storage schema failures.
    pub fn new(name: &str) -> Result<Self, StorageError> {
        let schema = TableSchema::new(vec![
            ColumnDef::required("member", DataType::Str),
            ColumnDef::nullable("parent", DataType::Str),
        ])?;
        Ok(Scd1Dimension {
            table: Table::new(format!("{name}_scd1"), schema),
        })
    }

    /// Loads a snapshot: existing members are overwritten, new members
    /// appended, vanished members removed — the destructive update model.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn load(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        // Rebuild wholesale: Type 1 keeps no history, so the snapshot IS
        // the table.
        let mut fresh = Table::new(self.table.name().to_owned(), self.table.schema().clone());
        for row in snapshot.rows.values() {
            fresh.push_row(vec![
                row.member.clone().into(),
                row.parent.clone().map(Value::from).unwrap_or(Value::Null),
            ])?;
        }
        self.table = fresh;
        Ok(())
    }

    /// The current parent of a member — the only question Type 1 can
    /// answer (no history).
    pub fn parent_of(&self, member: &str) -> Option<String> {
        self.table
            .rows()
            .find(|r| r[0].as_str() == Some(member))
            .and_then(|r| r[1].as_str().map(str::to_owned))
    }

    /// The underlying relational table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

/// SCD **Type 2**: a new row (new surrogate key) per changed member,
/// with validity bounds and a current flag.
#[derive(Debug, Clone)]
pub struct Scd2Dimension {
    table: Table,
    next_key: i64,
}

impl Scd2Dimension {
    /// An empty Type 2 dimension table.
    ///
    /// # Errors
    ///
    /// Storage schema failures.
    pub fn new(name: &str) -> Result<Self, StorageError> {
        let schema = TableSchema::new(vec![
            ColumnDef::required("surrogate", DataType::Int),
            ColumnDef::required("member", DataType::Str),
            ColumnDef::nullable("parent", DataType::Str),
            ColumnDef::required("valid_from", DataType::Int),
            ColumnDef::nullable("valid_to", DataType::Int),
            ColumnDef::required("current", DataType::Bool),
        ])?;
        Ok(Scd2Dimension {
            table: Table::new(format!("{name}_scd2"), schema),
            next_key: 1,
        })
    }

    /// Loads a snapshot: changed members close their current row and
    /// open a new one; vanished members close; new members open.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn load(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        let t = snapshot.period.tick();
        // Collect the current state.
        let mut current: Vec<(usize, String, Option<String>)> = Vec::new();
        for (i, row) in self.table.rows().enumerate() {
            if row[5] == Value::Bool(true) {
                current.push((
                    i,
                    row[1].as_str().expect("member is a string").to_owned(),
                    row[2].as_str().map(str::to_owned),
                ));
            }
        }
        // Rebuild the table with closed/kept rows (storage tables are
        // append-only; SCD2 maintenance rewrites the handful of current
        // rows).
        let mut fresh = Table::new(self.table.name().to_owned(), self.table.schema().clone());
        for (i, row) in self.table.rows().enumerate() {
            let mut row = row;
            if row[5] == Value::Bool(true) {
                let member = row[1].as_str().expect("member is a string");
                let parent = row[2].as_str().map(str::to_owned);
                let next = snapshot.rows.get(member);
                let changed = match next {
                    None => true,
                    Some(n) => n.parent != parent,
                };
                if changed {
                    row[4] = Value::Int(t - 1);
                    row[5] = Value::Bool(false);
                }
            }
            let _ = i;
            fresh.push_row(row)?;
        }
        self.table = fresh;
        // Open rows for new or changed members.
        for (member, next) in &snapshot.rows {
            let was = current.iter().find(|(_, m, _)| m == member);
            let needs_row = match was {
                None => true,
                Some((_, _, parent)) => parent != &next.parent,
            };
            if needs_row {
                let key = self.next_key;
                self.next_key += 1;
                self.table.push_row(vec![
                    key.into(),
                    member.clone().into(),
                    next.parent.clone().map(Value::from).unwrap_or(Value::Null),
                    t.into(),
                    Value::Null,
                    true.into(),
                ])?;
            }
        }
        Ok(())
    }

    /// The parent of a member at instant `t` — Type 2 keeps history, so
    /// point-in-time lookups work…
    pub fn parent_at(&self, member: &str, t: Instant) -> Option<String> {
        let tick = t.tick();
        self.table
            .rows()
            .find(|r| {
                r[1].as_str() == Some(member)
                    && r[3].as_int().expect("valid_from") <= tick
                    && match r[4].as_int() {
                        Some(to) => tick <= to,
                        None => true,
                    }
            })
            .and_then(|r| r[2].as_str().map(str::to_owned))
    }

    /// …but each spell is an unrelated surrogate row: the *link* between
    /// a member's versions is not modelled, which is exactly the paper's
    /// critique. This returns the number of disconnected rows a member
    /// has accumulated.
    pub fn version_count(&self, member: &str) -> usize {
        self.table
            .rows()
            .filter(|r| r[1].as_str() == Some(member))
            .count()
    }

    /// The underlying relational table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

/// SCD **Type 3**: one row per member with `parent` and
/// `previous_parent` columns — exactly one change of history, no
/// overlaps (the limitation the paper notes).
#[derive(Debug, Clone)]
pub struct Scd3Dimension {
    table: Table,
}

impl Scd3Dimension {
    /// An empty Type 3 dimension table.
    ///
    /// # Errors
    ///
    /// Storage schema failures.
    pub fn new(name: &str) -> Result<Self, StorageError> {
        let schema = TableSchema::new(vec![
            ColumnDef::required("member", DataType::Str),
            ColumnDef::nullable("parent", DataType::Str),
            ColumnDef::nullable("previous_parent", DataType::Str),
        ])?;
        Ok(Scd3Dimension {
            table: Table::new(format!("{name}_scd3"), schema),
        })
    }

    /// Loads a snapshot, shifting the old parent into `previous_parent`
    /// on change. A second change silently discards the oldest value —
    /// Type 3's bounded history.
    ///
    /// # Errors
    ///
    /// Storage failures.
    pub fn load(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        let mut fresh = Table::new(self.table.name().to_owned(), self.table.schema().clone());
        for (member, next) in &snapshot.rows {
            let old = self
                .table
                .rows()
                .find(|r| r[0].as_str() == Some(member))
                .map(|r| (r[1].clone(), r[2].clone()));
            let (parent, previous) = match old {
                None => (
                    next.parent.clone().map(Value::from).unwrap_or(Value::Null),
                    Value::Null,
                ),
                Some((old_parent, old_previous)) => {
                    let new_parent = next.parent.clone().map(Value::from).unwrap_or(Value::Null);
                    if new_parent == old_parent {
                        (old_parent, old_previous)
                    } else {
                        (new_parent, old_parent)
                    }
                }
            };
            fresh.push_row(vec![member.clone().into(), parent, previous])?;
        }
        self.table = fresh;
        Ok(())
    }

    /// Current and previous parent of a member.
    pub fn parents_of(&self, member: &str) -> Option<(Option<String>, Option<String>)> {
        self.table
            .rows()
            .find(|r| r[0].as_str() == Some(member))
            .map(|r| {
                (
                    r[1].as_str().map(str::to_owned),
                    r[2].as_str().map(str::to_owned),
                )
            })
    }

    /// The underlying relational table.
    pub fn table(&self) -> &Table {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotRow;

    fn snap(period: Instant, pairs: &[(&str, Option<&str>)]) -> Snapshot {
        Snapshot::new(period, pairs.iter().map(|(m, p)| SnapshotRow::new(*m, *p)))
    }

    fn s2001() -> Snapshot {
        snap(
            Instant::ym(2001, 1),
            &[
                ("Sales", None),
                ("R&D", None),
                ("Dpt.Jones", Some("Sales")),
                ("Dpt.Smith", Some("Sales")),
                ("Dpt.Brian", Some("R&D")),
            ],
        )
    }

    fn s2002() -> Snapshot {
        snap(
            Instant::ym(2002, 1),
            &[
                ("Sales", None),
                ("R&D", None),
                ("Dpt.Jones", Some("Sales")),
                ("Dpt.Smith", Some("R&D")),
                ("Dpt.Brian", Some("R&D")),
            ],
        )
    }

    #[test]
    fn scd1_loses_history() {
        let mut d = Scd1Dimension::new("org").unwrap();
        d.load(&s2001()).unwrap();
        assert_eq!(d.parent_of("Dpt.Smith").as_deref(), Some("Sales"));
        d.load(&s2002()).unwrap();
        // The 2001 placement is gone forever.
        assert_eq!(d.parent_of("Dpt.Smith").as_deref(), Some("R&D"));
        assert_eq!(d.table().len(), 5);
    }

    #[test]
    fn scd2_keeps_history_per_point_in_time() {
        let mut d = Scd2Dimension::new("org").unwrap();
        d.load(&s2001()).unwrap();
        d.load(&s2002()).unwrap();
        assert_eq!(
            d.parent_at("Dpt.Smith", Instant::ym(2001, 6)).as_deref(),
            Some("Sales")
        );
        assert_eq!(
            d.parent_at("Dpt.Smith", Instant::ym(2002, 6)).as_deref(),
            Some("R&D")
        );
        // …at the cost of disconnected surrogate rows.
        assert_eq!(d.version_count("Dpt.Smith"), 2);
        assert_eq!(d.version_count("Dpt.Brian"), 1);
    }

    #[test]
    fn scd2_closes_vanished_members() {
        let mut d = Scd2Dimension::new("org").unwrap();
        d.load(&s2001()).unwrap();
        let mut next = s2002();
        next.rows.remove("Dpt.Jones");
        d.load(&next).unwrap();
        assert_eq!(
            d.parent_at("Dpt.Jones", Instant::ym(2001, 6)).as_deref(),
            Some("Sales")
        );
        assert_eq!(d.parent_at("Dpt.Jones", Instant::ym(2002, 6)), None);
    }

    #[test]
    fn scd3_keeps_exactly_one_previous_value() {
        let mut d = Scd3Dimension::new("org").unwrap();
        d.load(&s2001()).unwrap();
        d.load(&s2002()).unwrap();
        assert_eq!(
            d.parents_of("Dpt.Smith").unwrap(),
            (Some("R&D".into()), Some("Sales".into()))
        );
        // A second move erases the oldest placement: bounded history.
        let s2003 = snap(
            Instant::ym(2003, 1),
            &[
                ("Sales", None),
                ("R&D", None),
                ("Support", None),
                ("Dpt.Jones", Some("Sales")),
                ("Dpt.Smith", Some("Support")),
                ("Dpt.Brian", Some("R&D")),
            ],
        );
        d.load(&s2003).unwrap();
        assert_eq!(
            d.parents_of("Dpt.Smith").unwrap(),
            (Some("Support".into()), Some("R&D".into()))
        );
    }

    #[test]
    fn scd3_unchanged_members_keep_previous() {
        let mut d = Scd3Dimension::new("org").unwrap();
        d.load(&s2001()).unwrap();
        d.load(&s2002()).unwrap();
        d.load(&s2002()).unwrap(); // idempotent reload
        assert_eq!(
            d.parents_of("Dpt.Smith").unwrap(),
            (Some("R&D".into()), Some("Sales".into()))
        );
        assert_eq!(
            d.parents_of("Dpt.Brian").unwrap(),
            (Some("R&D".into()), None)
        );
    }
}
