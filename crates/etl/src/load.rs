//! Loading detected changes into a temporal multidimensional schema.
//!
//! Each loader is generic over [`EvolutionTarget`], so the same change
//! stream lands either directly in a [`Tmd`] or — journaled through the
//! write-ahead log — in a [`mvolap_durable::DurableTmd`]. The original
//! `Tmd`-taking entry points remain as thin wrappers.

use mvolap_core::evolution::{MergeSource, SplitPart};
use mvolap_core::{CoreError, DimensionId, MemberVersionId, Result, Tmd};
use mvolap_temporal::Instant;

use crate::snapshot::ChangeEvent;
use crate::target::EvolutionTarget;

/// Administrator-supplied knowledge about an evolution that a snapshot
/// diff cannot infer: a member that disappeared while others appeared is
/// ambiguous between deletion+creation, a split, and a merge. The paper
/// assumes this knowledge exists ("mapping functions … are based on
/// knowledge around evolution operations"); hints are how the loader
/// receives it.
#[derive(Debug, Clone, PartialEq)]
pub enum EvolutionHint {
    /// `member` split into `parts`, each receiving the given fraction of
    /// every measure (forward approximate; backward exact identity).
    Split {
        /// The disappearing member.
        member: String,
        /// New members with their measure shares (should sum to 1).
        parts: Vec<(String, f64)>,
    },
    /// `sources` merged into `into`; each source maps forward
    /// identically and receives its fraction of the merged member
    /// backward.
    Merge {
        /// Disappearing members with their backward shares.
        sources: Vec<(String, f64)>,
        /// The new merged member.
        into: String,
    },
}

/// What a load pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Members created.
    pub created: usize,
    /// Members excluded.
    pub deleted: usize,
    /// Members reclassified.
    pub reclassified: usize,
    /// Members transformed (attribute changes).
    pub transformed: usize,
}

/// Resolves a member name to its version valid at `t` (or the version
/// valid just before `t`, for members being changed at `t`).
fn resolve(tmd: &Tmd, dim: DimensionId, name: &str, t: Instant) -> Result<MemberVersionId> {
    let d = tmd.dimension(dim)?;
    d.version_named_at(name, t)
        .or_else(|_| d.version_named_at(name, t.pred()))
        .map(|v| v.id)
}

/// Applies snapshot-diff events to a load destination at instant `at`,
/// through the §3.2 evolution operators:
///
/// * `Created` → `create` (Insert);
/// * `Deleted` → `delete` (Exclude);
/// * `Reclassified` → `reclassify` (the conceptual-model operator, which
///   keeps the member version and re-wires its relationships);
/// * `AttributesChanged` → `transform` (Exclude + Insert + equivalence
///   Associate).
///
/// # Errors
///
/// Name-resolution failures, evolution-operator violations, and — for a
/// durable destination — journaling failures.
pub fn apply_changes_in<T: EvolutionTarget>(
    target: &mut T,
    dim: DimensionId,
    events: &[ChangeEvent],
    at: Instant,
) -> std::result::Result<LoadReport, T::Error> {
    let mut report = LoadReport::default();
    // Creations may depend on one another (a department under a division
    // created in the same snapshot); retry until a pass makes no
    // progress.
    let mut pending_creates: Vec<&crate::snapshot::SnapshotRow> = events
        .iter()
        .filter_map(|e| match e {
            ChangeEvent::Created { row } => Some(row),
            _ => None,
        })
        .collect();
    while !pending_creates.is_empty() {
        let before = pending_creates.len();
        let mut rest = Vec::new();
        for row in pending_creates {
            let parents = match &row.parent {
                Some(p) => match resolve(target.schema(), dim, p, at) {
                    Ok(id) => vec![id],
                    Err(_) => {
                        rest.push(row);
                        continue;
                    }
                },
                None => Vec::new(),
            };
            target.create(dim, &row.member, row.level.clone(), at, &parents)?;
            report.created += 1;
        }
        if rest.len() == before {
            return Err(CoreError::InvalidEvolution(format!(
                "created members have unresolvable parents: {}",
                rest.iter()
                    .map(|r| r.member.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .into());
        }
        pending_creates = rest;
    }
    for event in events {
        match event {
            ChangeEvent::Created { .. } => {} // handled above
            ChangeEvent::Deleted { member } => {
                let id = resolve(target.schema(), dim, member, at)?;
                target.delete(dim, id, at)?;
                report.deleted += 1;
            }
            ChangeEvent::Reclassified {
                member,
                old_parent,
                new_parent,
            } => {
                let id = resolve(target.schema(), dim, member, at)?;
                let old: Vec<MemberVersionId> = match old_parent {
                    Some(p) => vec![resolve(target.schema(), dim, p, at)?],
                    None => Vec::new(),
                };
                let new: Vec<MemberVersionId> = match new_parent {
                    Some(p) => vec![resolve(target.schema(), dim, p, at)?],
                    None => Vec::new(),
                };
                target.reclassify(dim, id, at, &old, &new)?;
                report.reclassified += 1;
            }
            ChangeEvent::AttributesChanged { member, attributes } => {
                let id = resolve(target.schema(), dim, member, at)?;
                let name = target.schema().dimension(dim)?.version(id)?.name.clone();
                target.transform(dim, id, &name, attributes.clone(), at)?;
                report.transformed += 1;
            }
        }
    }
    Ok(report)
}

/// [`apply_changes_in`] for a bare [`Tmd`] — the original entry point.
///
/// # Errors
///
/// As [`apply_changes_in`].
pub fn apply_changes(
    tmd: &mut Tmd,
    dim: DimensionId,
    events: &[ChangeEvent],
    at: Instant,
) -> Result<LoadReport> {
    apply_changes_in(tmd, dim, events, at)
}

/// Applies snapshot-diff events with administrator hints: hinted splits
/// and merges consume their matching `Deleted`/`Created` events and run
/// the corresponding high-level operator (wiring mapping relationships);
/// everything left over flows through [`apply_changes_in`].
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] when a hint references members the
/// diff does not actually report as deleted/created; plus everything
/// [`apply_changes_in`] raises.
pub fn apply_changes_with_hints_in<T: EvolutionTarget>(
    target: &mut T,
    dim: DimensionId,
    events: &[ChangeEvent],
    hints: &[EvolutionHint],
    at: Instant,
) -> std::result::Result<LoadReport, T::Error> {
    let deleted = |events: &[ChangeEvent], name: &str| {
        events
            .iter()
            .any(|e| matches!(e, ChangeEvent::Deleted { member } if member == name))
    };
    let created_row = |events: &[ChangeEvent], name: &str| {
        events.iter().find_map(|e| match e {
            ChangeEvent::Created { row } if row.member == name => Some(row.clone()),
            _ => None,
        })
    };

    let mut consumed_deletes: Vec<String> = Vec::new();
    let mut consumed_creates: Vec<String> = Vec::new();
    let mut report = LoadReport::default();
    let measures = target.schema().measures().len();

    for hint in hints {
        match hint {
            EvolutionHint::Split { member, parts } => {
                if !deleted(events, member) {
                    return Err(CoreError::InvalidEvolution(format!(
                        "split hint for `{member}` but the snapshot does not delete it"
                    ))
                    .into());
                }
                let mut split_parts = Vec::with_capacity(parts.len());
                let mut parents: Vec<MemberVersionId> = Vec::new();
                for (part, share) in parts {
                    let row = created_row(events, part).ok_or_else(|| {
                        CoreError::InvalidEvolution(format!(
                            "split hint part `{part}` is not created by the snapshot"
                        ))
                    })?;
                    if let Some(p) = &row.parent {
                        let id = resolve(target.schema(), dim, p, at)?;
                        if !parents.contains(&id) {
                            parents.push(id);
                        }
                    }
                    split_parts.push(SplitPart::proportional(part.clone(), *share, measures));
                }
                let source = resolve(target.schema(), dim, member, at)?;
                target.split(dim, source, split_parts, at, &parents)?;
                consumed_deletes.push(member.clone());
                consumed_creates.extend(parts.iter().map(|(p, _)| p.clone()));
                report.deleted += 1;
                report.created += parts.len();
            }
            EvolutionHint::Merge { sources, into } => {
                let row = created_row(events, into).ok_or_else(|| {
                    CoreError::InvalidEvolution(format!(
                        "merge hint target `{into}` is not created by the snapshot"
                    ))
                })?;
                let parents: Vec<MemberVersionId> = match &row.parent {
                    Some(p) => vec![resolve(target.schema(), dim, p, at)?],
                    None => Vec::new(),
                };
                let mut merge_sources = Vec::with_capacity(sources.len());
                for (source, share) in sources {
                    if !deleted(events, source) {
                        return Err(CoreError::InvalidEvolution(format!(
                            "merge hint source `{source}` is not deleted by the snapshot"
                        ))
                        .into());
                    }
                    let id = resolve(target.schema(), dim, source, at)?;
                    merge_sources.push(MergeSource::with_share(id, *share, measures));
                }
                target.merge(dim, merge_sources, into, row.level.clone(), at, &parents)?;
                consumed_deletes.extend(sources.iter().map(|(s, _)| s.clone()));
                consumed_creates.push(into.clone());
                report.deleted += sources.len();
                report.created += 1;
            }
        }
    }

    // Everything not consumed by a hint loads the plain way.
    let remaining: Vec<ChangeEvent> = events
        .iter()
        .filter(|e| match e {
            ChangeEvent::Deleted { member } => !consumed_deletes.contains(member),
            ChangeEvent::Created { row } => !consumed_creates.contains(&row.member),
            _ => true,
        })
        .cloned()
        .collect();
    let rest = apply_changes_in(target, dim, &remaining, at)?;
    report.created += rest.created;
    report.deleted += rest.deleted;
    report.reclassified += rest.reclassified;
    report.transformed += rest.transformed;
    Ok(report)
}

/// [`apply_changes_with_hints_in`] for a bare [`Tmd`] — the original
/// entry point.
///
/// # Errors
///
/// As [`apply_changes_with_hints_in`].
pub fn apply_changes_with_hints(
    tmd: &mut Tmd,
    dim: DimensionId,
    events: &[ChangeEvent],
    hints: &[EvolutionHint],
    at: Instant,
) -> Result<LoadReport> {
    apply_changes_with_hints_in(tmd, dim, events, hints, at)
}

/// Bootstraps an empty dimension from its first snapshot: every root
/// first, then children (single-parent snapshots only — the flat source
/// format cannot express multi-parent members).
///
/// # Errors
///
/// [`CoreError::InvalidEvolution`] when a parent is missing from the
/// snapshot itself.
pub fn bootstrap_in<T: EvolutionTarget>(
    target: &mut T,
    dim: DimensionId,
    snapshot: &crate::snapshot::Snapshot,
) -> std::result::Result<LoadReport, T::Error> {
    let mut report = LoadReport::default();
    // Roots first, then repeatedly anything whose parent already exists.
    let mut pending: Vec<&crate::snapshot::SnapshotRow> = snapshot.rows.values().collect();
    let at = snapshot.period;
    while !pending.is_empty() {
        let before = pending.len();
        let mut rest = Vec::new();
        for row in pending {
            let parent_id = match &row.parent {
                None => None,
                Some(p) => match resolve(target.schema(), dim, p, at) {
                    Ok(id) => Some(id),
                    Err(_) => {
                        rest.push(row);
                        continue;
                    }
                },
            };
            let parents: Vec<MemberVersionId> = parent_id.into_iter().collect();
            target.create(dim, &row.member, row.level.clone(), at, &parents)?;
            report.created += 1;
        }
        if rest.len() == before {
            return Err(CoreError::InvalidEvolution(format!(
                "snapshot has unresolvable parents for: {}",
                rest.iter()
                    .map(|r| r.member.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .into());
        }
        pending = rest;
    }
    Ok(report)
}

/// [`bootstrap_in`] for a bare [`Tmd`] — the original entry point.
///
/// # Errors
///
/// As [`bootstrap_in`].
pub fn bootstrap(
    tmd: &mut Tmd,
    dim: DimensionId,
    snapshot: &crate::snapshot::Snapshot,
) -> Result<LoadReport> {
    bootstrap_in(tmd, dim, snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{diff, Snapshot, SnapshotRow};
    use crate::target::{load_facts, FactRecord};
    use mvolap_core::{MeasureDef, TemporalDimension};
    use mvolap_durable::DurableTmd;
    use mvolap_temporal::Granularity;

    fn empty_schema() -> (Tmd, DimensionId) {
        let mut tmd = Tmd::new("etl", Granularity::Month);
        let dim = tmd.add_dimension(TemporalDimension::new("Org")).unwrap();
        tmd.add_measure(MeasureDef::summed("Amount")).unwrap();
        (tmd, dim)
    }

    fn org_2001() -> Snapshot {
        Snapshot::new(
            Instant::ym(2001, 1),
            [
                SnapshotRow::new("Sales", None).at_level("Division"),
                SnapshotRow::new("R&D", None).at_level("Division"),
                SnapshotRow::new("Dpt.Jones", Some("Sales")).at_level("Department"),
                SnapshotRow::new("Dpt.Smith", Some("Sales")).at_level("Department"),
                SnapshotRow::new("Dpt.Brian", Some("R&D")).at_level("Department"),
            ],
        )
    }

    fn org_2002() -> Snapshot {
        let mut s = org_2001();
        s.period = Instant::ym(2002, 1);
        s.rows.get_mut("Dpt.Smith").unwrap().parent = Some("R&D".into());
        s
    }

    #[test]
    fn bootstrap_builds_the_2001_org() {
        let (mut tmd, dim) = empty_schema();
        let report = bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        assert_eq!(report.created, 5);
        let d = tmd.dimension(dim).unwrap();
        let smith = d
            .version_named_at("Dpt.Smith", Instant::ym(2001, 6))
            .unwrap()
            .id;
        let sales = d
            .version_named_at("Sales", Instant::ym(2001, 6))
            .unwrap()
            .id;
        assert_eq!(d.parents_at(smith, Instant::ym(2001, 6)), vec![sales]);
    }

    #[test]
    fn bootstrap_rejects_dangling_parents() {
        let (mut tmd, dim) = empty_schema();
        let bad = Snapshot::new(
            Instant::ym(2001, 1),
            [SnapshotRow::new("Dpt.Lost", Some("Ghost"))],
        );
        assert!(matches!(
            bootstrap(&mut tmd, dim, &bad),
            Err(CoreError::InvalidEvolution(_))
        ));
    }

    #[test]
    fn incremental_load_reproduces_smith_reclassification() {
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let events = diff(&org_2001(), &org_2002());
        let report = apply_changes(&mut tmd, dim, &events, Instant::ym(2002, 1)).unwrap();
        assert_eq!(report.reclassified, 1);
        let d = tmd.dimension(dim).unwrap();
        let smith = d
            .version_named_at("Dpt.Smith", Instant::ym(2002, 6))
            .unwrap()
            .id;
        let rnd = d.version_named_at("R&D", Instant::ym(2002, 6)).unwrap().id;
        assert_eq!(d.parents_at(smith, Instant::ym(2002, 6)), vec![rnd]);
        // Two structure versions now exist.
        assert_eq!(tmd.structure_versions().len(), 2);
    }

    #[test]
    fn incremental_load_handles_create_and_delete() {
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let mut next = org_2001();
        next.period = Instant::ym(2002, 1);
        next.rows.remove("Dpt.Jones");
        next.rows.insert(
            "Dpt.New".into(),
            SnapshotRow::new("Dpt.New", Some("Sales")).at_level("Department"),
        );
        let events = diff(&org_2001(), &next);
        let report = apply_changes(&mut tmd, dim, &events, Instant::ym(2002, 1)).unwrap();
        assert_eq!(report.created, 1);
        assert_eq!(report.deleted, 1);
        let d = tmd.dimension(dim).unwrap();
        assert!(d
            .version_named_at("Dpt.Jones", Instant::ym(2002, 6))
            .is_err());
        assert!(d.version_named_at("Dpt.New", Instant::ym(2002, 6)).is_ok());
    }

    #[test]
    fn split_hint_wires_mapping_relationships() {
        // The paper's 2003 evolution through the ETL path: Jones
        // disappears, Bill/Paul appear, and the administrator supplies
        // the 40/60 split knowledge.
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let mut next = org_2001();
        next.period = Instant::ym(2003, 1);
        next.rows.remove("Dpt.Jones");
        for name in ["Dpt.Bill", "Dpt.Paul"] {
            next.rows.insert(
                name.into(),
                SnapshotRow::new(name, Some("Sales")).at_level("Department"),
            );
        }
        let events = diff(&org_2001(), &next);
        let hints = [EvolutionHint::Split {
            member: "Dpt.Jones".into(),
            parts: vec![("Dpt.Bill".into(), 0.4), ("Dpt.Paul".into(), 0.6)],
        }];
        let report =
            apply_changes_with_hints(&mut tmd, dim, &events, &hints, Instant::ym(2003, 1)).unwrap();
        assert_eq!(report.created, 2);
        assert_eq!(report.deleted, 1);
        // Mapping relationships exist — unlike a plain delete+create.
        let rels = tmd.mapping_graph(dim).unwrap().relationships();
        assert_eq!(rels.len(), 2);
        // And data is now comparable across the transition, paper
        // Table 10 style.
        tmd.add_fact_by_names(&["Dpt.Jones"], Instant::ym(2002, 6), &[100.0])
            .unwrap();
        let svs = tmd.structure_versions();
        let last = svs.last().unwrap().id;
        let p = mvolap_core::multiversion::present(
            &tmd,
            &svs,
            &mvolap_core::TemporalMode::Version(last),
        )
        .unwrap();
        assert_eq!(p.unmapped_rows, 0);
    }

    #[test]
    fn merge_hint_wires_mapping_relationships() {
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let mut next = org_2001();
        next.period = Instant::ym(2003, 1);
        next.rows.remove("Dpt.Jones");
        next.rows.remove("Dpt.Smith");
        next.rows.insert(
            "Dpt.Mega".into(),
            SnapshotRow::new("Dpt.Mega", Some("Sales")).at_level("Department"),
        );
        let events = diff(&org_2001(), &next);
        let hints = [EvolutionHint::Merge {
            sources: vec![("Dpt.Jones".into(), 0.7), ("Dpt.Smith".into(), 0.3)],
            into: "Dpt.Mega".into(),
        }];
        let report =
            apply_changes_with_hints(&mut tmd, dim, &events, &hints, Instant::ym(2003, 1)).unwrap();
        assert_eq!(report.created, 1);
        assert_eq!(report.deleted, 2);
        assert_eq!(tmd.mapping_graph(dim).unwrap().relationships().len(), 2);
    }

    #[test]
    fn hints_must_match_the_diff() {
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let events = diff(&org_2001(), &org_2002());
        // Smith is reclassified, not deleted: a split hint on it is
        // inconsistent.
        let hints = [EvolutionHint::Split {
            member: "Dpt.Smith".into(),
            parts: vec![("Dpt.X".into(), 1.0)],
        }];
        assert!(matches!(
            apply_changes_with_hints(&mut tmd, dim, &events, &hints, Instant::ym(2002, 1)),
            Err(CoreError::InvalidEvolution(_))
        ));
    }

    #[test]
    fn attribute_change_creates_a_new_version_with_equivalence() {
        let (mut tmd, dim) = empty_schema();
        bootstrap(&mut tmd, dim, &org_2001()).unwrap();
        let mut next = org_2001();
        next.period = Instant::ym(2002, 1);
        next.rows
            .get_mut("Dpt.Brian")
            .unwrap()
            .attributes
            .insert("budget".into(), "high".into());
        let events = diff(&org_2001(), &next);
        let report = apply_changes(&mut tmd, dim, &events, Instant::ym(2002, 1)).unwrap();
        assert_eq!(report.transformed, 1);
        let d = tmd.dimension(dim).unwrap();
        // Two versions of Brian's department now exist.
        assert_eq!(d.versions_named("Dpt.Brian").len(), 2);
        assert_eq!(tmd.mapping_graph(dim).unwrap().relationships().len(), 1);
    }

    /// The full §5.1 pipeline against a durable destination: bootstrap,
    /// facts, a hinted split — every step journaled — then recovery from
    /// disk alone reproduces the identical schema.
    #[test]
    fn etl_pipeline_is_journaled_end_to_end() {
        let dir = std::env::temp_dir().join(format!("mvolap_etl_wal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let (tmd, dim) = empty_schema();
        let mut store = DurableTmd::create(&dir, tmd).unwrap();

        bootstrap_in(&mut store, dim, &org_2001()).unwrap();
        load_facts(
            &mut store,
            &[FactRecord {
                coords: vec!["Dpt.Jones".into()],
                at: Instant::ym(2002, 6),
                values: vec![100.0],
            }],
        )
        .unwrap();
        let mut next = org_2001();
        next.period = Instant::ym(2003, 1);
        next.rows.remove("Dpt.Jones");
        for name in ["Dpt.Bill", "Dpt.Paul"] {
            next.rows.insert(
                name.into(),
                SnapshotRow::new(name, Some("Sales")).at_level("Department"),
            );
        }
        let events = diff(&org_2001(), &next);
        let hints = [EvolutionHint::Split {
            member: "Dpt.Jones".into(),
            parts: vec![("Dpt.Bill".into(), 0.4), ("Dpt.Paul".into(), 0.6)],
        }];
        let report =
            apply_changes_with_hints_in(&mut store, dim, &events, &hints, Instant::ym(2003, 1))
                .unwrap();
        assert_eq!(report.created, 2);
        assert_eq!(report.deleted, 1);

        let mut before = Vec::new();
        mvolap_core::persist::write_tmd(store.schema(), &mut before).unwrap();
        drop(store);

        let reopened = DurableTmd::open(&dir).unwrap();
        let mut after = Vec::new();
        mvolap_core::persist::write_tmd(reopened.schema(), &mut after).unwrap();
        assert_eq!(after, before);
        assert_eq!(
            reopened
                .schema()
                .mapping_graph(dim)
                .unwrap()
                .relationships()
                .len(),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
