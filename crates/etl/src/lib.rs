//! # mvolap-etl
//!
//! The ETL tier of the §5.1 architecture: operational sources deliver
//! periodic *snapshots* of an analysis dimension; change detection
//! derives evolution events; loaders apply them either to the temporal
//! multidimensional schema (the paper's model) or to Kimball-style
//! **Slowly Changing Dimension** tables — the Type 1/2/3 baselines the
//! paper's §1.2 discusses and improves upon.
//!
//! * [`snapshot`] — the source snapshot model and differ;
//! * [`load`] — applying detected changes to any [`EvolutionTarget`];
//! * [`target`] — the load destination abstraction: a bare
//!   [`mvolap_core::Tmd`] or a journaled [`mvolap_durable::DurableTmd`],
//!   plus [`load_facts`] for fact batches;
//! * [`scd`] — SCD Type 1 (overwrite), Type 2 (row versioning) and
//!   Type 3 (previous-value column) dimension maintainers, used as
//!   baselines by the benchmark suite.

pub mod durable;
pub mod load;
pub mod scd;
pub mod snapshot;
pub mod target;

pub use durable::{DurableScd, ScdDurableError, ScdMaintainer};
pub use load::{
    apply_changes, apply_changes_in, apply_changes_with_hints, apply_changes_with_hints_in,
    bootstrap, bootstrap_in, EvolutionHint, LoadReport,
};
pub use scd::{Scd1Dimension, Scd2Dimension, Scd3Dimension};
pub use snapshot::{diff, ChangeEvent, Snapshot, SnapshotRow};
pub use target::{load_facts, EvolutionTarget, FactRecord};
