//! Journaled SCD maintainers: the crash-safety contract the
//! multiversion store gets from `DurableTmd`, applied to the Kimball
//! baselines so the SCD-vs-evolution comparison can price durability
//! and recovery too.
//!
//! Each snapshot load is serialised, appended to a write-ahead log and
//! fsynced **before** it touches the dimension table; [`DurableScd::open`]
//! replays the journal through the same `load` path, so a crashed
//! loader recovers to exactly the prefix of acknowledged snapshots.
//! The journal reuses `mvolap-durable`'s segmented WAL (CRC-framed
//! records, torn-tail repair), which also makes the fsync counter
//! available for the bench comparison.

use std::path::Path;

use mvolap_durable::wal::LoggedRecord;
use mvolap_durable::{DurableError, Io, Wal};
use mvolap_storage::StorageError;
use mvolap_temporal::Instant;

use crate::scd::{Scd1Dimension, Scd2Dimension, Scd3Dimension};
use crate::snapshot::{Snapshot, SnapshotRow};

/// WAL segment size for snapshot journals — snapshots are small, so a
/// modest segment keeps rotation exercised without hurting the bench.
const SEGMENT_BYTES: u64 = 1 << 20;

/// Everything a journaled SCD load can raise.
#[derive(Debug)]
pub enum ScdDurableError {
    /// The journal failed (I/O, corruption, torn frame).
    Journal(DurableError),
    /// The dimension table refused the snapshot (schema violation).
    Table(StorageError),
}

impl std::fmt::Display for ScdDurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScdDurableError::Journal(e) => write!(f, "scd journal: {e}"),
            ScdDurableError::Table(e) => write!(f, "scd table: {e}"),
        }
    }
}

impl std::error::Error for ScdDurableError {}

impl From<DurableError> for ScdDurableError {
    fn from(e: DurableError) -> Self {
        ScdDurableError::Journal(e)
    }
}

impl From<StorageError> for ScdDurableError {
    fn from(e: StorageError) -> Self {
        ScdDurableError::Table(e)
    }
}

/// A snapshot-loadable SCD maintainer (Type 1, 2 or 3), abstracted so
/// one journal implementation covers all three baselines.
pub trait ScdMaintainer: Sized {
    /// Builds an empty maintainer for a dimension named `name`.
    ///
    /// # Errors
    ///
    /// [`StorageError`] when the backing schema cannot be created.
    fn empty(name: &str) -> Result<Self, StorageError>;

    /// Ingests one snapshot (the maintainer's `load`).
    ///
    /// # Errors
    ///
    /// [`StorageError`] on a schema violation.
    fn ingest(&mut self, snapshot: &Snapshot) -> Result<(), StorageError>;
}

impl ScdMaintainer for Scd1Dimension {
    fn empty(name: &str) -> Result<Self, StorageError> {
        Scd1Dimension::new(name)
    }
    fn ingest(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        self.load(snapshot)
    }
}

impl ScdMaintainer for Scd2Dimension {
    fn empty(name: &str) -> Result<Self, StorageError> {
        Scd2Dimension::new(name)
    }
    fn ingest(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        self.load(snapshot)
    }
}

impl ScdMaintainer for Scd3Dimension {
    fn empty(name: &str) -> Result<Self, StorageError> {
        Scd3Dimension::new(name)
    }
    fn ingest(&mut self, snapshot: &Snapshot) -> Result<(), StorageError> {
        self.load(snapshot)
    }
}

/// A journaled SCD maintainer: WAL-append + fsync per snapshot load,
/// replay on open.
pub struct DurableScd<D> {
    dim: D,
    wal: Wal,
    io: Io,
}

impl<D: ScdMaintainer> DurableScd<D> {
    /// Creates a fresh journaled maintainer under `dir`.
    ///
    /// # Errors
    ///
    /// Journal I/O failures; table-schema failures.
    pub fn create(dir: &Path, name: &str) -> Result<DurableScd<D>, ScdDurableError> {
        DurableScd::create_with(dir, name, Io::plain())
    }

    /// As [`DurableScd::create`], with an instrumented [`Io`] (fault
    /// injection, fsync counting).
    ///
    /// # Errors
    ///
    /// As [`DurableScd::create`].
    pub fn create_with(
        dir: &Path,
        name: &str,
        mut io: Io,
    ) -> Result<DurableScd<D>, ScdDurableError> {
        let wal = Wal::create(dir, SEGMENT_BYTES, &mut io)?;
        Ok(DurableScd {
            dim: D::empty(name)?,
            wal,
            io,
        })
    }

    /// Reopens a journaled maintainer, replaying every surviving
    /// snapshot record through the normal load path.
    ///
    /// # Errors
    ///
    /// Journal damage beyond torn-tail repair; replay failures.
    pub fn open(dir: &Path, name: &str) -> Result<DurableScd<D>, ScdDurableError> {
        let mut io = Io::plain();
        let opened = Wal::open(dir, SEGMENT_BYTES, &mut io)?;
        let mut dim = D::empty(name)?;
        for LoggedRecord { payload, .. } in &opened.records {
            dim.ingest(&decode_snapshot(payload)?)?;
        }
        Ok(DurableScd {
            dim,
            wal: opened.wal,
            io,
        })
    }

    /// Journals `snapshot` (append + fsync), then applies it to the
    /// table. The load is acknowledged only once it is durable.
    ///
    /// # Errors
    ///
    /// Journal I/O failures (nothing applied); table failures (the
    /// record is journaled — replay will retry it, mirroring
    /// `DurableTmd`'s validate-first contract for records that fail
    /// only transiently).
    pub fn load(&mut self, snapshot: &Snapshot) -> Result<(), ScdDurableError> {
        self.wal.append(&encode_snapshot(snapshot), &mut self.io)?;
        self.dim.ingest(snapshot)?;
        Ok(())
    }

    /// The recovered/maintained dimension.
    pub fn dim(&self) -> &D {
        &self.dim
    }

    /// Snapshots journaled so far (the WAL's next LSN minus one).
    pub fn journaled(&self) -> u64 {
        self.wal.next_lsn().saturating_sub(1)
    }

    /// File fsyncs performed by the journal — one per acknowledged
    /// load.
    pub fn io_fsyncs(&self) -> u64 {
        self.io.fsyncs()
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt(buf: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            buf.push(1);
            put_str(buf, s);
        }
        None => buf.push(0),
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bad(msg: &str) -> ScdDurableError {
        ScdDurableError::Journal(DurableError::Corrupt {
            message: format!("scd snapshot record: {msg}"),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ScdDurableError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| Self::bad("truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, ScdDurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ScdDurableError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| Self::bad("non-UTF-8 string"))
    }

    fn opt(&mut self) -> Result<Option<String>, ScdDurableError> {
        match self.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            _ => Err(Self::bad("bad option tag")),
        }
    }
}

fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    let ym = snapshot.period.to_ym();
    buf.extend_from_slice(&ym.year.to_le_bytes());
    buf.extend_from_slice(&ym.month.to_le_bytes());
    buf.extend_from_slice(&(snapshot.rows.len() as u32).to_le_bytes());
    for row in snapshot.rows.values() {
        put_str(&mut buf, &row.member);
        put_opt(&mut buf, row.parent.as_deref());
        put_opt(&mut buf, row.level.as_deref());
        buf.extend_from_slice(&(row.attributes.len() as u32).to_le_bytes());
        for (k, v) in &row.attributes {
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
    }
    buf
}

fn decode_snapshot(payload: &[u8]) -> Result<Snapshot, ScdDurableError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let year = i32::from_le_bytes(r.take(4)?.try_into().unwrap());
    let month = r.u32()?;
    let period =
        Instant::from_ym(year, month).map_err(|e| Reader::bad(&format!("bad period: {e}")))?;
    let nrows = r.u32()?;
    let mut rows = Vec::with_capacity(nrows as usize);
    for _ in 0..nrows {
        let member = r.str()?;
        let parent = r.opt()?;
        let level = r.opt()?;
        let mut row = SnapshotRow::new(member, parent.as_deref());
        if let Some(level) = level {
            row = row.at_level(level);
        }
        let nattrs = r.u32()?;
        for _ in 0..nattrs {
            let k = r.str()?;
            let v = r.str()?;
            row.attributes.insert(k, v);
        }
        rows.push(row);
    }
    if r.pos != payload.len() {
        return Err(Reader::bad("trailing bytes"));
    }
    Ok(Snapshot::new(period, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<Snapshot> {
        (0..4)
            .map(|y| {
                let rows = (0..2)
                    .map(|d| SnapshotRow::new(format!("Div{d}"), None).at_level("Division"))
                    .chain((0..6).map(|m| {
                        SnapshotRow::new(format!("Dept{m}"), Some(&format!("Div{}", (m + y) % 2)))
                            .at_level("Department")
                    }));
                Snapshot::new(Instant::ym(2001 + y, 1), rows)
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mvolap_scdj_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_encoding_round_trips() {
        for s in stream() {
            let enc = encode_snapshot(&s);
            let dec = decode_snapshot(&enc).unwrap();
            assert_eq!(dec.period, s.period);
            assert_eq!(dec.rows, s.rows);
        }
    }

    #[test]
    fn journaled_scd2_recovers_to_the_loaded_state() {
        let dir = tmp("scd2");
        let stream = stream();
        let mut d: DurableScd<Scd2Dimension> = DurableScd::create(&dir, "org").unwrap();
        let base = d.io_fsyncs(); // segment-header sync from create
        for s in &stream {
            d.load(s).unwrap();
        }
        assert_eq!(d.journaled(), stream.len() as u64);
        assert_eq!(
            d.io_fsyncs() - base,
            stream.len() as u64,
            "one fsync per load"
        );
        let direct = d.dim().table().clone();
        drop(d);

        let reopened: DurableScd<Scd2Dimension> = DurableScd::open(&dir, "org").unwrap();
        assert_eq!(
            mvolap_storage::persist::table_digest(reopened.dim().table()),
            mvolap_storage::persist::table_digest(&direct),
            "replayed table must be bit-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_three_baselines_replay_through_the_same_journal_shape() {
        let stream = stream();
        let d1 = tmp("scd1");
        let d3 = tmp("scd3");
        let mut s1: DurableScd<Scd1Dimension> = DurableScd::create(&d1, "org").unwrap();
        let mut s3: DurableScd<Scd3Dimension> = DurableScd::create(&d3, "org").unwrap();
        for s in &stream {
            s1.load(s).unwrap();
            s3.load(s).unwrap();
        }
        drop(s1);
        drop(s3);
        let r1: DurableScd<Scd1Dimension> = DurableScd::open(&d1, "org").unwrap();
        let r3: DurableScd<Scd3Dimension> = DurableScd::open(&d3, "org").unwrap();
        assert_eq!(r1.journaled(), stream.len() as u64);
        // Type 1 overwrote history: the final parent is the last
        // snapshot's. Type 3 keeps previous alongside current.
        assert_eq!(
            r1.dim().parent_of("Dept1"),
            Some(format!("Div{}", (1 + 3) % 2))
        );
        assert!(r3.dim().parents_of("Dept1").is_some());
        std::fs::remove_dir_all(&d1).ok();
        std::fs::remove_dir_all(&d3).ok();
    }
}
