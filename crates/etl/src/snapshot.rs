//! Source snapshots and change detection.
//!
//! An operational system exports, each period, the current state of an
//! analysis dimension as a flat table: one row per member with its
//! parent and attributes. Diffing consecutive snapshots yields the
//! evolution events that drive the §3.2 operators. Merges and splits are
//! not inferable from two flat snapshots (a disappeared member plus two
//! new ones is ambiguous) — they arrive as explicit hints from the
//! administrator, exactly as the paper assumes knowledge about evolution
//! operations.

use std::collections::BTreeMap;

use mvolap_temporal::Instant;

/// One member row of a source snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotRow {
    /// Member business key (its name).
    pub member: String,
    /// Parent member name, if any.
    pub parent: Option<String>,
    /// Level tag (e.g. `Department`).
    pub level: Option<String>,
    /// Descriptive attributes.
    pub attributes: BTreeMap<String, String>,
}

impl SnapshotRow {
    /// A row with just a member and parent.
    pub fn new(member: impl Into<String>, parent: Option<&str>) -> Self {
        SnapshotRow {
            member: member.into(),
            parent: parent.map(str::to_owned),
            level: None,
            attributes: BTreeMap::new(),
        }
    }

    /// Sets the level tag.
    #[must_use]
    pub fn at_level(mut self, level: impl Into<String>) -> Self {
        self.level = Some(level.into());
        self
    }
}

/// A full snapshot of one dimension at one period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The period this snapshot describes.
    pub period: Instant,
    /// Member rows, keyed by member name.
    pub rows: BTreeMap<String, SnapshotRow>,
}

impl Snapshot {
    /// Builds a snapshot from rows (later duplicates win).
    pub fn new(period: Instant, rows: impl IntoIterator<Item = SnapshotRow>) -> Self {
        Snapshot {
            period,
            rows: rows.into_iter().map(|r| (r.member.clone(), r)).collect(),
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// A change detected between two consecutive snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChangeEvent {
    /// A member appeared.
    Created {
        /// The new member's row.
        row: SnapshotRow,
    },
    /// A member disappeared.
    Deleted {
        /// The member name.
        member: String,
    },
    /// A member's parent changed (a reclassification).
    Reclassified {
        /// The member name.
        member: String,
        /// Previous parent.
        old_parent: Option<String>,
        /// New parent.
        new_parent: Option<String>,
    },
    /// A member's attributes changed (a transformation).
    AttributesChanged {
        /// The member name.
        member: String,
        /// The full new attribute map.
        attributes: BTreeMap<String, String>,
    },
}

/// Diffs two consecutive snapshots into change events, in deterministic
/// (member-name) order within each phase: deletions first, then **all**
/// creations, then reclassifications and attribute changes — so a member
/// reclassified under a division created in the same snapshot loads
/// cleanly.
pub fn diff(prev: &Snapshot, next: &Snapshot) -> Vec<ChangeEvent> {
    let mut events = Vec::new();
    for member in prev.rows.keys() {
        if !next.rows.contains_key(member) {
            events.push(ChangeEvent::Deleted {
                member: member.clone(),
            });
        }
    }
    for (member, row) in &next.rows {
        if !prev.rows.contains_key(member) {
            events.push(ChangeEvent::Created { row: row.clone() });
        }
    }
    for (member, row) in &next.rows {
        let Some(old) = prev.rows.get(member) else {
            continue;
        };
        if old.parent != row.parent {
            events.push(ChangeEvent::Reclassified {
                member: member.clone(),
                old_parent: old.parent.clone(),
                new_parent: row.parent.clone(),
            });
        }
        if old.attributes != row.attributes {
            events.push(ChangeEvent::AttributesChanged {
                member: member.clone(),
                attributes: row.attributes.clone(),
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn org_2001() -> Snapshot {
        Snapshot::new(
            Instant::ym(2001, 1),
            [
                SnapshotRow::new("Sales", None).at_level("Division"),
                SnapshotRow::new("R&D", None).at_level("Division"),
                SnapshotRow::new("Dpt.Jones", Some("Sales")).at_level("Department"),
                SnapshotRow::new("Dpt.Smith", Some("Sales")).at_level("Department"),
                SnapshotRow::new("Dpt.Brian", Some("R&D")).at_level("Department"),
            ],
        )
    }

    fn org_2002() -> Snapshot {
        Snapshot::new(
            Instant::ym(2002, 1),
            [
                SnapshotRow::new("Sales", None).at_level("Division"),
                SnapshotRow::new("R&D", None).at_level("Division"),
                SnapshotRow::new("Dpt.Jones", Some("Sales")).at_level("Department"),
                SnapshotRow::new("Dpt.Smith", Some("R&D")).at_level("Department"),
                SnapshotRow::new("Dpt.Brian", Some("R&D")).at_level("Department"),
            ],
        )
    }

    #[test]
    fn identical_snapshots_yield_no_events() {
        assert!(diff(&org_2001(), &org_2001()).is_empty());
    }

    #[test]
    fn smith_reclassification_detected() {
        // The paper's 2001 -> 2002 evolution (Tables 1 -> 2).
        let events = diff(&org_2001(), &org_2002());
        assert_eq!(
            events,
            vec![ChangeEvent::Reclassified {
                member: "Dpt.Smith".into(),
                old_parent: Some("Sales".into()),
                new_parent: Some("R&D".into()),
            }]
        );
    }

    #[test]
    fn create_and_delete_detected() {
        let mut next = org_2001();
        next.rows.remove("Dpt.Jones");
        next.rows.insert(
            "Dpt.New".into(),
            SnapshotRow::new("Dpt.New", Some("Sales")).at_level("Department"),
        );
        let events = diff(&org_2001(), &next);
        assert_eq!(events.len(), 2);
        assert!(matches!(&events[0], ChangeEvent::Deleted { member } if member == "Dpt.Jones"));
        assert!(matches!(&events[1], ChangeEvent::Created { row } if row.member == "Dpt.New"));
    }

    #[test]
    fn attribute_changes_detected() {
        let mut next = org_2001();
        next.rows
            .get_mut("Dpt.Brian")
            .unwrap()
            .attributes
            .insert("leader".into(), "Brian Jr".into());
        let events = diff(&org_2001(), &next);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(&events[0], ChangeEvent::AttributesChanged { member, .. } if member == "Dpt.Brian")
        );
    }

    #[test]
    fn snapshot_len() {
        assert_eq!(org_2001().len(), 5);
        assert!(!org_2001().is_empty());
    }
}
