//! [`EvolutionTarget`]: the load destination abstraction.
//!
//! The loaders in [`crate::load`] apply detected changes through the
//! §3.2 evolution operators. Historically they took a bare
//! [`Tmd`]; with the durability subsystem the same change stream must
//! be able to land in a [`DurableTmd`], where every operator is
//! journaled to the write-ahead log before it is applied. This trait
//! abstracts the destination so each loader is written once:
//!
//! * [`Tmd`] — in-memory application, errors are [`CoreError`];
//! * [`DurableTmd`] — journal-then-apply, errors are
//!   [`DurableError`] (which subsumes `CoreError` via `From`).

use std::collections::BTreeMap;

use mvolap_core::evolution::{self, MergeSource, SplitPart};
use mvolap_core::{CoreError, DimensionId, MemberVersionId, Tmd};
use mvolap_durable::{DurableError, DurableTmd, FactRow};
use mvolap_temporal::Instant;

/// A destination the ETL loaders can apply evolution operators and fact
/// batches to.
pub trait EvolutionTarget {
    /// The error the destination raises; every model violation is a
    /// [`CoreError`] underneath.
    type Error: From<CoreError>;

    /// Read access to the current schema (name resolution, arity).
    fn schema(&self) -> &Tmd;

    /// *Creation of a member* (Insert).
    ///
    /// # Errors
    ///
    /// Evolution-operator violations; journaling failures for durable
    /// destinations.
    fn create(
        &mut self,
        dim: DimensionId,
        name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), Self::Error>;

    /// *Deletion of a member* (Exclude).
    ///
    /// # Errors
    ///
    /// As [`EvolutionTarget::create`].
    fn delete(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
    ) -> Result<(), Self::Error>;

    /// *Reclassification of a member*.
    ///
    /// # Errors
    ///
    /// As [`EvolutionTarget::create`].
    fn reclassify(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
        old_parents: &[MemberVersionId],
        new_parents: &[MemberVersionId],
    ) -> Result<(), Self::Error>;

    /// *Transformation of a member* (name/attribute change).
    ///
    /// # Errors
    ///
    /// As [`EvolutionTarget::create`].
    fn transform(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        new_name: &str,
        new_attributes: BTreeMap<String, String>,
        at: Instant,
    ) -> Result<(), Self::Error>;

    /// *Splitting of one member into n*.
    ///
    /// # Errors
    ///
    /// As [`EvolutionTarget::create`].
    fn split(
        &mut self,
        dim: DimensionId,
        source: MemberVersionId,
        parts: Vec<SplitPart>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), Self::Error>;

    /// *Merging of n members into one*.
    ///
    /// # Errors
    ///
    /// As [`EvolutionTarget::create`].
    fn merge(
        &mut self,
        dim: DimensionId,
        sources: Vec<MergeSource>,
        new_name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), Self::Error>;

    /// Appends a batch of validated fact rows (one WAL record for
    /// durable destinations).
    ///
    /// # Errors
    ///
    /// Fact-validation failures (Definition 5); journaling failures for
    /// durable destinations.
    fn append_facts(&mut self, rows: Vec<FactRow>) -> Result<(), Self::Error>;
}

impl EvolutionTarget for Tmd {
    type Error = CoreError;

    fn schema(&self) -> &Tmd {
        self
    }

    fn create(
        &mut self,
        dim: DimensionId,
        name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), CoreError> {
        evolution::create(self, dim, name, level, at, parents).map(|_| ())
    }

    fn delete(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
    ) -> Result<(), CoreError> {
        evolution::delete(self, dim, id, at).map(|_| ())
    }

    fn reclassify(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
        old_parents: &[MemberVersionId],
        new_parents: &[MemberVersionId],
    ) -> Result<(), CoreError> {
        evolution::reclassify(self, dim, id, at, old_parents, new_parents).map(|_| ())
    }

    fn transform(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        new_name: &str,
        new_attributes: BTreeMap<String, String>,
        at: Instant,
    ) -> Result<(), CoreError> {
        evolution::transform(self, dim, id, new_name, new_attributes, at).map(|_| ())
    }

    fn split(
        &mut self,
        dim: DimensionId,
        source: MemberVersionId,
        parts: Vec<SplitPart>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), CoreError> {
        evolution::split(self, dim, source, &parts, at, parents).map(|_| ())
    }

    fn merge(
        &mut self,
        dim: DimensionId,
        sources: Vec<MergeSource>,
        new_name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), CoreError> {
        evolution::merge(self, dim, &sources, new_name, level, at, parents).map(|_| ())
    }

    fn append_facts(&mut self, rows: Vec<FactRow>) -> Result<(), CoreError> {
        for r in &rows {
            self.add_fact(&r.coords, r.at, &r.values)?;
        }
        Ok(())
    }
}

impl EvolutionTarget for DurableTmd {
    type Error = DurableError;

    fn schema(&self) -> &Tmd {
        DurableTmd::schema(self)
    }

    fn create(
        &mut self,
        dim: DimensionId,
        name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), DurableError> {
        self.create_member(dim, name, level, at, parents)
            .map(|_| ())
    }

    fn delete(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
    ) -> Result<(), DurableError> {
        self.delete_member(dim, id, at).map(|_| ())
    }

    fn reclassify(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
        old_parents: &[MemberVersionId],
        new_parents: &[MemberVersionId],
    ) -> Result<(), DurableError> {
        self.reclassify_member(dim, id, at, old_parents, new_parents)
            .map(|_| ())
    }

    fn transform(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        new_name: &str,
        new_attributes: BTreeMap<String, String>,
        at: Instant,
    ) -> Result<(), DurableError> {
        self.transform_member(dim, id, new_name, new_attributes, at)
            .map(|_| ())
    }

    fn split(
        &mut self,
        dim: DimensionId,
        source: MemberVersionId,
        parts: Vec<SplitPart>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), DurableError> {
        self.split_member(dim, source, parts, at, parents)
            .map(|_| ())
    }

    fn merge(
        &mut self,
        dim: DimensionId,
        sources: Vec<MergeSource>,
        new_name: &str,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<(), DurableError> {
        self.merge_members(dim, sources, new_name, level, at, parents)
            .map(|_| ())
    }

    fn append_facts(&mut self, rows: Vec<FactRow>) -> Result<(), DurableError> {
        DurableTmd::append_facts(self, rows).map(|_| ())
    }
}

/// One source fact, addressed by member names (the form operational
/// sources deliver).
#[derive(Debug, Clone, PartialEq)]
pub struct FactRecord {
    /// One member name per dimension.
    pub coords: Vec<String>,
    /// Fact time.
    pub at: Instant,
    /// One value per measure.
    pub values: Vec<f64>,
}

/// Loads a batch of source facts into `target`: every name is resolved
/// to the member version valid at the row's own time, then the whole
/// batch lands in one [`EvolutionTarget::append_facts`] call — one WAL
/// record on a durable destination. Returns the number of rows loaded.
///
/// # Errors
///
/// Name-resolution failures, fact validation (Definition 5), and the
/// destination's journaling errors. Nothing is applied on error: the
/// batch resolves fully before any row lands.
pub fn load_facts<T: EvolutionTarget>(
    target: &mut T,
    records: &[FactRecord],
) -> Result<usize, T::Error> {
    let mut rows = Vec::with_capacity(records.len());
    {
        let tmd = target.schema();
        let dims = tmd.dimensions();
        for record in records {
            if record.coords.len() != dims.len() {
                return Err(CoreError::CoordinateArityMismatch {
                    expected: dims.len(),
                    actual: record.coords.len(),
                }
                .into());
            }
            let mut coords = Vec::with_capacity(record.coords.len());
            for (dim, name) in dims.iter().zip(&record.coords) {
                coords.push(dim.version_named_at(name, record.at)?.id);
            }
            rows.push(FactRow {
                coords,
                at: record.at,
                values: record.values.clone(),
            });
        }
    }
    let n = rows.len();
    target.append_facts(rows)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_core::case_study;

    #[test]
    fn load_facts_resolves_names_per_row_time() {
        let mut tmd = case_study::case_study().tmd;
        let before = tmd.facts().len();
        let n = load_facts(
            &mut tmd,
            &[
                FactRecord {
                    coords: vec!["Dpt.Jones".into()],
                    at: Instant::ym(2002, 6),
                    values: vec![12.0],
                },
                FactRecord {
                    coords: vec!["Dpt.Bill".into()],
                    at: Instant::ym(2003, 6),
                    values: vec![34.0],
                },
            ],
        )
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(tmd.facts().len(), before + 2);
    }

    #[test]
    fn load_facts_is_all_or_nothing_on_resolution_failure() {
        let mut tmd = case_study::case_study().tmd;
        let before = tmd.facts().len();
        // Jones is gone by 2003: resolution fails, nothing loads.
        let err = load_facts(
            &mut tmd,
            &[
                FactRecord {
                    coords: vec!["Dpt.Brian".into()],
                    at: Instant::ym(2003, 6),
                    values: vec![1.0],
                },
                FactRecord {
                    coords: vec!["Dpt.Jones".into()],
                    at: Instant::ym(2003, 6),
                    values: vec![2.0],
                },
            ],
        );
        assert!(err.is_err());
        assert_eq!(tmd.facts().len(), before);
    }

    #[test]
    fn durable_target_journals_the_loaders_operations() {
        let dir = std::env::temp_dir().join(format!("mvolap_etl_tgt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cs = case_study::case_study();
        let mut store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
        let lsn0 = store.wal_position();
        load_facts(
            &mut store,
            &[FactRecord {
                coords: vec!["Dpt.Brian".into()],
                at: Instant::ym(2003, 6),
                values: vec![9.0],
            }],
        )
        .unwrap();
        assert_eq!(store.wal_position(), lsn0 + 1, "one batch, one record");
        let n = store.schema().facts().len();
        drop(store);
        let reopened = DurableTmd::open(&dir).unwrap();
        assert_eq!(reopened.schema().facts().len(), n);
        std::fs::remove_dir_all(&dir).ok();
    }
}
