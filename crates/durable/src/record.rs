//! Logical WAL records — one per evolution operator, plus fact batches.
//!
//! A record captures the *intent* of one §3.2 evolution operation
//! (insert/create, exclude/delete, transform, merge, split, reclassify,
//! associate, confidence change, and the complex increase / decrease /
//! partial-annexation compilations) or one batch of fact-table appends.
//! Replay goes through the **validated construction API**
//! (`mvolap_core::evolution` and `Tmd::add_fact`), exactly like
//! `core::persist` does on load: a tampered or corrupted log can never
//! yield a cyclic `D(t)`, dangling edges or non-leaf facts — replay
//! refuses instead.
//!
//! Payloads are space-separated escaped tokens (same escaping idiom as
//! the snapshot format: `\\`, `\s`, `\t`, `\n`, `\e`, empty = `\0`),
//! with count-prefixed lists so the grammar needs no lookahead. Floats
//! use Rust's shortest round-tripping `Display`, so mapping factors and
//! measures survive bit-exactly.

use std::collections::BTreeMap;

use mvolap_core::evolution::{self, BasicOp, MergeSource, SplitPart};
use mvolap_core::{
    Confidence, CoreError, DimensionId, MappingFunction, MappingRelationship, MeasureMapping,
    MemberVersionId, Tmd,
};
use mvolap_temporal::Instant;

use crate::error::DurableError;

/// One row of a fact batch.
#[derive(Debug, Clone, PartialEq)]
pub struct FactRow {
    /// Leaf coordinates, one per dimension.
    pub coords: Vec<MemberVersionId>,
    /// Fact time.
    pub at: Instant,
    /// One value per measure.
    pub values: Vec<f64>,
}

/// A logical write-ahead-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Store bootstrap: the seed schema, serialised with
    /// `core::persist::write_tmd`. Always the first record of a fresh
    /// store, so recovery works even before the first checkpoint.
    Bootstrap {
        /// `write_tmd` bytes of the seed schema.
        snapshot: Vec<u8>,
    },
    /// *Creation of a dimension member* (Insert).
    Create {
        /// Target dimension.
        dim: DimensionId,
        /// New member name.
        name: String,
        /// Optional explicit level.
        level: Option<String>,
        /// Creation instant.
        at: Instant,
        /// Parents to wire under.
        parents: Vec<MemberVersionId>,
    },
    /// *Deletion of a dimension member* (Exclude).
    Delete {
        /// Target dimension.
        dim: DimensionId,
        /// The member version to exclude.
        id: MemberVersionId,
        /// Exclusion instant.
        at: Instant,
    },
    /// *Transformation of a member* (rename / attribute change).
    Transform {
        /// Target dimension.
        dim: DimensionId,
        /// The member version to transform.
        id: MemberVersionId,
        /// Successor name.
        new_name: String,
        /// Successor attributes.
        new_attributes: BTreeMap<String, String>,
        /// Transformation instant.
        at: Instant,
    },
    /// *Merging of n members into one*.
    Merge {
        /// Target dimension.
        dim: DimensionId,
        /// Sources with their per-measure mappings.
        sources: Vec<MergeSource>,
        /// Name of the merged member.
        new_name: String,
        /// Optional level of the merged member.
        level: Option<String>,
        /// Merge instant.
        at: Instant,
        /// Parents of the merged member.
        parents: Vec<MemberVersionId>,
    },
    /// *Splitting of one member into n*.
    Split {
        /// Target dimension.
        dim: DimensionId,
        /// The member version being split.
        source: MemberVersionId,
        /// Parts with their per-measure mappings.
        parts: Vec<SplitPart>,
        /// Split instant.
        at: Instant,
        /// Parents of the parts.
        parents: Vec<MemberVersionId>,
    },
    /// *Reclassification of a member*.
    Reclassify {
        /// Target dimension.
        dim: DimensionId,
        /// The member version to reclassify.
        id: MemberVersionId,
        /// Reclassification instant.
        at: Instant,
        /// Parents to detach.
        old_parents: Vec<MemberVersionId>,
        /// Parents to attach.
        new_parents: Vec<MemberVersionId>,
    },
    /// Bare *Associate*: registers a mapping relationship.
    Associate {
        /// Target dimension.
        dim: DimensionId,
        /// The mapping relationship.
        rel: MappingRelationship,
    },
    /// *Confidence change*: revises an existing mapping relationship.
    Confidence {
        /// Target dimension.
        dim: DimensionId,
        /// Source endpoint.
        from: MemberVersionId,
        /// Target endpoint.
        to: MemberVersionId,
        /// Revised forward mappings.
        forward: Vec<MeasureMapping>,
        /// Revised backward mappings.
        backward: Vec<MeasureMapping>,
    },
    /// Complex *Increase*.
    Increase {
        /// Target dimension.
        dim: DimensionId,
        /// The member version growing.
        id: MemberVersionId,
        /// Successor name.
        new_name: String,
        /// Growth factor.
        factor: f64,
        /// Instant.
        at: Instant,
        /// Parents of the successor.
        parents: Vec<MemberVersionId>,
    },
    /// Complex *Decrease*.
    Decrease {
        /// Target dimension.
        dim: DimensionId,
        /// The member version shrinking.
        id: MemberVersionId,
        /// Successor name.
        new_name: String,
        /// Kept fraction in `(0, 1]`.
        kept: f64,
        /// Instant.
        at: Instant,
        /// Parents of the successor.
        parents: Vec<MemberVersionId>,
    },
    /// A batch of fact-table appends.
    FactBatch {
        /// The rows, in append order.
        rows: Vec<FactRow>,
    },
    /// A cluster membership change, journaled and quorum-committed
    /// like any commit. Single-change: one add *or* one remove. The
    /// new voting-group size takes effect exactly at this record's
    /// LSN. The record is a no-op for the schema — it evolves the
    /// *replication group*, not the multidimensional structure — but
    /// riding the WAL gives it the same durability, ordering and
    /// recovery guarantees as every evolution operator.
    Reconfig {
        /// Epoch the reconfiguration was issued under.
        epoch: u64,
        /// `true` = add `member`, `false` = remove it.
        add: bool,
        /// The member id joining or leaving.
        member: String,
        /// The member's read-server address (empty for removals).
        addr: String,
    },
}

// ---------------------------------------------------------------------
// Token encoding
// ---------------------------------------------------------------------

pub(crate) fn esc(s: &str) -> String {
    if s.is_empty() {
        return "\\0".to_owned();
    }
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unesc(s: &str) -> Result<String, DurableError> {
    if s == "\\0" {
        return Ok(String::new());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            other => {
                return Err(DurableError::corrupt(format!(
                    "bad token escape \\{other:?}"
                )))
            }
        }
    }
    Ok(out)
}

fn enc_instant(t: Instant) -> String {
    if t.is_forever() {
        "now".to_owned()
    } else if t.is_dawn() {
        "dawn".to_owned()
    } else {
        t.tick().to_string()
    }
}

fn enc_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else if x == f64::INFINITY {
        "inf".to_owned()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_owned()
    } else {
        format!("{x}")
    }
}

fn enc_mm(m: &MeasureMapping) -> String {
    let f = match m.func {
        MappingFunction::Identity => "id".to_owned(),
        MappingFunction::Unknown => "u".to_owned(),
        MappingFunction::Scale(k) => format!("s{}", enc_f64(k)),
        MappingFunction::Affine { a, b } => format!("a{}:{}", enc_f64(a), enc_f64(b)),
    };
    format!("{f}@{}", m.confidence.code())
}

/// A space-joined token writer.
#[derive(Default)]
struct Enc {
    out: String,
}

impl Enc {
    fn raw(&mut self, token: impl std::fmt::Display) -> &mut Self {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        let _ = std::fmt::Write::write_fmt(&mut self.out, format_args!("{token}"));
        self
    }

    fn text(&mut self, s: &str) -> &mut Self {
        let escaped = esc(s);
        self.raw(escaped)
    }

    fn level(&mut self, level: &Option<String>) -> &mut Self {
        match level {
            Some(l) => {
                self.raw(1);
                self.text(l)
            }
            None => self.raw(0),
        }
    }

    fn ids(&mut self, ids: &[MemberVersionId]) -> &mut Self {
        self.raw(ids.len());
        for id in ids {
            self.raw(id.0);
        }
        self
    }

    fn mappings(&mut self, ms: &[MeasureMapping]) -> &mut Self {
        self.raw(ms.len());
        for m in ms {
            self.raw(enc_mm(m));
        }
        self
    }
}

/// A token reader with positional error reporting.
struct Dec<'a> {
    toks: std::str::Split<'a, char>,
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(s: &'a str) -> Self {
        Dec {
            toks: s.split(' '),
            at: 0,
        }
    }

    fn next(&mut self) -> Result<&'a str, DurableError> {
        self.at += 1;
        self.toks
            .next()
            .ok_or_else(|| DurableError::corrupt(format!("record truncated at token {}", self.at)))
    }

    fn bad(&self, what: &str, tok: &str) -> DurableError {
        DurableError::corrupt(format!("bad {what} `{tok}` at token {}", self.at))
    }

    fn text(&mut self) -> Result<String, DurableError> {
        let t = self.next()?;
        unesc(t)
    }

    fn u32(&mut self) -> Result<u32, DurableError> {
        let t = self.next()?;
        t.parse().map_err(|_| self.bad("integer", t))
    }

    fn u64(&mut self) -> Result<u64, DurableError> {
        let t = self.next()?;
        t.parse().map_err(|_| self.bad("integer", t))
    }

    fn usize(&mut self) -> Result<usize, DurableError> {
        let t = self.next()?;
        let n: usize = t.parse().map_err(|_| self.bad("count", t))?;
        if n > 1 << 24 {
            return Err(self.bad("count (too large)", t));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, DurableError> {
        let t = self.next()?;
        match t {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            _ => t.parse().map_err(|_| self.bad("float", t)),
        }
    }

    fn instant(&mut self) -> Result<Instant, DurableError> {
        let t = self.next()?;
        match t {
            "now" => Ok(Instant::FOREVER),
            "dawn" => Ok(Instant::DAWN),
            _ => t
                .parse::<i64>()
                .map(Instant::at)
                .map_err(|_| self.bad("instant", t)),
        }
    }

    fn dim(&mut self) -> Result<DimensionId, DurableError> {
        Ok(DimensionId(self.u32()?))
    }

    fn id(&mut self) -> Result<MemberVersionId, DurableError> {
        Ok(MemberVersionId(self.u32()?))
    }

    fn level(&mut self) -> Result<Option<String>, DurableError> {
        match self.u32()? {
            0 => Ok(None),
            1 => Ok(Some(self.text()?)),
            n => Err(self.bad("level flag", &n.to_string())),
        }
    }

    fn ids(&mut self) -> Result<Vec<MemberVersionId>, DurableError> {
        let n = self.usize()?;
        (0..n).map(|_| self.id()).collect()
    }

    fn mapping(&mut self) -> Result<MeasureMapping, DurableError> {
        let t = self.next()?;
        let (f, cf) = t
            .rsplit_once('@')
            .ok_or_else(|| self.bad("mapping (missing @cf)", t))?;
        let confidence = match cf {
            "sd" => Confidence::Source,
            "em" => Confidence::Exact,
            "am" => Confidence::Approx,
            "uk" => Confidence::Unknown,
            _ => return Err(self.bad("confidence", cf)),
        };
        let parse_f = |s: &str| -> Option<f64> {
            match s {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => s.parse().ok(),
            }
        };
        let func = if f == "id" {
            MappingFunction::Identity
        } else if f == "u" {
            MappingFunction::Unknown
        } else if let Some(k) = f.strip_prefix('s') {
            MappingFunction::Scale(parse_f(k).ok_or_else(|| self.bad("scale", k))?)
        } else if let Some(ab) = f.strip_prefix('a') {
            let (a, b) = ab.split_once(':').ok_or_else(|| self.bad("affine", ab))?;
            MappingFunction::Affine {
                a: parse_f(a).ok_or_else(|| self.bad("affine a", a))?,
                b: parse_f(b).ok_or_else(|| self.bad("affine b", b))?,
            }
        } else {
            return Err(self.bad("mapping function", f));
        };
        Ok(MeasureMapping { func, confidence })
    }

    fn mappings(&mut self) -> Result<Vec<MeasureMapping>, DurableError> {
        let n = self.usize()?;
        (0..n).map(|_| self.mapping()).collect()
    }

    fn done(mut self) -> Result<(), DurableError> {
        match self.toks.next() {
            None => Ok(()),
            Some(t) => Err(DurableError::corrupt(format!(
                "trailing token `{t}` after record"
            ))),
        }
    }
}

impl WalRecord {
    /// The record's operator tag (for logs and stats).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Bootstrap { .. } => "bootstrap",
            WalRecord::Create { .. } => "create",
            WalRecord::Delete { .. } => "delete",
            WalRecord::Transform { .. } => "transform",
            WalRecord::Merge { .. } => "merge",
            WalRecord::Split { .. } => "split",
            WalRecord::Reclassify { .. } => "reclassify",
            WalRecord::Associate { .. } => "associate",
            WalRecord::Confidence { .. } => "confidence",
            WalRecord::Increase { .. } => "increase",
            WalRecord::Decrease { .. } => "decrease",
            WalRecord::FactBatch { .. } => "facts",
            WalRecord::Reconfig { .. } => "reconfig",
        }
    }

    /// Serialises the record into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        match self {
            WalRecord::Bootstrap { snapshot } => {
                // The snapshot is an opaque blob; frame it after a single
                // tag token so the payload needs no escaping.
                let mut out = b"bootstrap ".to_vec();
                out.extend_from_slice(snapshot);
                return out;
            }
            WalRecord::Create {
                dim,
                name,
                level,
                at,
                parents,
            } => {
                e.raw("create").raw(dim.0).text(name).level(level);
                e.raw(enc_instant(*at)).ids(parents);
            }
            WalRecord::Delete { dim, id, at } => {
                e.raw("delete").raw(dim.0).raw(id.0).raw(enc_instant(*at));
            }
            WalRecord::Transform {
                dim,
                id,
                new_name,
                new_attributes,
                at,
            } => {
                e.raw("transform").raw(dim.0).raw(id.0).text(new_name);
                e.raw(enc_instant(*at)).raw(new_attributes.len());
                for (k, v) in new_attributes {
                    e.text(k).text(v);
                }
            }
            WalRecord::Merge {
                dim,
                sources,
                new_name,
                level,
                at,
                parents,
            } => {
                e.raw("merge").raw(dim.0).text(new_name).level(level);
                e.raw(enc_instant(*at)).ids(parents).raw(sources.len());
                for s in sources {
                    e.raw(s.id.0).mappings(&s.forward).mappings(&s.backward);
                }
            }
            WalRecord::Split {
                dim,
                source,
                parts,
                at,
                parents,
            } => {
                e.raw("split")
                    .raw(dim.0)
                    .raw(source.0)
                    .raw(enc_instant(*at));
                e.ids(parents).raw(parts.len());
                for p in parts {
                    e.text(&p.name).mappings(&p.forward).mappings(&p.backward);
                }
            }
            WalRecord::Reclassify {
                dim,
                id,
                at,
                old_parents,
                new_parents,
            } => {
                e.raw("reclassify").raw(dim.0).raw(id.0);
                e.raw(enc_instant(*at)).ids(old_parents).ids(new_parents);
            }
            WalRecord::Associate { dim, rel } => {
                e.raw("associate").raw(dim.0).raw(rel.from.0).raw(rel.to.0);
                e.mappings(&rel.forward).mappings(&rel.backward);
            }
            WalRecord::Confidence {
                dim,
                from,
                to,
                forward,
                backward,
            } => {
                e.raw("confidence").raw(dim.0).raw(from.0).raw(to.0);
                e.mappings(forward).mappings(backward);
            }
            WalRecord::Increase {
                dim,
                id,
                new_name,
                factor,
                at,
                parents,
            } => {
                e.raw("increase").raw(dim.0).raw(id.0).text(new_name);
                e.raw(enc_f64(*factor)).raw(enc_instant(*at)).ids(parents);
            }
            WalRecord::Decrease {
                dim,
                id,
                new_name,
                kept,
                at,
                parents,
            } => {
                e.raw("decrease").raw(dim.0).raw(id.0).text(new_name);
                e.raw(enc_f64(*kept)).raw(enc_instant(*at)).ids(parents);
            }
            WalRecord::FactBatch { rows } => {
                e.raw("facts").raw(rows.len());
                for r in rows {
                    e.raw(enc_instant(r.at)).raw(r.coords.len());
                    for c in &r.coords {
                        e.raw(c.0);
                    }
                    e.raw(r.values.len());
                    for v in &r.values {
                        e.raw(enc_f64(*v));
                    }
                }
            }
            WalRecord::Reconfig {
                epoch,
                add,
                member,
                addr,
            } => {
                e.raw("reconfig")
                    .raw(epoch)
                    .raw(if *add { "add" } else { "remove" });
                e.text(member).text(addr);
            }
        }
        e.out.into_bytes()
    }

    /// Deserialises a record from a frame payload.
    ///
    /// # Errors
    ///
    /// [`DurableError::Corrupt`] on any malformed payload.
    pub fn decode(payload: &[u8]) -> Result<WalRecord, DurableError> {
        if let Some(snapshot) = payload.strip_prefix(b"bootstrap ") {
            return Ok(WalRecord::Bootstrap {
                snapshot: snapshot.to_vec(),
            });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| DurableError::corrupt("record payload is not UTF-8"))?;
        let mut d = Dec::new(text);
        let tag = d.next()?;
        let record = match tag {
            "create" => WalRecord::Create {
                dim: d.dim()?,
                name: d.text()?,
                level: d.level()?,
                at: d.instant()?,
                parents: d.ids()?,
            },
            "delete" => WalRecord::Delete {
                dim: d.dim()?,
                id: d.id()?,
                at: d.instant()?,
            },
            "transform" => {
                let dim = d.dim()?;
                let id = d.id()?;
                let new_name = d.text()?;
                let at = d.instant()?;
                let n = d.usize()?;
                let mut new_attributes = BTreeMap::new();
                for _ in 0..n {
                    let k = d.text()?;
                    let v = d.text()?;
                    new_attributes.insert(k, v);
                }
                WalRecord::Transform {
                    dim,
                    id,
                    new_name,
                    new_attributes,
                    at,
                }
            }
            "merge" => {
                let dim = d.dim()?;
                let new_name = d.text()?;
                let level = d.level()?;
                let at = d.instant()?;
                let parents = d.ids()?;
                let n = d.usize()?;
                let mut sources = Vec::with_capacity(n);
                for _ in 0..n {
                    sources.push(MergeSource {
                        id: d.id()?,
                        forward: d.mappings()?,
                        backward: d.mappings()?,
                    });
                }
                WalRecord::Merge {
                    dim,
                    sources,
                    new_name,
                    level,
                    at,
                    parents,
                }
            }
            "split" => {
                let dim = d.dim()?;
                let source = d.id()?;
                let at = d.instant()?;
                let parents = d.ids()?;
                let n = d.usize()?;
                let mut parts = Vec::with_capacity(n);
                for _ in 0..n {
                    parts.push(SplitPart {
                        name: d.text()?,
                        forward: d.mappings()?,
                        backward: d.mappings()?,
                    });
                }
                WalRecord::Split {
                    dim,
                    source,
                    parts,
                    at,
                    parents,
                }
            }
            "reclassify" => WalRecord::Reclassify {
                dim: d.dim()?,
                id: d.id()?,
                at: d.instant()?,
                old_parents: d.ids()?,
                new_parents: d.ids()?,
            },
            "associate" => WalRecord::Associate {
                dim: d.dim()?,
                rel: MappingRelationship {
                    from: d.id()?,
                    to: d.id()?,
                    forward: d.mappings()?,
                    backward: d.mappings()?,
                },
            },
            "confidence" => WalRecord::Confidence {
                dim: d.dim()?,
                from: d.id()?,
                to: d.id()?,
                forward: d.mappings()?,
                backward: d.mappings()?,
            },
            "increase" => WalRecord::Increase {
                dim: d.dim()?,
                id: d.id()?,
                new_name: d.text()?,
                factor: d.f64()?,
                at: d.instant()?,
                parents: d.ids()?,
            },
            "decrease" => WalRecord::Decrease {
                dim: d.dim()?,
                id: d.id()?,
                new_name: d.text()?,
                kept: d.f64()?,
                at: d.instant()?,
                parents: d.ids()?,
            },
            "facts" => {
                let n = d.usize()?;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let at = d.instant()?;
                    let nc = d.usize()?;
                    let coords = (0..nc).map(|_| d.id()).collect::<Result<Vec<_>, _>>()?;
                    let nv = d.usize()?;
                    let values = (0..nv).map(|_| d.f64()).collect::<Result<Vec<_>, _>>()?;
                    rows.push(FactRow { coords, at, values });
                }
                WalRecord::FactBatch { rows }
            }
            "reconfig" => {
                let epoch = d.u64()?;
                let add = match d.next()? {
                    "add" => true,
                    "remove" => false,
                    t => return Err(d.bad("reconfig direction", t)),
                };
                WalRecord::Reconfig {
                    epoch,
                    add,
                    member: d.text()?,
                    addr: d.text()?,
                }
            }
            other => return Err(DurableError::corrupt(format!("unknown record `{other}`"))),
        };
        d.done()?;
        Ok(record)
    }

    /// Applies the record to a schema through the validated construction
    /// API. Replay of a committed record on the state it was journaled
    /// against always succeeds; on any other state the model validation
    /// rejects inconsistencies instead of constructing them.
    ///
    /// # Errors
    ///
    /// Propagates the evolution-operator / fact-validation errors.
    pub fn apply(&self, tmd: &mut Tmd) -> Result<(), CoreError> {
        match self {
            WalRecord::Bootstrap { snapshot } => {
                if !tmd.dimensions().is_empty()
                    || !tmd.measures().is_empty()
                    || !tmd.facts().is_empty()
                {
                    return Err(CoreError::InvalidEvolution(
                        "bootstrap record replayed onto a non-empty schema".into(),
                    ));
                }
                *tmd = mvolap_core::persist::read_tmd(&mut snapshot.as_slice())
                    .map_err(|e| CoreError::InvalidEvolution(format!("bad bootstrap: {e}")))?;
                Ok(())
            }
            WalRecord::Create {
                dim,
                name,
                level,
                at,
                parents,
            } => {
                evolution::create(tmd, *dim, name.clone(), level.clone(), *at, parents).map(|_| ())
            }
            WalRecord::Delete { dim, id, at } => evolution::delete(tmd, *dim, *id, *at).map(|_| ()),
            WalRecord::Transform {
                dim,
                id,
                new_name,
                new_attributes,
                at,
            } => evolution::transform(
                tmd,
                *dim,
                *id,
                new_name.clone(),
                new_attributes.clone(),
                *at,
            )
            .map(|_| ()),
            WalRecord::Merge {
                dim,
                sources,
                new_name,
                level,
                at,
                parents,
            } => evolution::merge(
                tmd,
                *dim,
                sources,
                new_name.clone(),
                level.clone(),
                *at,
                parents,
            )
            .map(|_| ()),
            WalRecord::Split {
                dim,
                source,
                parts,
                at,
                parents,
            } => evolution::split(tmd, *dim, *source, parts, *at, parents).map(|_| ()),
            WalRecord::Reclassify {
                dim,
                id,
                at,
                old_parents,
                new_parents,
            } => evolution::reclassify(tmd, *dim, *id, *at, old_parents, new_parents).map(|_| ()),
            WalRecord::Associate { dim, rel } => BasicOp::Associate {
                dim: *dim,
                rel: rel.clone(),
            }
            .apply(tmd)
            .map(|_| ()),
            WalRecord::Confidence {
                dim,
                from,
                to,
                forward,
                backward,
            } => evolution::change_confidence(
                tmd,
                *dim,
                *from,
                *to,
                forward.clone(),
                backward.clone(),
            ),
            WalRecord::Increase {
                dim,
                id,
                new_name,
                factor,
                at,
                parents,
            } => evolution::increase(tmd, *dim, *id, new_name.clone(), *factor, *at, parents)
                .map(|_| ()),
            WalRecord::Decrease {
                dim,
                id,
                new_name,
                kept,
                at,
                parents,
            } => evolution::decrease(tmd, *dim, *id, new_name.clone(), *kept, *at, parents)
                .map(|_| ()),
            WalRecord::FactBatch { rows } => {
                for r in rows {
                    tmd.add_fact(&r.coords, r.at, &r.values)?;
                }
                Ok(())
            }
            // Membership changes do not touch the schema; the group
            // layer reads them back out of the log (and the membership
            // sidecar) instead.
            WalRecord::Reconfig { .. } => Ok(()),
        }
    }

    /// Read-only validation of a fact batch against the current schema:
    /// the exact Definition 5 checks `Tmd::add_fact` performs, without
    /// mutating anything. Lets the hot load path journal-then-apply
    /// without cloning the schema.
    ///
    /// # Errors
    ///
    /// The same errors `Tmd::add_fact` would raise for the first
    /// offending row.
    pub fn validate_facts(tmd: &Tmd, rows: &[FactRow]) -> Result<(), CoreError> {
        let dims = tmd.dimensions();
        let measures = tmd.measures().len();
        for r in rows {
            if r.coords.len() != dims.len() {
                return Err(CoreError::CoordinateArityMismatch {
                    expected: dims.len(),
                    actual: r.coords.len(),
                });
            }
            if r.values.len() != measures {
                return Err(CoreError::MeasureArityMismatch {
                    expected: measures,
                    actual: r.values.len(),
                });
            }
            for (dim, &c) in dims.iter().zip(&r.coords) {
                dim.version(c)?;
                if !dim.is_valid_at(c, r.at) {
                    return Err(CoreError::CoordinateNotValid {
                        dimension: dim.name().to_owned(),
                        id: c,
                        at: r.at,
                    });
                }
                if !dim.is_leaf_at(c, r.at) {
                    return Err(CoreError::CoordinateNotLeaf {
                        dimension: dim.name().to_owned(),
                        id: c,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: &WalRecord) -> WalRecord {
        let payload = r.encode();
        let back = WalRecord::decode(&payload).expect("decode");
        // Structural equality via re-encoding (records hold f64s and
        // foreign types without PartialEq).
        assert_eq!(back.encode(), payload);
        back
    }

    #[test]
    fn all_record_kinds_roundtrip() {
        let dim = DimensionId(0);
        let mm = MeasureMapping::approx_scale(0.4);
        let records = vec![
            WalRecord::Create {
                dim,
                name: "Dpt. = weird \\name".into(),
                level: Some("Department level".into()),
                at: Instant::ym(2003, 1),
                parents: vec![MemberVersionId(1), MemberVersionId(2)],
            },
            WalRecord::Create {
                dim,
                name: String::new(),
                level: None,
                at: Instant::DAWN,
                parents: vec![],
            },
            WalRecord::Delete {
                dim,
                id: MemberVersionId(7),
                at: Instant::ym(2004, 12),
            },
            WalRecord::Transform {
                dim,
                id: MemberVersionId(3),
                new_name: "renamed dept".into(),
                new_attributes: [("budget".to_owned(), "hi gh".to_owned())].into(),
                at: Instant::ym(2002, 6),
            },
            WalRecord::Merge {
                dim,
                sources: vec![
                    MergeSource::with_share(MemberVersionId(1), 0.5, 2),
                    MergeSource::with_unknown_share(MemberVersionId(2), 2),
                ],
                new_name: "Merged".into(),
                level: None,
                at: Instant::ym(2003, 1),
                parents: vec![MemberVersionId(0)],
            },
            WalRecord::Split {
                dim,
                source: MemberVersionId(4),
                parts: vec![
                    SplitPart::proportional("A", 0.4, 1),
                    SplitPart::proportional("B", 0.6, 1),
                ],
                at: Instant::ym(2003, 1),
                parents: vec![],
            },
            WalRecord::Reclassify {
                dim,
                id: MemberVersionId(5),
                at: Instant::ym(2002, 1),
                old_parents: vec![MemberVersionId(0)],
                new_parents: vec![MemberVersionId(9)],
            },
            WalRecord::Associate {
                dim,
                rel: MappingRelationship {
                    from: MemberVersionId(1),
                    to: MemberVersionId(2),
                    forward: vec![mm, MeasureMapping::UNKNOWN],
                    backward: vec![
                        MeasureMapping::EXACT_IDENTITY,
                        MeasureMapping {
                            func: MappingFunction::Affine { a: 0.1, b: -2.5 },
                            confidence: Confidence::Source,
                        },
                    ],
                },
            },
            WalRecord::Confidence {
                dim,
                from: MemberVersionId(1),
                to: MemberVersionId(2),
                forward: vec![mm],
                backward: vec![MeasureMapping::approx_scale(1.0 / 3.0)],
            },
            WalRecord::Increase {
                dim,
                id: MemberVersionId(3),
                new_name: "Bigger".into(),
                factor: 1.25,
                at: Instant::ym(2004, 2),
                parents: vec![MemberVersionId(0)],
            },
            WalRecord::Decrease {
                dim,
                id: MemberVersionId(3),
                new_name: "Smaller".into(),
                kept: 0.75,
                at: Instant::ym(2004, 3),
                parents: vec![MemberVersionId(0)],
            },
            WalRecord::FactBatch {
                rows: vec![
                    FactRow {
                        coords: vec![MemberVersionId(1)],
                        at: Instant::ym(2001, 6),
                        values: vec![100.0, -0.0],
                    },
                    FactRow {
                        coords: vec![MemberVersionId(2)],
                        at: Instant::ym(2001, 7),
                        values: vec![0.1 + 0.2, 1e-300],
                    },
                ],
            },
            WalRecord::Bootstrap {
                snapshot: b"mvolap-tmd v1\nschema t month\n".to_vec(),
            },
            WalRecord::Reconfig {
                epoch: 7,
                add: true,
                member: "m3 with space".into(),
                addr: "127.0.0.1:9001".into(),
            },
            WalRecord::Reconfig {
                epoch: u64::MAX,
                add: false,
                member: "m1".into(),
                addr: String::new(),
            },
        ];
        for r in &records {
            roundtrip(r);
        }
    }

    #[test]
    fn fact_values_roundtrip_bit_exact() {
        let r = WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![MemberVersionId(0)],
                at: Instant::at(42),
                values: vec![0.1, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE / 2.0, 1e300],
            }],
        };
        match roundtrip(&r) {
            WalRecord::FactBatch { rows } => {
                let orig = match &r {
                    WalRecord::FactBatch { rows } => &rows[0].values,
                    _ => unreachable!(),
                };
                for (a, b) in orig.iter().zip(&rows[0].values) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(b"").is_err());
        assert!(WalRecord::decode(b"nonsense 1 2 3").is_err());
        assert!(WalRecord::decode(b"delete 0 zero 5").is_err());
        assert!(WalRecord::decode(b"delete 0 1").is_err()); // truncated
        assert!(WalRecord::decode(b"delete 0 1 5 extra").is_err()); // trailing
        assert!(WalRecord::decode(&[0xFF, 0xFE, b' ']).is_err()); // not UTF-8
                                                                  // A count field claiming 2^30 parents must not allocate.
        assert!(WalRecord::decode(b"create 0 x 0 5 1073741824").is_err());
        // Reconfig: bad direction, truncation, trailing garbage.
        assert!(WalRecord::decode(b"reconfig 3 sideways m1 \\0").is_err());
        assert!(WalRecord::decode(b"reconfig 3 add m1").is_err());
        assert!(WalRecord::decode(b"reconfig 3 add m1 \\0 extra").is_err());
        assert!(WalRecord::decode(b"reconfig -1 add m1 \\0").is_err());
    }

    #[test]
    fn reconfig_applies_as_a_schema_noop() {
        let mut tmd = Tmd::new("empty", Default::default());
        let before = format!("{tmd:?}");
        WalRecord::Reconfig {
            epoch: 1,
            add: true,
            member: "m3".into(),
            addr: "127.0.0.1:0".into(),
        }
        .apply(&mut tmd)
        .expect("reconfig is a schema no-op");
        assert_eq!(format!("{tmd:?}"), before);
    }
}
