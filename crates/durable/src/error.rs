//! Errors of the durability subsystem.

use mvolap_core::persist::PersistError;
use mvolap_core::CoreError;

/// Errors raised by the WAL, checkpointing and recovery machinery.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A deterministic fault-injection crash point fired (testing only).
    Injected {
        /// The I/O primitive that was interrupted.
        op: &'static str,
    },
    /// The store hit an I/O or injected fault earlier and its in-memory
    /// state can no longer be trusted; reopen the directory to recover.
    Poisoned,
    /// On-disk state is corrupt beyond torn-tail repair.
    Corrupt {
        /// What was found, and where.
        message: String,
    },
    /// The directory holds no recoverable store (no checkpoint and no
    /// bootstrap record survived).
    NoStore,
    /// A tail was requested from an LSN that checkpointing has already
    /// pruned out of the log. The caller (typically a replication
    /// follower) must re-bootstrap from a checkpoint snapshot instead of
    /// replaying frames.
    Pruned {
        /// Base LSN of the oldest segment still on disk.
        oldest_available: u64,
    },
    /// A commit was journaled and fsynced locally but did not reach a
    /// replication quorum within its deadline. The record is durable on
    /// this node and may still replicate later; the caller must not
    /// treat it as majority-committed.
    Unreplicated {
        /// LSN of the locally durable record.
        lsn: u64,
        /// Nodes (including this one) known to have synced it.
        acked: usize,
    },
    /// A membership reconfiguration was requested while a previous one
    /// is still in flight (journaled but not yet completed). Membership
    /// changes are single-change: the pending add must promote (or the
    /// pending remove drain) before the next one is accepted.
    ReconfigInFlight {
        /// LSN of the pending reconfiguration record.
        lsn: u64,
        /// The member the pending reconfiguration concerns.
        member: String,
    },
    /// Checkpoint (de)serialisation failure.
    Persist(PersistError),
    /// Replaying a record violated the model — validated replay refused
    /// to construct an inconsistent schema.
    Core(CoreError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "i/o error: {e}"),
            DurableError::Injected { op } => write!(f, "injected crash during {op}"),
            DurableError::Poisoned => {
                write!(f, "store poisoned by an earlier fault; reopen to recover")
            }
            DurableError::Corrupt { message } => write!(f, "corrupt store: {message}"),
            DurableError::NoStore => write!(f, "directory holds no recoverable store"),
            DurableError::Pruned { oldest_available } => write!(
                f,
                "requested LSN precedes the log (oldest available: {oldest_available}); \
                 re-bootstrap from a checkpoint"
            ),
            DurableError::Unreplicated { lsn, acked } => write!(
                f,
                "commit {lsn} is locally durable but unreplicated: \
                 {acked} node(s) synced it, no quorum before the deadline"
            ),
            DurableError::ReconfigInFlight { lsn, member } => write!(
                f,
                "a reconfiguration is already in flight (member `{member}` \
                 since LSN {lsn}); one membership change at a time"
            ),
            DurableError::Persist(e) => write!(f, "checkpoint error: {e}"),
            DurableError::Core(e) => write!(f, "replay error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<PersistError> for DurableError {
    fn from(e: PersistError) -> Self {
        DurableError::Persist(e)
    }
}

impl From<CoreError> for DurableError {
    fn from(e: CoreError) -> Self {
        DurableError::Core(e)
    }
}

impl DurableError {
    pub(crate) fn corrupt(message: impl Into<String>) -> Self {
        DurableError::Corrupt {
            message: message.into(),
        }
    }

    /// Whether the error came from the I/O layer (real or injected) —
    /// the class of failures after which the in-memory store must be
    /// considered out of sync with disk.
    pub fn is_io_class(&self) -> bool {
        matches!(
            self,
            DurableError::Io(_) | DurableError::Injected { .. } | DurableError::Poisoned
        )
    }
}
