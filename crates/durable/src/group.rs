//! Group commit: concurrent committers share fsyncs.
//!
//! [`DurableTmd::apply`] fsyncs once per record — correct, but a server
//! with many concurrent writers would pay one disk flush per commit.
//! [`GroupCommit`] wraps a store behind a shareable handle and batches:
//! each committer appends its record unsynced (under the store lock),
//! then the first committer to reach the sync gate becomes the **sync
//! leader**. The leader holds the batch open for at most `hold_ms`
//! (measured against a [`TimeSource`], so tests drive it with a manual
//! timeline), letting late arrivals append, then performs a **single**
//! fsync covering every record appended so far and wakes all waiters.
//!
//! The durability contract is unchanged: [`GroupCommit::commit`] only
//! returns `Ok` once the record's fsync completed, so an acknowledged
//! commit survives a crash. Records appended but not yet synced sit in
//! the same window as a classic WAL's unacknowledged tail — recovery
//! may surface any prefix of them (see the batched crash sweep in
//! [`crate::fault`]).
//!
//! A failed sync poisons the underlying store; the failure is sticky
//! and reported to every committer waiting on that batch and to all
//! later commits, exactly like [`DurableTmd`]'s own poisoning.
//!
//! # Quorum watermark
//!
//! When the store is the primary of a replication group, local
//! durability is not the whole contract: a majority of the group must
//! hold the record before a crash of any single node can no longer
//! lose it. [`GroupCommit`] therefore tracks a second watermark,
//! [`GroupCommit::quorum_lsn`]: the highest position synced by at
//! least ⌈group/2⌉+1 of the group's nodes, counting the primary's own
//! [`GroupCommit::synced_lsn`] as one vote and one durably-synced
//! position per member, reported via [`GroupCommit::member_synced`]
//! (the replication supervisor calls it as acks arrive).
//! [`GroupCommit::commit_replicated`] waits for this second watermark
//! and fails with the typed [`DurableError::Unreplicated`] when the
//! quorum does not form within its deadline — the record is then still
//! locally durable, just not majority-committed. With a group of one
//! (no quorum configured) the two watermarks coincide.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use crate::clock::TimeSource;
use crate::error::DurableError;
use crate::record::WalRecord;
use crate::store::DurableTmd;

/// Tuning for [`GroupCommit`].
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Maximum time the sync leader holds a batch open for joiners, in
    /// milliseconds of `time`. `0` syncs immediately (batching then
    /// only happens when commits pile up behind an in-flight sync).
    pub hold_ms: u64,
    /// Timeline the hold window is measured against. With a manual
    /// source the window only closes when the harness advances the
    /// counter past it — deterministic batching for tests.
    pub time: TimeSource,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            hold_ms: 2,
            time: TimeSource::default(),
        }
    }
}

#[derive(Debug)]
struct SyncState {
    /// Every record with `lsn < synced_lsn` is durable on disk.
    synced_lsn: u64,
    /// Every record with `lsn < quorum_lsn` is durable on a majority
    /// of the replication group. Tracks `synced_lsn` when the group
    /// has a single node.
    quorum_lsn: u64,
    /// Highest durably-synced position reported by each remote member.
    members: BTreeMap<String, u64>,
    /// Voting nodes in the replication group, this primary included,
    /// **as of the current quorum watermark**. `<= 1` disables quorum
    /// tracking. Scheduled changes live in `resizes` until the
    /// watermark reaches them.
    group_size: usize,
    /// Non-voting learners: their positions are tracked (so promotion
    /// can compare against the watermark) but never counted toward a
    /// majority until [`GroupCommit::promote_voter`].
    learners: BTreeSet<String>,
    /// Removed members: late acks from these ids are fenced (ignored)
    /// so a stale pump can never resurrect a dropped voter.
    banned: BTreeSet<String>,
    /// Scheduled group resizes `(lsn, new_size)`, ascending by LSN:
    /// each takes effect exactly when the quorum watermark reaches its
    /// LSN — the reconfig record itself is already judged under the
    /// new size.
    resizes: Vec<(u64, usize)>,
    /// Whether some committer currently owns the sync gate.
    leader: bool,
    /// Sticky failure: a sync failed and poisoned the store.
    failed: bool,
}

impl SyncState {
    /// Recomputes the quorum watermark from the primary's own synced
    /// position plus every *voting* member's reported position: the
    /// `required`-th largest position is held by a majority.
    ///
    /// Scheduled resizes make the advance stepwise: the watermark may
    /// only cross a resize's LSN under the majority rule in force
    /// *below* it, then the new size takes over for everything at and
    /// past that LSN — so each record is always judged against the
    /// committed group as of its own position.
    fn recompute_quorum(&mut self) {
        loop {
            while let Some(&(lsn, size)) = self.resizes.first() {
                if lsn <= self.quorum_lsn {
                    self.group_size = size;
                    self.resizes.remove(0);
                } else {
                    break;
                }
            }
            let bound = self.resizes.first().map_or(u64::MAX, |&(lsn, _)| lsn);
            let covered = if self.group_size <= 1 {
                self.quorum_lsn.max(self.synced_lsn)
            } else {
                let required = self.group_size / 2 + 1;
                let mut positions: Vec<u64> = Vec::with_capacity(self.members.len() + 1);
                positions.push(self.synced_lsn);
                positions.extend(
                    self.members
                        .iter()
                        .filter(|(name, _)| !self.learners.contains(*name))
                        .map(|(_, &p)| p),
                );
                positions.sort_unstable_by(|a, b| b.cmp(a));
                if positions.len() >= required {
                    self.quorum_lsn.max(positions[required - 1])
                } else {
                    self.quorum_lsn
                }
            };
            let target = covered.min(bound);
            if target <= self.quorum_lsn {
                return;
            }
            self.quorum_lsn = target;
            // Crossing `bound` folds that resize in on the next pass
            // and the new size may cover further (or stall sooner).
        }
    }

    /// The group size at the head of the log: the current size with
    /// every scheduled resize applied. Commits and elections happening
    /// *now* are judged against this.
    fn head_size(&self) -> usize {
        self.resizes.last().map_or(self.group_size, |&(_, s)| s)
    }
}

#[derive(Debug)]
struct Inner {
    store: RwLock<DurableTmd>,
    sync: Mutex<SyncState>,
    arrivals: Condvar,
    cfg: GroupConfig,
}

/// A shareable group-commit handle over a [`DurableTmd`]. Clones share
/// the store; every clone may commit, query and checkpoint
/// concurrently.
#[derive(Debug, Clone)]
pub struct GroupCommit {
    inner: Arc<Inner>,
}

/// Locks a mutex, ignoring std's panic-poisoning: the protected state
/// is kept consistent by construction (the store has its own logical
/// poisoning), and a server must keep serving after a worker panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn read_lock<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl GroupCommit {
    /// Wraps `store` for concurrent group-committed use.
    pub fn new(store: DurableTmd, cfg: GroupConfig) -> GroupCommit {
        let synced_lsn = store.wal_position();
        GroupCommit {
            inner: Arc::new(Inner {
                store: RwLock::new(store),
                sync: Mutex::new(SyncState {
                    synced_lsn,
                    quorum_lsn: synced_lsn,
                    members: BTreeMap::new(),
                    group_size: 1,
                    learners: BTreeSet::new(),
                    banned: BTreeSet::new(),
                    resizes: Vec::new(),
                    leader: false,
                    failed: false,
                }),
                arrivals: Condvar::new(),
                cfg,
            }),
        }
    }

    /// Commits one record: validate + journal (unsynced) + apply under
    /// the store lock, then wait until a shared fsync covers it. `Ok`
    /// means the record is durable.
    ///
    /// # Errors
    ///
    /// [`DurableError::Core`] when the record is invalid (nothing
    /// journaled); I/O-class errors when journaling or the covering
    /// sync failed (the store is then poisoned).
    pub fn commit(&self, record: WalRecord) -> Result<u64, DurableError> {
        let lsn = write_lock(&self.inner.store).apply_unsynced(record)?;
        self.await_sync(lsn)?;
        Ok(lsn)
    }

    /// Commits one record like [`GroupCommit::commit`], then waits
    /// until the record is additionally covered by the quorum
    /// watermark — durable on a majority of the replication group, the
    /// primary included. A replication supervisor must be feeding
    /// member positions in via [`GroupCommit::member_synced`]
    /// concurrently, or the wait can only end in a timeout.
    ///
    /// With no quorum configured ([`GroupCommit::quorum_size`] `<= 1`)
    /// this is exactly [`GroupCommit::commit`].
    ///
    /// # Errors
    ///
    /// Everything [`GroupCommit::commit`] raises, plus the typed
    /// [`DurableError::Unreplicated`] when the quorum does not form
    /// within `timeout_ms` of the configured timeline — the record is
    /// then locally durable but not majority-committed.
    pub fn commit_replicated(
        &self,
        record: WalRecord,
        timeout_ms: u64,
    ) -> Result<u64, DurableError> {
        let lsn = self.commit(record)?;
        self.await_quorum(lsn, timeout_ms)?;
        Ok(lsn)
    }

    /// Waits until the quorum watermark passes `lsn`, with a deadline
    /// on the configured timeline.
    fn await_quorum(&self, lsn: u64, timeout_ms: u64) -> Result<(), DurableError> {
        let deadline = self.inner.cfg.time.now_ms() + timeout_ms;
        let mut st = lock(&self.inner.sync);
        loop {
            if st.quorum_lsn > lsn {
                return Ok(());
            }
            if st.failed {
                return Err(DurableError::Poisoned);
            }
            let now = self.inner.cfg.time.now_ms();
            if now >= deadline {
                // The local sync already covers `lsn` (commit returned),
                // so this node counts as one ack. Learners don't vote.
                let acked = 1 + st
                    .members
                    .iter()
                    .filter(|(name, &p)| p > lsn && !st.learners.contains(*name))
                    .count();
                return Err(DurableError::Unreplicated { lsn, acked });
            }
            // Park until an ack arrives ([`GroupCommit::member_synced`]
            // notifies) or the deadline nears. A manual timeline only
            // advances when the harness does, so its waits stay short
            // slices; on the system clock the wait can cover the whole
            // remaining window — the pump's notify ends it early.
            let slice = match self.inner.cfg.time {
                TimeSource::System => Duration::from_millis((deadline - now).min(50)),
                TimeSource::Manual(_) => Duration::from_millis(5),
            };
            st = self
                .inner
                .arrivals
                .wait_timeout(st, slice)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Declares the replication group's size (voting nodes, this
    /// primary included), resets which members are known and clears any
    /// learner, ban or scheduled-resize state — the assembly-time
    /// baseline. `<= 1` disables quorum tracking and snaps the quorum
    /// watermark back to the local one.
    pub fn configure_quorum(&self, group_size: usize) {
        let mut st = lock(&self.inner.sync);
        st.group_size = group_size;
        st.learners.clear();
        st.banned.clear();
        st.resizes.clear();
        st.recompute_quorum();
        self.inner.arrivals.notify_all();
    }

    /// Schedules a voting-group resize that takes effect exactly at
    /// `lsn` — the LSN of the quorum-committed reconfiguration record.
    /// The watermark advances up to `lsn` under the majority rule in
    /// force below it, then `group_size` governs everything at and
    /// past `lsn`. Resizes must be scheduled in LSN order (membership
    /// changes are single-change, so there is at most one in flight).
    pub fn configure_quorum_at(&self, lsn: u64, group_size: usize) {
        let mut st = lock(&self.inner.sync);
        st.resizes.retain(|&(l, _)| l < lsn);
        st.resizes.push((lsn, group_size));
        st.recompute_quorum();
        self.inner.arrivals.notify_all();
    }

    /// Registers `member` as a non-voting learner: its synced position
    /// is tracked (so catch-up can be measured against the watermark)
    /// but never counted toward a majority until
    /// [`GroupCommit::promote_voter`]. Lifts any earlier ban — a
    /// re-added member starts over as a learner.
    pub fn add_learner(&self, member: &str) {
        let mut st = lock(&self.inner.sync);
        st.banned.remove(member);
        st.learners.insert(member.to_string());
        st.members.entry(member.to_string()).or_insert(0);
    }

    /// Promotes a learner to voter: from here its acks count toward
    /// the majority and it may stand in elections. Returns `false` if
    /// `member` was not a learner (already a voter, or unknown).
    pub fn promote_voter(&self, member: &str) -> bool {
        let mut st = lock(&self.inner.sync);
        if !st.learners.remove(member) {
            return false;
        }
        st.recompute_quorum();
        self.inner.arrivals.notify_all();
        true
    }

    /// Whether `member` is currently a non-voting learner.
    pub fn is_learner(&self, member: &str) -> bool {
        lock(&self.inner.sync).learners.contains(member)
    }

    /// Removes `member` from the group entirely: its reported position
    /// is dropped (so the quorum watermark recomputes over the
    /// remaining voters immediately) and late acks from the id are
    /// fenced — a removed member can never count toward a majority
    /// again unless it is re-added via [`GroupCommit::add_learner`].
    pub fn ban_member(&self, member: &str) {
        let mut st = lock(&self.inner.sync);
        st.members.remove(member);
        st.learners.remove(member);
        st.banned.insert(member.to_string());
        st.recompute_quorum();
        self.inner.arrivals.notify_all();
    }

    /// Records that member `member` has durably synced every record
    /// below `synced_lsn` (monotonic — stale reports are ignored) and
    /// advances the quorum watermark if a majority now covers more.
    /// Acks from banned (removed) members are fenced.
    pub fn member_synced(&self, member: &str, synced_lsn: u64) {
        let mut st = lock(&self.inner.sync);
        if st.banned.contains(member) {
            return;
        }
        let slot = st.members.entry(member.to_string()).or_insert(0);
        if synced_lsn <= *slot {
            return;
        }
        *slot = synced_lsn;
        st.recompute_quorum();
        self.inner.arrivals.notify_all();
    }

    /// Drops a member's reported position (it left the group or is
    /// being rebuilt); the watermark itself never moves backwards.
    pub fn forget_member(&self, member: &str) {
        lock(&self.inner.sync).members.remove(member);
    }

    /// The pump-facing tail cursor: parks until the **local** durable
    /// watermark passes `lsn` (`synced_lsn() > lsn` — there is at
    /// least one newly fsynced frame to ship), the store is poisoned,
    /// or `timeout` of wall-clock time elapses. Returns the current
    /// `synced_lsn` either way; the caller distinguishes progress from
    /// a timeout by comparing against its own cursor.
    ///
    /// Every completed sync notifies the same condvar the quorum
    /// waiters park on, so a shipping thread sleeping here wakes the
    /// moment a commit's fsync lands instead of polling on an
    /// interval. The timeout is real time (not the configured
    /// [`TimeSource`]) because the waiter is a live thread that must
    /// stay responsive to shutdown — see
    /// [`GroupCommit::notify_waiters`].
    pub fn wait_synced_past(&self, lsn: u64, timeout: Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock(&self.inner.sync);
        loop {
            if st.synced_lsn > lsn || st.failed {
                return st.synced_lsn;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return st.synced_lsn;
            }
            st = self
                .inner
                .arrivals
                .wait_timeout(st, (deadline - now).min(Duration::from_millis(50)))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
    }

    /// Wakes every thread parked on this group's condvar — quorum
    /// waiters in [`GroupCommit::commit_replicated`] and shipping
    /// threads in [`GroupCommit::wait_synced_past`] — without changing
    /// any state. Shutdown and fencing call this so parked threads
    /// re-check their stop flags immediately.
    pub fn notify_waiters(&self) {
        self.inner.arrivals.notify_all();
    }

    /// First LSN **not** yet durable on a majority of the group.
    /// Equals [`GroupCommit::synced_lsn`] when no quorum is configured.
    pub fn quorum_lsn(&self) -> u64 {
        lock(&self.inner.sync).quorum_lsn
    }

    /// Voting nodes in the replication group at the head of the log
    /// (1 = quorum off): the current size with every scheduled resize
    /// applied, since commits and elections happening now are judged
    /// against it.
    pub fn quorum_size(&self) -> usize {
        lock(&self.inner.sync).head_size()
    }

    /// The group size in force at the current quorum watermark —
    /// differs from [`GroupCommit::quorum_size`] only while a
    /// scheduled resize is still ahead of the watermark.
    pub fn committed_quorum_size(&self) -> usize {
        lock(&self.inner.sync).group_size
    }

    /// Every member's last reported durably-synced position.
    pub fn member_positions(&self) -> Vec<(String, u64)> {
        lock(&self.inner.sync)
            .members
            .iter()
            .map(|(n, &p)| (n.clone(), p))
            .collect()
    }

    /// Waits until `lsn` is covered by a durable sync, becoming the
    /// sync leader if nobody else is.
    fn await_sync(&self, lsn: u64) -> Result<(), DurableError> {
        let mut st = lock(&self.inner.sync);
        loop {
            if st.synced_lsn > lsn {
                return Ok(());
            }
            if st.failed {
                return Err(DurableError::Poisoned);
            }
            if st.leader {
                // Somebody else will sync past us (or fail); wait for
                // the verdict. The timeout is a liveness backstop, not
                // a correctness device — the loop re-checks state.
                st = self
                    .inner
                    .arrivals
                    .wait_timeout(st, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
                continue;
            }
            st.leader = true;
            st = self.hold_window(st);
            drop(st);
            // Single fsync for everything appended so far. Taking the
            // store lock serialises against in-flight appends: anything
            // appended before we acquire it rides this sync.
            let synced = write_lock(&self.inner.store).sync_wal();
            let mut st = lock(&self.inner.sync);
            st.leader = false;
            match synced {
                Ok(pos) => {
                    st.synced_lsn = st.synced_lsn.max(pos);
                    st.recompute_quorum();
                    self.inner.arrivals.notify_all();
                    return Ok(());
                }
                Err(e) => {
                    st.failed = true;
                    self.inner.arrivals.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Leader-side hold: keep the batch open until `hold_ms` of the
    /// configured timeline elapsed, releasing the sync lock while
    /// waiting so joiners can enqueue.
    fn hold_window<'a>(&'a self, mut st: MutexGuard<'a, SyncState>) -> MutexGuard<'a, SyncState> {
        if self.inner.cfg.hold_ms == 0 {
            return st;
        }
        let deadline = self.inner.cfg.time.now_ms() + self.inner.cfg.hold_ms;
        while self.inner.cfg.time.now_ms() < deadline {
            // Short real-time slices: under a System source this sums
            // to ~hold_ms; under a Manual source it polls until the
            // harness advances the counter past the deadline.
            st = self
                .inner
                .arrivals
                .wait_timeout(st, Duration::from_millis(1))
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        st
    }

    /// Forces a sync now (no hold window): everything appended so far
    /// becomes durable. Shutdown calls this.
    ///
    /// # Errors
    ///
    /// I/O-class failures (the store poisons itself).
    pub fn flush(&self) -> Result<u64, DurableError> {
        let synced = write_lock(&self.inner.store).sync_wal();
        let mut st = lock(&self.inner.sync);
        match synced {
            Ok(pos) => {
                st.synced_lsn = st.synced_lsn.max(pos);
                st.recompute_quorum();
                self.inner.arrivals.notify_all();
                Ok(pos)
            }
            Err(e) => {
                st.failed = true;
                self.inner.arrivals.notify_all();
                Err(e)
            }
        }
    }

    /// Runs `f` with shared read access to the store (queries,
    /// replication taps) — readers run concurrently with each other
    /// and only block while a commit holds the write lock. Writes must
    /// go through [`GroupCommit::commit`] or
    /// [`GroupCommit::with_store_mut`].
    pub fn with_store<R>(&self, f: impl FnOnce(&DurableTmd) -> R) -> R {
        f(&read_lock(&self.inner.store))
    }

    /// Runs `f` with exclusive access to the store — checkpoint drivers
    /// and other maintenance that needs `&mut DurableTmd`. Do not
    /// append unsynced records here; their acknowledgement protocol
    /// lives in [`GroupCommit::commit`].
    pub fn with_store_mut<R>(&self, f: impl FnOnce(&mut DurableTmd) -> R) -> R {
        f(&mut write_lock(&self.inner.store))
    }

    /// The LSN the next committed record will receive.
    pub fn wal_position(&self) -> u64 {
        read_lock(&self.inner.store).wal_position()
    }

    /// First LSN **not** yet covered by a durable sync.
    pub fn synced_lsn(&self) -> u64 {
        lock(&self.inner.sync).synced_lsn
    }

    /// Number of file fsyncs the underlying store performed — the
    /// batching assertion hook (see [`crate::io::Io::fsyncs`]).
    pub fn fsyncs(&self) -> u64 {
        read_lock(&self.inner.store).io_fsyncs()
    }

    /// Unwraps the handle back into the store when this is the last
    /// clone; returns `Err(self)` otherwise.
    ///
    /// # Errors
    ///
    /// The handle itself, when other clones are still alive.
    pub fn try_into_store(self) -> Result<DurableTmd, GroupCommit> {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner
                .store
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)),
            Err(inner) => Err(GroupCommit { inner }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FactRow;
    use crate::store::Options;
    use mvolap_core::{MeasureDef, MemberVersionSpec, TemporalDimension, Tmd};
    use mvolap_temporal::{Granularity, Instant, Interval};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvolap_group_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn seed() -> (Tmd, mvolap_core::MemberVersionId) {
        let mut tmd = Tmd::new("group", Granularity::Month);
        let mut d = TemporalDimension::new("Org");
        let leaf = d.add_version(
            MemberVersionSpec::named("Leaf").at_level("Department"),
            Interval::since(Instant::ym(2001, 1)),
        );
        tmd.add_dimension(d).unwrap();
        tmd.add_measure(MeasureDef::summed("Amount")).unwrap();
        (tmd, leaf)
    }

    #[test]
    fn concurrent_commits_share_fsyncs_and_survive_reopen() {
        let dir = tmp("share");
        let (tmd, leaf) = seed();
        let store = DurableTmd::create_with(
            &dir,
            tmd,
            Options {
                policy: crate::store::CheckpointPolicy::manual(),
                ..Options::default()
            },
            crate::io::Io::plain(),
        )
        .unwrap();
        let time = TimeSource::manual(0);
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 40,
                time: time.clone(),
            },
        );
        let before = g.fsyncs();
        let base = g.wal_position();

        let committers = 8;
        let mut handles = Vec::new();
        for i in 0..committers {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                g.commit(WalRecord::FactBatch {
                    rows: vec![FactRow {
                        coords: vec![leaf],
                        at: Instant::ym(2001, 2),
                        values: vec![i as f64],
                    }],
                })
                .unwrap()
            }));
        }
        // Wait until every committer appended, then close the hold
        // window on the manual timeline: one fsync covers all eight.
        while g.wal_position() < base + committers {
            std::thread::sleep(Duration::from_millis(1));
        }
        time.advance(1_000);
        let lsns: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut sorted = lsns.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (base..base + committers).collect::<Vec<_>>());

        let spent = g.fsyncs() - before;
        assert!(
            spent < committers,
            "8 commits should share fsyncs, spent {spent}"
        );
        assert!(g.synced_lsn() > sorted[sorted.len() - 1]);

        drop(g);
        let reopened = DurableTmd::open(&dir).unwrap();
        assert_eq!(reopened.wal_position(), base + committers);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_sync_is_sticky_for_later_commits() {
        let dir = tmp("sticky");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        // Re-open with a plan that crashes on the fsync of the first
        // group sync: the append (write) succeeds, the sync fails.
        drop(store);
        let store =
            DurableTmd::open_with(&dir, Options::default(), crate::store::faulty_io(1, 7)).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::default(),
            },
        );
        let rec = WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![1.0],
            }],
        };
        let err = g.commit(rec.clone()).unwrap_err();
        assert!(err.is_io_class(), "expected an I/O-class failure: {err}");
        // Sticky: the next commit is refused as poisoned.
        match g.commit(rec) {
            Err(DurableError::Poisoned) => {}
            other => panic!("expected Poisoned, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quorum_watermark_requires_majority_acks() {
        let dir = tmp("quorum");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::manual(0),
            },
        );
        let rec = |v: f64| WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![v],
            }],
        };

        // Group of one: the two watermarks coincide.
        let lsn = g.commit_replicated(rec(0.0), 0).unwrap();
        assert_eq!(g.quorum_lsn(), g.synced_lsn());

        // Group of three: local sync alone is one vote of the two
        // required, so the watermark stalls and the deadline (already
        // expired on the manual timeline) reports Unreplicated.
        g.configure_quorum(3);
        let stalled = g.quorum_lsn();
        match g.commit_replicated(rec(1.0), 0) {
            Err(DurableError::Unreplicated { lsn, acked }) => {
                assert_eq!(acked, 1, "only the local sync covers {lsn}");
            }
            other => panic!("expected Unreplicated, got {other:?}"),
        }
        assert_eq!(g.quorum_lsn(), stalled);

        // One member ack forms the 2-of-3 majority up to its position;
        // stale re-reports are ignored, a second member changes nothing
        // the majority doesn't already cover.
        let head = g.synced_lsn();
        g.member_synced("a", head);
        assert_eq!(g.quorum_lsn(), head);
        g.member_synced("a", lsn);
        assert_eq!(g.quorum_lsn(), head, "stale ack must not regress");
        g.member_synced("b", head);
        assert_eq!(g.quorum_lsn(), head);
        assert_eq!(
            g.member_positions(),
            vec![("a".to_string(), head), ("b".to_string(), head)]
        );

        // With a member already past the head, commit_replicated
        // succeeds as soon as the local sync lands (2 of 3).
        g.member_synced("a", u64::MAX);
        g.commit_replicated(rec(2.0), 0).unwrap();
        assert!(g.quorum_lsn() > lsn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quorum_resize_takes_effect_at_its_lsn_and_learners_dont_vote() {
        let dir = tmp("resize");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::manual(0),
            },
        );
        let rec = |v: f64| WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![v],
            }],
        };

        // 3-voter group with one member fully caught up: watermark at
        // the head.
        g.configure_quorum(3);
        let l1 = g.commit(rec(0.0)).unwrap();
        g.member_synced("a", l1 + 1);
        assert_eq!(g.quorum_lsn(), l1 + 1);

        // Schedule a grow-to-4 at the head (the reconfig record's LSN)
        // with the joiner as a learner: the head size changes now, the
        // committed size only once the watermark passes the record.
        let head = g.synced_lsn();
        g.configure_quorum_at(head, 4);
        g.add_learner("c");
        assert_eq!(g.quorum_size(), 4);

        // The record at the resize LSN is judged under the NEW size:
        // 3 of 4 needed, and the learner's ack must not count.
        let l2 = g.commit(rec(1.0)).unwrap();
        assert_eq!(l2, head);
        assert_eq!(g.committed_quorum_size(), 4, "resize folded at its LSN");
        assert_eq!(g.quorum_lsn(), head, "2 of 4 is not a majority");
        g.member_synced("c", l2 + 1);
        assert_eq!(g.quorum_lsn(), head, "a learner's ack must not count");
        assert!(g.is_learner("c"));

        // Promotion makes the learner's (already tracked) position
        // count immediately: primary + a? no — primary, c and a's old
        // ack give 3 of 4 once a re-acks the head.
        assert!(g.promote_voter("c"));
        assert!(!g.promote_voter("c"), "second promote is a no-op");
        g.member_synced("a", l2 + 1);
        assert!(g.quorum_lsn() > l2, "3 of 4 voters past the record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_node_grow_requires_promoted_joiner() {
        let dir = tmp("grow1");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::manual(0),
            },
        );
        let rec = WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![1.0],
            }],
        };
        // Group of one growing to two: the single-node rule may carry
        // the watermark up to the resize LSN but no further — past it,
        // 2 of 2 are required and the learner doesn't count yet.
        let head = g.synced_lsn();
        g.configure_quorum_at(head, 2);
        g.add_learner("x");
        let l = g.commit(rec).unwrap();
        assert_eq!(l, head);
        assert_eq!(g.quorum_lsn(), head, "capped at the resize LSN");
        g.member_synced("x", l + 1);
        assert_eq!(g.quorum_lsn(), head, "learner ack fenced from quorum");
        g.promote_voter("x");
        assert!(g.quorum_lsn() > l, "both voters past the record");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ban_member_fences_late_acks_and_recomputes() {
        let dir = tmp("ban");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::manual(0),
            },
        );
        let rec = |v: f64| WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![v],
            }],
        };
        g.configure_quorum(3);
        let l1 = g.commit(rec(0.0)).unwrap();
        g.member_synced("a", l1 + 1);
        g.member_synced("b", l1 + 1);
        assert_eq!(g.quorum_lsn(), l1 + 1);

        // Remove `a`: shrink to 2 at the next record's LSN and ban the
        // id. Its position is gone and late acks are ignored.
        let head = g.synced_lsn();
        g.configure_quorum_at(head, 2);
        g.ban_member("a");
        assert!(!g.member_positions().iter().any(|(n, _)| n == "a"));
        let l2 = g.commit(rec(1.0)).unwrap();
        g.member_synced("a", u64::MAX);
        assert!(
            !g.member_positions().iter().any(|(n, _)| n == "a"),
            "a banned member's late ack must be fenced"
        );
        assert_eq!(g.quorum_lsn(), head, "b has not acked the record yet");
        g.member_synced("b", l2 + 1);
        assert!(g.quorum_lsn() > l2, "2 of 2 remaining voters");

        // Re-adding the id starts it over as a learner.
        g.add_learner("a");
        assert!(g.is_learner("a"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wait_synced_past_wakes_on_sync_and_times_out_idle() {
        let dir = tmp("waitpast");
        let (tmd, leaf) = seed();
        let store =
            DurableTmd::create_with(&dir, tmd, Options::default(), crate::io::Io::plain()).unwrap();
        let g = GroupCommit::new(
            store,
            GroupConfig {
                hold_ms: 0,
                time: TimeSource::System,
            },
        );
        let rec = |v: f64| WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![leaf],
                at: Instant::ym(2001, 2),
                values: vec![v],
            }],
        };

        // Already past: returns immediately with the watermark.
        let lsn = g.commit(rec(0.0)).unwrap();
        assert_eq!(g.wait_synced_past(lsn, Duration::from_secs(5)), lsn + 1);

        // Nothing new: the timeout expires and the cursor is unmoved.
        let head = g.synced_lsn();
        assert_eq!(g.wait_synced_past(head, Duration::from_millis(10)), head);

        // Parked waiter wakes when a concurrent commit's fsync lands —
        // the pump's no-polling path.
        let waiter = g.clone();
        let t = std::thread::spawn(move || waiter.wait_synced_past(head, Duration::from_secs(30)));
        g.commit(rec(1.0)).unwrap();
        let seen = t.join().unwrap();
        assert!(
            seen > head,
            "waiter saw watermark {seen}, expected > {head}"
        );

        // notify_waiters wakes a parked waiter without state change; it
        // re-checks and keeps waiting until its real deadline.
        let waiter = g.clone();
        let cur = g.synced_lsn();
        let t = std::thread::spawn(move || waiter.wait_synced_past(cur, Duration::from_millis(50)));
        g.notify_waiters();
        assert_eq!(t.join().unwrap(), cur);
        std::fs::remove_dir_all(&dir).ok();
    }
}
