//! The I/O layer every durable write goes through, with deterministic
//! fault injection.
//!
//! Each primitive (create, write, fsync, rename, truncate, unlink,
//! directory sync) is one *crash point*: an [`Io`] carrying a
//! [`FaultPlan`] performs the first `crash_after` primitives normally
//! and then simulates a crash — a `write` cuts off after a
//! deterministically chosen prefix of its bytes (a torn write), every
//! other primitive fails before taking effect. The op counter is
//! deterministic for a fixed operation sequence, so a harness can first
//! run a workload fault-free to count the crash points and then replay
//! it once per point.
//!
//! Reads are deliberately *not* crash points: recovery is read-only up
//! to tail truncation, and re-running it is idempotent.

use std::fs::File;
use std::io::Write as _;
use std::path::Path;

use mvolap_prng::Rng;

use crate::error::DurableError;

/// A deterministic crash schedule: the store crashes on its
/// `crash_after`-th I/O primitive (0-based).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    remaining: u64,
    rng: Rng,
}

impl FaultPlan {
    /// Crash on the `ops`-th I/O primitive; `seed` drives the torn-write
    /// cut position.
    pub fn crash_after(ops: u64, seed: u64) -> Self {
        FaultPlan {
            remaining: ops,
            rng: Rng::seed_from_u64(seed ^ ops.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Counts one step of whatever the plan is attached to (an I/O
    /// primitive, a replication transport hop, …); `true` means the
    /// fault fires *now*. Once fired, every subsequent step fires too —
    /// a crashed component stays crashed.
    pub fn fires(&mut self) -> bool {
        if self.remaining == 0 {
            return true;
        }
        self.remaining -= 1;
        false
    }

    /// Deterministic torn-write cut: how many of `len` bytes survive.
    pub fn cut(&mut self, len: usize) -> usize {
        self.rng.usize_below(len + 1)
    }
}

/// The injectable I/O layer. Without a plan it is a thin veneer over
/// `std::fs` that additionally counts primitives.
#[derive(Debug, Default)]
pub struct Io {
    fault: Option<FaultPlan>,
    ops: u64,
    fsyncs: u64,
}

impl Io {
    /// Plain I/O: no injection, primitives still counted.
    pub fn plain() -> Self {
        Io::default()
    }

    /// I/O that crashes according to `plan`.
    pub fn faulty(plan: FaultPlan) -> Self {
        Io {
            fault: Some(plan),
            ops: 0,
            fsyncs: 0,
        }
    }

    /// Number of I/O primitives performed (or attempted) so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Number of file `fsync`s performed (or attempted) so far —
    /// directory syncs are not counted. This is the group-commit
    /// assertion hook: a batch of N commits sharing one sync moves this
    /// counter by 1, not N.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Counts one primitive; `Err` means the crash point fired.
    fn tick(&mut self, op: &'static str) -> Result<(), DurableError> {
        self.ops += 1;
        if let Some(plan) = &mut self.fault {
            if plan.fires() {
                return Err(DurableError::Injected { op });
            }
        }
        Ok(())
    }

    /// Appends `bytes` to `file`. An injected crash writes a
    /// deterministic prefix first — the torn write a real power cut
    /// produces.
    pub fn write(&mut self, file: &mut File, bytes: &[u8]) -> Result<(), DurableError> {
        self.ops += 1;
        if let Some(plan) = &mut self.fault {
            if plan.fires() {
                let cut = plan.cut(bytes.len());
                let _ = file.write_all(&bytes[..cut]);
                let _ = file.flush();
                return Err(DurableError::Injected { op: "write" });
            }
        }
        file.write_all(bytes)?;
        Ok(())
    }

    /// `fsync` on a file.
    pub fn sync(&mut self, file: &File) -> Result<(), DurableError> {
        self.fsyncs += 1;
        self.tick("fsync")?;
        file.sync_all()?;
        Ok(())
    }

    /// Creates (truncating) a file.
    pub fn create(&mut self, path: &Path) -> Result<File, DurableError> {
        self.tick("create")?;
        Ok(File::create(path)?)
    }

    /// Creates a directory (and missing parents). The new entry is not
    /// durable until the parent directory is fsynced — pair with
    /// [`Io::sync_dir`] on the parent.
    pub fn create_dir(&mut self, path: &Path) -> Result<(), DurableError> {
        self.tick("mkdir")?;
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    /// Atomically renames `from` onto `to`.
    pub fn rename(&mut self, from: &Path, to: &Path) -> Result<(), DurableError> {
        self.tick("rename")?;
        std::fs::rename(from, to)?;
        Ok(())
    }

    /// Truncates an open file to `len` bytes.
    pub fn set_len(&mut self, file: &File, len: u64) -> Result<(), DurableError> {
        self.tick("truncate")?;
        file.set_len(len)?;
        Ok(())
    }

    /// Unlinks a file.
    pub fn remove_file(&mut self, path: &Path) -> Result<(), DurableError> {
        self.tick("unlink")?;
        std::fs::remove_file(path)?;
        Ok(())
    }

    /// `fsync` on a directory, making renames/creates within it durable.
    pub fn sync_dir(&mut self, dir: &Path) -> Result<(), DurableError> {
        self.tick("dirsync")?;
        File::open(dir)?.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_io_counts_ops() {
        let dir = std::env::temp_dir().join(format!("mvolap_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut io = Io::plain();
        let path = dir.join("a");
        let mut f = io.create(&path).unwrap();
        io.write(&mut f, b"hello").unwrap();
        io.sync(&f).unwrap();
        assert_eq!(io.ops(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_is_torn_deterministically() {
        let dir = std::env::temp_dir().join(format!("mvolap_io_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cut_of = |seed: u64| {
            let path = dir.join(format!("t{seed}"));
            let mut io = Io::faulty(FaultPlan::crash_after(1, seed));
            let mut f = io.create(&path).unwrap();
            let err = io.write(&mut f, b"0123456789").unwrap_err();
            assert!(matches!(err, DurableError::Injected { op: "write" }));
            std::fs::metadata(&path).unwrap().len()
        };
        // Deterministic: same seed, same torn length.
        assert_eq!(cut_of(7), cut_of(7));
        // Never longer than the full write.
        assert!(cut_of(1) <= 10 && cut_of(2) <= 10 && cut_of(3) <= 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
