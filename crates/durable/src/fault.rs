//! Deterministic crash-point sweep: the subsystem's correctness
//! argument, executable.
//!
//! [`generate`] builds a seeded workload — a seed schema plus a long
//! mixed sequence of evolution operators, fact batches and manual
//! checkpoints, every one valid against a shadow schema it maintains
//! while generating. [`crash_sweep`] then:
//!
//! 1. runs the workload **fault-free**, counting every I/O primitive
//!    (`T` crash points) and caching the serialised schema after each
//!    committed record (the *prefix states*);
//! 2. re-runs the workload once per crash point `k < T` with an
//!    [`Io`] that simulates a crash (torn write included)
//!    on the `k`-th primitive;
//! 3. recovers each crashed directory and asserts **prefix
//!    consistency**: the recovered schema serialises identically to
//!    prefix state `q` for some `committed ≤ q ≤ committed + 1` — never
//!    a lost committed record, never an invented one, never a torn
//!    half-application — and answers an aggregate query with exactly
//!    the rows the prefix state answers.
//!
//! The `committed + 1` slack is inherent to write-ahead logging: a
//! crash *after* the record reached the disk but *before* the
//! acknowledgement returns leaves a fully journaled record the caller
//! was never told about; recovery legitimately surfaces it.

use std::collections::BTreeSet;
use std::path::Path;

use mvolap_core::evolution::{MergeSource, SplitPart};
use mvolap_core::persist::write_tmd;
use mvolap_core::{
    AggregateQuery, DimensionId, MappingRelationship, MeasureDef, MeasureMapping, MemberVersionId,
    MemberVersionSpec, TemporalDimension, TemporalMode, Tmd,
};
use mvolap_prng::Rng;
use mvolap_temporal::{Granularity, Instant, Interval};

use crate::error::DurableError;
use crate::io::{FaultPlan, Io};
use crate::record::{FactRow, WalRecord};
use crate::store::{DurableTmd, Options};

/// One step of a generated workload.
#[derive(Debug, Clone)]
pub enum Step {
    /// Apply (and journal) one logical record.
    Op(WalRecord),
    /// Take a manual checkpoint.
    Checkpoint,
}

/// A generated workload.
#[derive(Debug)]
pub struct Workload {
    /// The schema the store is created with.
    pub seed_schema: Tmd,
    /// The (single) dimension all operations target.
    pub org: DimensionId,
    /// The steps, in order.
    pub steps: Vec<Step>,
    /// Number of `Step::Op` entries.
    pub records: usize,
}

/// What a [`crash_sweep`] established.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Crash points exercised (= I/O primitives in the fault-free run).
    pub crash_points: u64,
    /// Logical records in the workload.
    pub records: usize,
    /// Crashes so early nothing recoverable existed yet.
    pub recovered_empty: u64,
    /// Recoveries landing exactly on the committed prefix.
    pub recovered_at_committed: u64,
    /// Recoveries surfacing one durable-but-unacknowledged record.
    pub recovered_ahead: u64,
}

fn seed_schema() -> (
    Tmd,
    DimensionId,
    Vec<(MemberVersionId, MemberVersionId)>,
    [MemberVersionId; 2],
) {
    let mut tmd = Tmd::new("durable-workload", Granularity::Month);
    let mut d = TemporalDimension::new("Org");
    let since = Interval::since(Instant::ym(2001, 1));
    let north = d.add_version(
        MemberVersionSpec::named("North").at_level("Division"),
        since,
    );
    let south = d.add_version(
        MemberVersionSpec::named("South").at_level("Division"),
        since,
    );
    let mut leaves = Vec::new();
    for i in 0..4u32 {
        let parent = if i % 2 == 0 { north } else { south };
        let dept = d.add_version(
            MemberVersionSpec::named(format!("Dept-{i}")).at_level("Department"),
            since,
        );
        d.add_relationship(dept, parent, since)
            .expect("seed schema edge");
        leaves.push((dept, parent));
    }
    let org = tmd
        .add_dimension(d)
        .expect("empty schema takes a dimension");
    tmd.add_measure(MeasureDef::summed("Amount"))
        .expect("empty schema takes a measure");
    (tmd, org, leaves, [north, south])
}

/// Generates the seeded workload: `target_records` logical records with
/// interspersed checkpoints. Deterministic in `seed`.
pub fn generate(seed: u64, target_records: usize) -> Workload {
    let mut rng = Rng::seed_from_u64(seed);
    let (seed_tmd, org, mut alive, divisions) = seed_schema();
    let mut shadow = seed_tmd.clone();
    let mut steps = Vec::new();
    let mut records = 0usize;
    // Mapping-relationship endpoints known to exist (for confidence
    // revisions) resp. known NOT to exist (for bare associates).
    let mut mapped: Vec<(MemberVersionId, MemberVersionId)> = Vec::new();
    let mut mapped_set: BTreeSet<(u32, u32)> = BTreeSet::new();
    let mut graveyard: Vec<MemberVersionId> = Vec::new();
    let mut t = Instant::ym(2001, 2);
    let mut name_counter = 4u32;
    let fractions = [0.2, 0.25, 0.4, 0.5, 0.6, 0.75];

    let push_op =
        |steps: &mut Vec<Step>, shadow: &mut Tmd, record: WalRecord| -> Vec<MemberVersionId> {
            let before = shadow.dimensions()[org.0 as usize].versions().len();
            record
                .apply(shadow)
                .expect("generated workload must be valid");
            let after = shadow.dimensions()[org.0 as usize].versions().len();
            steps.push(Step::Op(record));
            (before..after).map(|i| MemberVersionId(i as u32)).collect()
        };

    while records < target_records {
        let roll = rng.usize_below(100);
        if roll < 55 {
            // Fact batch on currently alive leaves.
            let n = 1 + rng.usize_below(3);
            let rows = (0..n)
                .map(|_| FactRow {
                    coords: vec![alive[rng.usize_below(alive.len())].0],
                    at: t,
                    values: vec![rng.usize_below(4000) as f64 / 4.0],
                })
                .collect();
            push_op(&mut steps, &mut shadow, WalRecord::FactBatch { rows });
            records += 1;
        } else if roll < 65 {
            // Create a new department.
            t = t.succ();
            let parent = divisions[rng.usize_below(2)];
            let name = format!("Dept-{name_counter}");
            name_counter += 1;
            let created = push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Create {
                    dim: org,
                    name,
                    level: Some("Department".into()),
                    at: t,
                    parents: vec![parent],
                },
            );
            alive.push((created[0], parent));
            records += 1;
        } else if roll < 72 {
            // Delete a department (keep a healthy population).
            if alive.len() <= 3 {
                continue;
            }
            t = t.succ();
            let (id, _) = alive.swap_remove(rng.usize_below(alive.len()));
            push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Delete {
                    dim: org,
                    id,
                    at: t,
                },
            );
            graveyard.push(id);
            records += 1;
        } else if roll < 79 {
            // Split a department in two.
            t = t.succ();
            let idx = rng.usize_below(alive.len());
            let (source, parent) = alive.swap_remove(idx);
            let k = fractions[rng.usize_below(fractions.len())];
            let a = format!("Dept-{name_counter}");
            let b = format!("Dept-{}", name_counter + 1);
            name_counter += 2;
            let created = push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Split {
                    dim: org,
                    source,
                    parts: vec![
                        SplitPart::proportional(a, k, 1),
                        SplitPart::proportional(b, 1.0 - k, 1),
                    ],
                    at: t,
                    parents: vec![parent],
                },
            );
            for &c in &created {
                alive.push((c, parent));
                mapped.push((source, c));
                mapped_set.insert((source.0, c.0));
            }
            graveyard.push(source);
            records += 1;
        } else if roll < 85 {
            // Merge two departments.
            if alive.len() <= 3 {
                continue;
            }
            t = t.succ();
            let i = rng.usize_below(alive.len());
            let (s1, parent) = alive.swap_remove(i);
            let j = rng.usize_below(alive.len());
            let (s2, _) = alive.swap_remove(j);
            let name = format!("Dept-{name_counter}");
            name_counter += 1;
            let created = push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Merge {
                    dim: org,
                    sources: vec![
                        MergeSource::with_share(s1, 0.5, 1),
                        MergeSource::with_unknown_share(s2, 1),
                    ],
                    new_name: name,
                    level: Some("Department".into()),
                    at: t,
                    parents: vec![parent],
                },
            );
            alive.push((created[0], parent));
            for s in [s1, s2] {
                mapped.push((s, created[0]));
                mapped_set.insert((s.0, created[0].0));
                graveyard.push(s);
            }
            records += 1;
        } else if roll < 90 {
            // Reclassify a department to the other division.
            t = t.succ();
            let idx = rng.usize_below(alive.len());
            let (id, old_parent) = alive[idx];
            let new_parent = if old_parent == divisions[0] {
                divisions[1]
            } else {
                divisions[0]
            };
            push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Reclassify {
                    dim: org,
                    id,
                    at: t,
                    old_parents: vec![old_parent],
                    new_parents: vec![new_parent],
                },
            );
            alive[idx].1 = new_parent;
            records += 1;
        } else if roll < 94 {
            // Rename a department.
            t = t.succ();
            let idx = rng.usize_below(alive.len());
            let (id, parent) = alive.swap_remove(idx);
            let name = format!("Dept-{name_counter}");
            name_counter += 1;
            let created = push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Transform {
                    dim: org,
                    id,
                    new_name: name,
                    new_attributes: [("renamed".to_owned(), "yes".to_owned())].into(),
                    at: t,
                },
            );
            alive.push((created[0], parent));
            mapped.push((id, created[0]));
            mapped_set.insert((id.0, created[0].0));
            graveyard.push(id);
            records += 1;
        } else if roll < 96 {
            // Revise the confidence of an existing mapping.
            if mapped.is_empty() {
                continue;
            }
            let (from, to) = mapped[rng.usize_below(mapped.len())];
            let k = fractions[rng.usize_below(fractions.len())];
            push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Confidence {
                    dim: org,
                    from,
                    to,
                    forward: vec![MeasureMapping::approx_scale(k)],
                    backward: vec![MeasureMapping::approx_scale(1.0 / k)],
                },
            );
            records += 1;
        } else if roll < 97 {
            // Bare associate between a retired member and a live one.
            if graveyard.is_empty() {
                continue;
            }
            let from = graveyard[rng.usize_below(graveyard.len())];
            let to = alive[rng.usize_below(alive.len())].0;
            if from == to || mapped_set.contains(&(from.0, to.0)) {
                continue;
            }
            push_op(
                &mut steps,
                &mut shadow,
                WalRecord::Associate {
                    dim: org,
                    rel: MappingRelationship {
                        from,
                        to,
                        forward: vec![MeasureMapping::UNKNOWN],
                        backward: vec![MeasureMapping::UNKNOWN],
                    },
                },
            );
            mapped.push((from, to));
            mapped_set.insert((from.0, to.0));
            records += 1;
        } else {
            // Manual checkpoint.
            if matches!(steps.last(), Some(Step::Checkpoint) | None) {
                continue;
            }
            steps.push(Step::Checkpoint);
        }
    }
    Workload {
        seed_schema: seed_tmd,
        org,
        steps,
        records,
    }
}

/// Store options used by the sweep: tiny segments so rotation happens
/// often, no auto-checkpointing (the workload checkpoints explicitly).
fn sweep_options() -> Options {
    Options {
        segment_bytes: 2048,
        policy: crate::store::CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    }
}

/// Runs `workload` against a fresh store in `dir`. Returns the number
/// of records committed and, when the run finished without a fault,
/// the total number of I/O primitives performed.
fn run_workload(dir: &Path, workload: &Workload, io: Io) -> Result<(u64, Option<u64>), String> {
    std::fs::remove_dir_all(dir).ok();
    let mut store =
        match DurableTmd::create_with(dir, workload.seed_schema.clone(), sweep_options(), io) {
            Ok(s) => s,
            Err(e) if e.is_io_class() => return Ok((0, None)),
            Err(e) => return Err(format!("create failed non-faultily: {e}")),
        };
    let mut committed = 0u64;
    for step in &workload.steps {
        let res = match step {
            Step::Op(record) => store.apply(record.clone()).map(|_| ()),
            Step::Checkpoint => store.checkpoint().map(|_| ()),
        };
        match res {
            Ok(()) => {
                if matches!(step, Step::Op(_)) {
                    committed += 1;
                }
            }
            Err(e) if e.is_io_class() => return Ok((committed, None)),
            Err(e) => return Err(format!("workload step failed non-faultily: {e}")),
        }
    }
    Ok((committed, Some(store.io_ops())))
}

fn serialise(tmd: &Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).expect("in-memory serialisation cannot fail");
    buf
}

/// Runs `workload` with the group-commit building blocks: records are
/// appended unsynced and a shared fsync lands after every `sync_every`
/// records (checkpoints also make everything applied durable). Returns
/// `(committed, attempted, ops)` — records durably acknowledged by a
/// completed sync, records applied (possibly awaiting one), and the
/// primitive count when the run finished fault-free.
fn run_workload_batched(
    dir: &Path,
    workload: &Workload,
    io: Io,
    sync_every: u64,
) -> Result<(u64, u64, Option<u64>), String> {
    std::fs::remove_dir_all(dir).ok();
    let mut store =
        match DurableTmd::create_with(dir, workload.seed_schema.clone(), sweep_options(), io) {
            Ok(s) => s,
            Err(e) if e.is_io_class() => return Ok((0, 0, None)),
            Err(e) => return Err(format!("create failed non-faultily: {e}")),
        };
    let mut committed = 0u64;
    let mut attempted = 0u64;
    let mut unsynced = 0u64;
    for step in &workload.steps {
        match step {
            Step::Op(record) => match store.apply_unsynced(record.clone()) {
                Ok(_) => {
                    attempted += 1;
                    unsynced += 1;
                    if unsynced >= sync_every {
                        match store.sync_wal() {
                            Ok(_) => {
                                committed = attempted;
                                unsynced = 0;
                            }
                            Err(e) if e.is_io_class() => return Ok((committed, attempted, None)),
                            Err(e) => return Err(format!("sync failed non-faultily: {e}")),
                        }
                    }
                }
                Err(e) if e.is_io_class() => return Ok((committed, attempted, None)),
                Err(e) => return Err(format!("workload step failed non-faultily: {e}")),
            },
            Step::Checkpoint => match store.checkpoint() {
                Ok(_) => {
                    // The snapshot durably contains every applied
                    // record, synced or not.
                    committed = attempted;
                    unsynced = 0;
                }
                Err(e) if e.is_io_class() => return Ok((committed, attempted, None)),
                Err(e) => return Err(format!("checkpoint failed non-faultily: {e}")),
            },
        }
    }
    match store.sync_wal() {
        Ok(_) => committed = attempted,
        Err(e) if e.is_io_class() => return Ok((committed, attempted, None)),
        Err(e) => return Err(format!("final sync failed non-faultily: {e}")),
    }
    Ok((committed, attempted, Some(store.io_ops())))
}

/// Fingerprints the answer a schema gives to the reference aggregate
/// query (per-year, per-division totals in consistent-time mode).
fn query_fingerprint(tmd: &Tmd, org: DimensionId) -> Result<Vec<String>, String> {
    let q = AggregateQuery::by_year(org, "Division", TemporalMode::Consistent);
    let svs = tmd.structure_versions();
    let rs = mvolap_core::evaluate(tmd, &svs, &q).map_err(|e| format!("query failed: {e}"))?;
    Ok(rs
        .rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| format!("{}:{:?}", c.value.map_or(0, f64::to_bits), c.confidence))
                .collect();
            format!("{}|{}|{}", r.time, r.keys.join(","), cells.join(","))
        })
        .collect())
}

/// Sweeps every crash point of the seeded workload under `base_dir` and
/// checks prefix-consistent recovery at each one.
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// durability bug (or genuine on-disk corruption).
pub fn crash_sweep(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
) -> Result<SweepOutcome, String> {
    let workload = generate(seed, target_records);

    // Prefix states: serialised schema + query fingerprint after each
    // committed record. Index q = state after q records.
    let mut prefix_bytes = Vec::with_capacity(workload.records + 1);
    let mut prefix_tmds = Vec::with_capacity(workload.records + 1);
    let mut state = workload.seed_schema.clone();
    prefix_bytes.push(serialise(&state));
    prefix_tmds.push(state.clone());
    for step in &workload.steps {
        if let Step::Op(record) = step {
            record
                .apply(&mut state)
                .map_err(|e| format!("prefix replay failed: {e}"))?;
            prefix_bytes.push(serialise(&state));
            prefix_tmds.push(state.clone());
        }
    }

    // Fault-free run: establishes the crash-point count.
    let free_dir = base_dir.join("fault-free");
    let (committed, ops) = run_workload(&free_dir, &workload, Io::plain())?;
    let total_ops = ops.ok_or_else(|| "fault-free run reported a fault".to_owned())?;
    if committed != workload.records as u64 {
        return Err(format!(
            "fault-free run committed {committed}/{} records",
            workload.records
        ));
    }
    // The fault-free store must recover to its own final state.
    let reopened = DurableTmd::open(&free_dir).map_err(|e| format!("clean reopen failed: {e}"))?;
    if serialise(reopened.schema()) != prefix_bytes[workload.records] {
        return Err("clean reopen diverged from the applied sequence".to_owned());
    }

    let mut outcome = SweepOutcome {
        crash_points: total_ops,
        records: workload.records,
        ..SweepOutcome::default()
    };

    let crash_dir = base_dir.join("crash");
    for k in 0..total_ops {
        let io = Io::faulty(FaultPlan::crash_after(k, seed));
        let (committed, finished) = run_workload(&crash_dir, &workload, io)?;
        if finished.is_some() {
            return Err(format!("crash point {k} never fired (T={total_ops})"));
        }
        match DurableTmd::open(&crash_dir) {
            Err(DurableError::NoStore) => {
                if committed != 0 {
                    return Err(format!(
                        "crash {k}: {committed} committed records but recovery found no store"
                    ));
                }
                outcome.recovered_empty += 1;
            }
            Err(e) => {
                return Err(format!(
                    "crash {k}: recovery failed ({committed} committed): {e}"
                ))
            }
            Ok(store) => {
                let got = serialise(store.schema());
                let committed = committed as usize;
                let q = (committed..=committed + 1)
                    .find(|&q| prefix_bytes.get(q) == Some(&got))
                    .ok_or_else(|| {
                        format!(
                            "crash {k}: recovered state is not the applied prefix \
                             ({committed} committed, {} attempted-at-most)",
                            committed + 1
                        )
                    })?;
                if q == committed {
                    outcome.recovered_at_committed += 1;
                } else {
                    outcome.recovered_ahead += 1;
                }
                // The recovered store must answer queries exactly like
                // the in-memory prefix replay.
                let expect = query_fingerprint(&prefix_tmds[q], workload.org)?;
                let actual = query_fingerprint(store.schema(), workload.org)?;
                if expect != actual {
                    return Err(format!(
                        "crash {k}: recovered store answers differently at prefix {q}"
                    ));
                }
            }
        }
    }
    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&free_dir).ok();
    Ok(outcome)
}

/// [`crash_sweep`] for the **group-commit path**: the workload runs
/// through [`DurableTmd::apply_unsynced`] with a shared fsync every
/// `sync_every` records, and recovery is checked against the wider
/// acknowledgement window batching implies — the recovered schema must
/// equal prefix state `q` for some `committed ≤ q ≤ attempted + 1`,
/// where `committed` counts only records covered by a completed sync
/// (or checkpoint) and `attempted` counts records applied. Unsynced
/// records are unacknowledged, so recovery surfacing any prefix of
/// them is legitimate; losing a synced record or inventing state that
/// was never applied is not.
///
/// # Errors
///
/// A description of the first violated invariant — any `Err` is a
/// durability bug (or genuine on-disk corruption).
pub fn group_crash_sweep(
    base_dir: &Path,
    seed: u64,
    target_records: usize,
    sync_every: u64,
) -> Result<SweepOutcome, String> {
    let workload = generate(seed, target_records);

    let mut prefix_bytes = Vec::with_capacity(workload.records + 1);
    let mut prefix_tmds = Vec::with_capacity(workload.records + 1);
    let mut state = workload.seed_schema.clone();
    prefix_bytes.push(serialise(&state));
    prefix_tmds.push(state.clone());
    for step in &workload.steps {
        if let Step::Op(record) = step {
            record
                .apply(&mut state)
                .map_err(|e| format!("prefix replay failed: {e}"))?;
            prefix_bytes.push(serialise(&state));
            prefix_tmds.push(state.clone());
        }
    }

    // Fault-free run: establishes the crash-point count and proves the
    // batched path commits everything.
    let free_dir = base_dir.join("fault-free");
    let (committed, attempted, ops) =
        run_workload_batched(&free_dir, &workload, Io::plain(), sync_every)?;
    let total_ops = ops.ok_or_else(|| "fault-free run reported a fault".to_owned())?;
    if committed != workload.records as u64 || attempted != committed {
        return Err(format!(
            "fault-free batched run committed {committed}/{} records",
            workload.records
        ));
    }
    let reopened = DurableTmd::open(&free_dir).map_err(|e| format!("clean reopen failed: {e}"))?;
    if serialise(reopened.schema()) != prefix_bytes[workload.records] {
        return Err("clean batched reopen diverged from the applied sequence".to_owned());
    }

    let mut outcome = SweepOutcome {
        crash_points: total_ops,
        records: workload.records,
        ..SweepOutcome::default()
    };

    let crash_dir = base_dir.join("crash");
    for k in 0..total_ops {
        let io = Io::faulty(FaultPlan::crash_after(k, seed));
        let (committed, attempted, finished) =
            run_workload_batched(&crash_dir, &workload, io, sync_every)?;
        if finished.is_some() {
            return Err(format!("crash point {k} never fired (T={total_ops})"));
        }
        match DurableTmd::open(&crash_dir) {
            Err(DurableError::NoStore) => {
                if committed != 0 {
                    return Err(format!(
                        "crash {k}: {committed} committed records but recovery found no store"
                    ));
                }
                outcome.recovered_empty += 1;
            }
            Err(e) => {
                return Err(format!(
                    "crash {k}: recovery failed ({committed} committed): {e}"
                ))
            }
            Ok(store) => {
                let got = serialise(store.schema());
                let committed = committed as usize;
                // `attempted + 1` slack: the crash may have hit the
                // write of the next record after a complete frame
                // reached the disk, exactly as in the classic sweep.
                let hi = (attempted as usize + 1).min(workload.records);
                let q = (committed..=hi)
                    .find(|&q| prefix_bytes.get(q) == Some(&got))
                    .ok_or_else(|| {
                        format!(
                            "crash {k}: recovered state is not an applied prefix \
                             ({committed} committed, {attempted} attempted)"
                        )
                    })?;
                if q == committed {
                    outcome.recovered_at_committed += 1;
                } else {
                    outcome.recovered_ahead += 1;
                }
                let expect = query_fingerprint(&prefix_tmds[q], workload.org)?;
                let actual = query_fingerprint(store.schema(), workload.org)?;
                if expect != actual {
                    return Err(format!(
                        "crash {k}: recovered store answers differently at prefix {q}"
                    ));
                }
            }
        }
    }
    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&free_dir).ok();
    Ok(outcome)
}
