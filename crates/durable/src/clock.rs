//! Wall-clock abstraction for time-based policies.
//!
//! The store itself never calls `SystemTime` directly: everything that
//! needs "now" reads a [`TimeSource`], which is either the real clock
//! or a shared manual counter a test advances explicitly. That keeps
//! the crash sweeps deterministic — a sweep run under a manual source
//! observes exactly the instants the harness dictates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

/// Where a store reads the current time from.
#[derive(Debug, Clone, Default)]
pub enum TimeSource {
    /// The real wall clock (milliseconds since the UNIX epoch).
    #[default]
    System,
    /// A shared counter advanced explicitly — tests and deterministic
    /// harnesses. Cloning shares the counter.
    Manual(Arc<AtomicU64>),
}

impl TimeSource {
    /// A manual source starting at `start_ms`.
    pub fn manual(start_ms: u64) -> TimeSource {
        TimeSource::Manual(Arc::new(AtomicU64::new(start_ms)))
    }

    /// Current time in milliseconds. For `System` this is UNIX-epoch
    /// milliseconds; for `Manual` it is whatever the counter holds.
    pub fn now_ms(&self) -> u64 {
        match self {
            TimeSource::System => SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            TimeSource::Manual(cell) => cell.load(Ordering::SeqCst),
        }
    }

    /// Advances a manual source by `ms` and returns the new now. A
    /// no-op on `System` (the real clock advances itself).
    pub fn advance(&self, ms: u64) -> u64 {
        match self {
            TimeSource::System => self.now_ms(),
            TimeSource::Manual(cell) => cell.fetch_add(ms, Ordering::SeqCst) + ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_source_is_shared_and_advances() {
        let a = TimeSource::manual(100);
        let b = a.clone();
        assert_eq!(a.now_ms(), 100);
        assert_eq!(b.advance(50), 150);
        assert_eq!(a.now_ms(), 150, "clones share the counter");
    }

    #[test]
    fn system_source_moves_forward() {
        let s = TimeSource::System;
        let t0 = s.now_ms();
        assert!(t0 > 0);
        assert!(s.now_ms() >= t0);
        assert!(s.advance(1_000_000) < t0 + 1_000_000, "advance is a no-op");
    }
}
