//! In-repo CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The container has no crates registry, so the usual `crc32fast`
//! dependency is replaced by a table-driven implementation built at
//! compile time. The algorithm matches zlib's `crc32` (and therefore
//! `cksum -o 3`, PNG, gzip): initial value `!0`, reflected table, final
//! complement — handy when inspecting WAL segments with external tools.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"mvolap wal frame payload");
        let mut bytes = b"mvolap wal frame payload".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&bytes), base, "flip at bit {i} undetected");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}
