//! Checkpoints: atomic schema snapshots keyed to a WAL position.
//!
//! A checkpoint lives in `<store>/checkpoint/` as
//! `ckpt-g{generation:016}-l{lsn:016}.tmd` — the `core::persist` text
//! snapshot of the [`Tmd`], named after the schema's
//! [`Tmd::generation`] and the LSN **after** the last record the
//! snapshot covers. Recovery loads the newest parseable checkpoint and
//! replays WAL records with `lsn >= next_lsn` on top of it.
//!
//! Writes are crash-atomic: serialise into `*.tmp`, fsync, rename onto
//! the final name, fsync the directory. A crash at any point leaves
//! either the old set of checkpoints or the old set plus the complete
//! new one — never a half-written file under a valid name. Stale `.tmp`
//! droppings are removed on the next checkpoint.

use std::path::{Path, PathBuf};

use mvolap_core::persist::{read_tmd, write_tmd};
use mvolap_core::Tmd;

use crate::error::DurableError;
use crate::io::Io;

const PREFIX: &str = "ckpt-g";

/// A checkpoint's identity: schema generation + WAL resume position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointId {
    /// `Tmd::generation` of the snapshotted schema.
    pub generation: u64,
    /// First LSN **not** covered by the snapshot (replay resumes here).
    pub next_lsn: u64,
}

fn file_name(id: CheckpointId) -> String {
    format!("{PREFIX}{:016}-l{:016}.tmd", id.generation, id.next_lsn)
}

fn parse_name(name: &str) -> Option<CheckpointId> {
    let rest = name.strip_prefix(PREFIX)?.strip_suffix(".tmd")?;
    let (g, l) = rest.split_once("-l")?;
    if g.len() != 16 || l.len() != 16 {
        return None;
    }
    Some(CheckpointId {
        generation: g.parse().ok()?,
        next_lsn: l.parse().ok()?,
    })
}

fn ckpt_dir(dir: &Path) -> PathBuf {
    dir.join("checkpoint")
}

/// Atomically writes a checkpoint of `tmd` covering the WAL up to (not
/// including) `next_lsn`.
///
/// # Errors
///
/// I/O (or injected-fault) failures; on failure no valid checkpoint name
/// is ever left pointing at partial data.
pub fn write(
    tmd: &Tmd,
    dir: &Path,
    next_lsn: u64,
    io: &mut Io,
) -> Result<CheckpointId, DurableError> {
    let cdir = ckpt_dir(dir);
    let created = !cdir.is_dir();
    if created {
        io.create_dir(&cdir)?;
    }
    let id = CheckpointId {
        generation: tmd.generation(),
        next_lsn,
    };
    let finals = cdir.join(file_name(id));
    let tmp = cdir.join(format!("{}.tmp", file_name(id)));
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf)?;
    let mut f = io.create(&tmp)?;
    let res = io
        .write(&mut f, &buf)
        .and_then(|()| io.sync(&f))
        .and_then(|()| {
            drop(f);
            io.rename(&tmp, &finals)
        })
        .and_then(|()| io.sync_dir(&cdir))
        .and_then(|()| {
            // A first checkpoint also created `checkpoint/` itself; the
            // entry must be durable in the store directory *before*
            // pruning may remove WAL segments the snapshot covers, or a
            // crash could lose the checkpoint while the prune survives.
            if created {
                io.sync_dir(dir)
            } else {
                Ok(())
            }
        });
    if let Err(e) = res {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    Ok(id)
}

/// Finds and loads the newest valid checkpoint under `dir`, skipping
/// unparseable files (a corrupt checkpoint falls back to the previous
/// one). Removes stale `.tmp` droppings along the way. Returns `None`
/// when no usable checkpoint exists.
///
/// # Errors
///
/// Only directory-listing I/O failures; corrupt checkpoint *contents*
/// are skipped, not fatal.
pub fn load_latest(dir: &Path) -> Result<Option<(CheckpointId, Tmd)>, DurableError> {
    let cdir = ckpt_dir(dir);
    if !cdir.is_dir() {
        return Ok(None);
    }
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(&cdir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") {
            std::fs::remove_file(entry.path()).ok();
            continue;
        }
        if let Some(id) = parse_name(&name) {
            ids.push(id);
        }
    }
    // Newest first: highest covered LSN, generation as tie-break.
    ids.sort_by_key(|id| (id.next_lsn, id.generation));
    for id in ids.into_iter().rev() {
        let path = cdir.join(file_name(id));
        let Ok(bytes) = std::fs::read(&path) else {
            continue;
        };
        // The generation in the name is a monotonic marker, not a
        // validation key: `write_tmd` reconstructs through the
        // construction API, so a re-read schema counts its own
        // generations. Parseability is the validity test.
        if let Ok(tmd) = read_tmd(&mut bytes.as_slice()) {
            return Ok(Some((id, tmd)));
        }
    }
    Ok(None)
}

/// Removes every checkpoint older than `keep` (by resume LSN). The
/// newest is never removed.
pub fn prune(dir: &Path, keep: CheckpointId, io: &mut Io) -> Result<usize, DurableError> {
    let cdir = ckpt_dir(dir);
    if !cdir.is_dir() {
        return Ok(0);
    }
    let mut removed = 0;
    for entry in std::fs::read_dir(&cdir)? {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(id) = parse_name(&name.to_string_lossy()) {
            if id != keep && id.next_lsn <= keep.next_lsn {
                io.remove_file(&entry.path())?;
                removed += 1;
            }
        }
    }
    if removed > 0 {
        io.sync_dir(&cdir)?;
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvolap_core::case_study;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvolap_ckpt_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_then_load_latest_roundtrip() {
        let dir = tmp("roundtrip");
        let mut io = Io::plain();
        let tmd = case_study::case_study().tmd;
        let id = write(&tmd, &dir, 17, &mut io).unwrap();
        assert_eq!(id.next_lsn, 17);
        assert_eq!(id.generation, tmd.generation());
        let (got, loaded) = load_latest(&dir).unwrap().expect("checkpoint");
        assert_eq!(got, id);
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_tmd(&tmd, &mut a).unwrap();
        write_tmd(&loaded, &mut b).unwrap();
        assert_eq!(a, b, "loaded checkpoint must serialise identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_wins_and_corrupt_falls_back() {
        let dir = tmp("fallback");
        let mut io = Io::plain();
        let tmd = case_study::case_study().tmd;
        let old = write(&tmd, &dir, 5, &mut io).unwrap();
        let new = write(&tmd, &dir, 9, &mut io).unwrap();
        let (got, _) = load_latest(&dir).unwrap().expect("checkpoint");
        assert_eq!(got, new);
        // Corrupt the newest: loader must fall back to the older one.
        let newest = ckpt_dir(&dir).join(file_name(new));
        std::fs::write(&newest, b"mvolap-tmd v1\ngarbage from the future\n").unwrap();
        let (got, _) = load_latest(&dir).unwrap().expect("fallback checkpoint");
        assert_eq!(got, old);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tmp_droppings_are_ignored_and_cleaned() {
        let dir = tmp("droppings");
        let mut io = Io::plain();
        let tmd = case_study::case_study().tmd;
        let id = write(&tmd, &dir, 3, &mut io).unwrap();
        let stale = ckpt_dir(&dir).join("ckpt-g0000000000000099-l0000000000000099.tmd.tmp");
        std::fs::write(&stale, b"half a snapshot").unwrap();
        let (got, _) = load_latest(&dir).unwrap().expect("checkpoint");
        assert_eq!(got, id);
        assert!(!stale.exists(), "stale .tmp must be removed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp("prune");
        let mut io = Io::plain();
        let tmd = case_study::case_study().tmd;
        write(&tmd, &dir, 2, &mut io).unwrap();
        write(&tmd, &dir, 4, &mut io).unwrap();
        let newest = write(&tmd, &dir, 8, &mut io).unwrap();
        let removed = prune(&dir, newest, &mut io).unwrap();
        assert_eq!(removed, 2);
        let (got, _) = load_latest(&dir).unwrap().expect("checkpoint");
        assert_eq!(got, newest);
        std::fs::remove_dir_all(&dir).ok();
    }
}
