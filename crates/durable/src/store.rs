//! [`DurableTmd`]: a temporal warehouse whose every evolution is
//! journaled before it is applied.
//!
//! ## Commit protocol
//!
//! The WAL must contain exactly the operations that *committed* — a
//! journaled record that could not be applied would poison every future
//! recovery. Evolution operators therefore validate on a **clone** of
//! the schema first, journal (append + fsync) second, and swap the
//! clone in third; the swap cannot fail. Fact batches skip the clone (a
//! bulk load would copy the whole warehouse per batch): they run the
//! exact read-only checks `Tmd::add_fact` performs, journal, then apply
//! directly.
//!
//! Consequently every record read back by recovery is guaranteed to
//! replay cleanly on the state it was journaled against; a replay
//! failure always means real corruption and is reported as such rather
//! than papered over.
//!
//! ## Failure handling
//!
//! When journaling itself fails (an I/O error or injected crash), the
//! in-memory schema no longer provably matches the log and the store
//! *poisons* itself: every subsequent operation returns
//! [`DurableError::Poisoned`]. Recovery is re-opening the directory.

use std::path::{Path, PathBuf};

use mvolap_core::evolution::{MergeSource, SplitPart};
use mvolap_core::{DimensionId, MeasureMapping, MemberVersionId, Tmd};
use mvolap_temporal::Instant;

use crate::checkpoint::{self, CheckpointId};
use crate::clock::TimeSource;
use crate::error::DurableError;
use crate::io::{FaultPlan, Io};
use crate::record::{FactRow, WalRecord};
use crate::wal::Wal;

/// When a [`DurableTmd`] checkpoints automatically. Every threshold is
/// independent and `0` disables it; the store checkpoints as soon as
/// *any* enabled threshold is crossed after a commit.
///
/// `every_records` alone is the classic count policy, but a long tail
/// of *small* records (many tiny fact batches) or a tail inherited from
/// recovery can still grow unboundedly below it — `max_tail_bytes` and
/// `max_tail_ops` bound the uncheckpointed tail by size and by total
/// record count regardless of who appended it.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many records committed by this handle.
    pub every_records: u64,
    /// Checkpoint once the uncheckpointed WAL tail exceeds this many
    /// bytes (frame headers included).
    pub max_tail_bytes: u64,
    /// Checkpoint once the uncheckpointed WAL tail holds this many
    /// records, counting records replayed from the log at open — a
    /// store that recovers a long tail checkpoints promptly instead of
    /// re-replaying it on every future open.
    pub max_tail_ops: u64,
    /// Checkpoint once the oldest uncheckpointed record has been
    /// sitting in the tail for this many milliseconds (per the store's
    /// [`TimeSource`]). Count/byte triggers only fire on commit; a
    /// deployment that goes quiet after a burst needs this wall-clock
    /// trigger, checked by [`DurableTmd::maybe_checkpoint`] from a
    /// periodic driver.
    pub max_tail_age_ms: u64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            every_records: 1024,
            max_tail_bytes: 0,
            max_tail_ops: 0,
            max_tail_age_ms: 0,
        }
    }
}

impl CheckpointPolicy {
    /// Only the classic record-count trigger.
    pub fn every_records(n: u64) -> Self {
        CheckpointPolicy {
            every_records: n,
            ..CheckpointPolicy::manual()
        }
    }

    /// Only the wall-clock tail-age trigger.
    pub fn max_tail_age(ms: u64) -> Self {
        CheckpointPolicy {
            max_tail_age_ms: ms,
            ..CheckpointPolicy::manual()
        }
    }

    /// No automatic checkpointing at all.
    pub fn manual() -> Self {
        CheckpointPolicy {
            every_records: 0,
            max_tail_bytes: 0,
            max_tail_ops: 0,
            max_tail_age_ms: 0,
        }
    }

    fn due(&self, records_since: u64, tail_bytes: u64, tail_ops: u64, tail_age_ms: u64) -> bool {
        (self.every_records > 0 && records_since >= self.every_records)
            || (self.max_tail_bytes > 0 && tail_bytes >= self.max_tail_bytes)
            || (self.max_tail_ops > 0 && tail_ops >= self.max_tail_ops)
            || (self.max_tail_age_ms > 0 && tail_age_ms >= self.max_tail_age_ms)
    }
}

/// Tuning knobs of a [`DurableTmd`].
#[derive(Debug, Clone)]
pub struct Options {
    /// Rotate WAL segments once they exceed this many bytes.
    pub segment_bytes: u64,
    /// When to checkpoint automatically.
    pub policy: CheckpointPolicy,
    /// Prune fully-covered WAL segments and superseded checkpoints
    /// after each checkpoint.
    pub prune_on_checkpoint: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            segment_bytes: 8 << 20,
            policy: CheckpointPolicy::default(),
            prune_on_checkpoint: true,
        }
    }
}

/// One journaled membership change, as recovered from the WAL or the
/// membership sidecar. The group layer replays these to rebuild the
/// voting-group history: each entry's new group size takes effect
/// exactly at `lsn`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigEntry {
    /// LSN of the [`WalRecord::Reconfig`] record.
    pub lsn: u64,
    /// Epoch the reconfiguration was issued under.
    pub epoch: u64,
    /// `true` = `member` was added, `false` = removed.
    pub add: bool,
    /// The member id that joined or left.
    pub member: String,
    /// The member's read-server address (empty for removals).
    pub addr: String,
}

const MEMBERSHIP_MAGIC: &str = "mvolap-membership v1";

fn membership_path(dir: &Path) -> PathBuf {
    dir.join("membership")
}

/// Persists the membership log crash-atomically (tmp + fsync + rename +
/// dir fsync), so checkpoint pruning can never orphan a reconfiguration
/// whose WAL frame it removes.
fn write_membership(
    entries: &[ReconfigEntry],
    dir: &Path,
    io: &mut Io,
) -> Result<(), DurableError> {
    use crate::record::esc;
    let mut buf = String::from(MEMBERSHIP_MAGIC);
    buf.push('\n');
    for e in entries {
        buf.push_str(&format!(
            "{} {} {} {} {}\n",
            e.lsn,
            e.epoch,
            if e.add { "add" } else { "remove" },
            esc(&e.member),
            esc(&e.addr)
        ));
    }
    let finals = membership_path(dir);
    let tmp = dir.join("membership.tmp");
    let mut f = io.create(&tmp)?;
    let res = io
        .write(&mut f, buf.as_bytes())
        .and_then(|()| io.sync(&f))
        .and_then(|()| {
            drop(f);
            io.rename(&tmp, &finals)
        })
        .and_then(|()| io.sync_dir(dir));
    if let Err(e) = res {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    Ok(())
}

/// Loads the membership sidecar; a missing file is an empty log and a
/// malformed line ends the parse (never fatal — the WAL scan re-adds
/// anything it still holds).
fn load_membership(dir: &Path) -> Vec<ReconfigEntry> {
    use crate::record::unesc;
    let Ok(text) = std::fs::read_to_string(membership_path(dir)) else {
        return Vec::new();
    };
    let mut lines = text.lines();
    if lines.next() != Some(MEMBERSHIP_MAGIC) {
        return Vec::new();
    }
    let mut entries = Vec::new();
    for line in lines {
        let mut toks = line.split(' ');
        let parsed = (|| {
            let lsn = toks.next()?.parse().ok()?;
            let epoch = toks.next()?.parse().ok()?;
            let add = match toks.next()? {
                "add" => true,
                "remove" => false,
                _ => return None,
            };
            let member = unesc(toks.next()?).ok()?;
            let addr = unesc(toks.next()?).ok()?;
            if toks.next().is_some() {
                return None;
            }
            Some(ReconfigEntry {
                lsn,
                epoch,
                add,
                member,
                addr,
            })
        })();
        match parsed {
            Some(e) => entries.push(e),
            None => break,
        }
    }
    entries
}

/// A durable temporal multidimensional schema: [`Tmd`] + WAL +
/// checkpoints under one directory.
#[derive(Debug)]
pub struct DurableTmd {
    dir: PathBuf,
    tmd: Tmd,
    wal: Wal,
    io: Io,
    opts: Options,
    records_since_ckpt: u64,
    /// Bytes (frames included) appended to the tail since the last
    /// known checkpoint.
    bytes_since_ckpt: u64,
    /// First LSN *not* covered by the last known checkpoint; the
    /// uncheckpointed tail is `next_lsn - covered_lsn` records.
    covered_lsn: u64,
    /// Where this store reads "now" for the tail-age trigger.
    time: TimeSource,
    /// When the oldest uncheckpointed record entered the tail; `None`
    /// while the tail is empty.
    tail_since_ms: Option<u64>,
    /// Every journaled membership change, in LSN order. Rebuilt on open
    /// from the membership sidecar plus a WAL scan, so the log survives
    /// checkpoint pruning of the frames it came from.
    reconfigs: Vec<ReconfigEntry>,
    poisoned: bool,
}

impl DurableTmd {
    /// Creates a fresh store under `dir` seeded with `tmd`. The seed
    /// schema is journaled as the bootstrap record, so the store is
    /// recoverable before its first checkpoint.
    ///
    /// # Errors
    ///
    /// I/O failures; `dir` must not already contain a store.
    pub fn create(dir: &Path, tmd: Tmd) -> Result<DurableTmd, DurableError> {
        Self::create_with(dir, tmd, Options::default(), Io::plain())
    }

    /// [`DurableTmd::create`] with explicit options and I/O layer (fault
    /// injection enters here).
    ///
    /// # Errors
    ///
    /// I/O or injected-fault failures.
    pub fn create_with(
        dir: &Path,
        tmd: Tmd,
        opts: Options,
        mut io: Io,
    ) -> Result<DurableTmd, DurableError> {
        if dir.join("wal").exists() {
            return Err(DurableError::corrupt(format!(
                "refusing to create over an existing store in {}",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        let mut wal = Wal::create(dir, opts.segment_bytes, &mut io)?;
        let mut snapshot = Vec::new();
        mvolap_core::persist::write_tmd(&tmd, &mut snapshot)?;
        let payload = WalRecord::Bootstrap { snapshot }.encode();
        wal.append(&payload, &mut io)?;
        let time = TimeSource::default();
        let tail_since_ms = Some(time.now_ms());
        Ok(DurableTmd {
            dir: dir.to_path_buf(),
            tmd,
            wal,
            io,
            opts,
            records_since_ckpt: 0,
            bytes_since_ckpt: (payload.len() + crate::frame::HEADER) as u64,
            covered_lsn: 1,
            time,
            tail_since_ms,
            reconfigs: Vec::new(),
            poisoned: false,
        })
    }

    /// Creates a store under `dir` from a checkpoint *snapshot* instead
    /// of a bootstrap record: the WAL starts empty at `next_lsn` and the
    /// snapshot is written as the covering checkpoint. A replication
    /// follower re-bootstrapping from a primary checkpoint uses this so
    /// its log stays LSN-aligned with the primary's.
    ///
    /// # Errors
    ///
    /// I/O or injected-fault failures; `dir` must not already contain a
    /// store. A crash between WAL creation and the checkpoint leaves a
    /// directory [`DurableTmd::open`] reports as
    /// [`DurableError::NoStore`] — recreate it.
    pub fn create_from_snapshot(
        dir: &Path,
        tmd: Tmd,
        next_lsn: u64,
        opts: Options,
        mut io: Io,
    ) -> Result<DurableTmd, DurableError> {
        if dir.join("wal").exists() {
            return Err(DurableError::corrupt(format!(
                "refusing to create over an existing store in {}",
                dir.display()
            )));
        }
        std::fs::create_dir_all(dir)?;
        let wal = Wal::create_at(dir, next_lsn, opts.segment_bytes, &mut io)?;
        checkpoint::write(&tmd, dir, next_lsn, &mut io)?;
        Ok(DurableTmd {
            dir: dir.to_path_buf(),
            tmd,
            wal,
            io,
            opts,
            records_since_ckpt: 0,
            bytes_since_ckpt: 0,
            covered_lsn: next_lsn,
            time: TimeSource::default(),
            tail_since_ms: None,
            reconfigs: Vec::new(),
            poisoned: false,
        })
    }

    /// Recovers a store from `dir`: loads the newest valid checkpoint
    /// (or replays from the bootstrap record) and applies the WAL tail
    /// through the validated construction API.
    ///
    /// # Errors
    ///
    /// [`DurableError::NoStore`] when nothing recoverable exists,
    /// [`DurableError::Corrupt`] on damage beyond torn-tail repair.
    pub fn open(dir: &Path) -> Result<DurableTmd, DurableError> {
        Self::open_with(dir, Options::default(), Io::plain())
    }

    /// [`DurableTmd::open`] with explicit options and I/O layer.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::open`].
    pub fn open_with(dir: &Path, opts: Options, mut io: Io) -> Result<DurableTmd, DurableError> {
        let ckpt = checkpoint::load_latest(dir)?;
        let opened = Wal::open(dir, opts.segment_bytes, &mut io)?;
        let had_ckpt = ckpt.is_some();
        let (mut tmd, resume_lsn) = match ckpt {
            Some((id, tmd)) => (tmd, id.next_lsn),
            None => {
                // No checkpoint: replay everything from the bootstrap
                // record. The placeholder is replaced wholesale by it.
                (Tmd::new("recovering", Default::default()), 1)
            }
        };
        let mut replayed = 0u64;
        let mut tail_bytes = 0u64;
        // The membership log recovers from two sources: the sidecar
        // (covers reconfigurations whose frames checkpointing pruned)
        // and a scan of every surviving frame (covers reconfigurations
        // journaled after the last sidecar write). Deduped by LSN.
        let mut reconfigs = load_membership(dir);
        for rec in &opened.records {
            if rec.payload.starts_with(b"reconfig ") {
                if let Ok(WalRecord::Reconfig {
                    epoch,
                    add,
                    member,
                    addr,
                }) = WalRecord::decode(&rec.payload)
                {
                    reconfigs.retain(|e| e.lsn != rec.lsn);
                    reconfigs.push(ReconfigEntry {
                        lsn: rec.lsn,
                        epoch,
                        add,
                        member,
                        addr,
                    });
                }
            }
            if rec.lsn < resume_lsn {
                continue;
            }
            let record = WalRecord::decode(&rec.payload)?;
            record.apply(&mut tmd).map_err(|e| {
                DurableError::corrupt(format!(
                    "record {} ({}) does not apply: {e}",
                    rec.lsn,
                    record.kind()
                ))
            })?;
            replayed += 1;
            tail_bytes += (rec.payload.len() + crate::frame::HEADER) as u64;
        }
        if resume_lsn == 1 && replayed == 0 && !had_ckpt {
            // Neither a checkpoint nor a bootstrap record survived.
            return Err(DurableError::NoStore);
        }
        let time = TimeSource::default();
        // A recovered tail's true append times are unknown; age it from
        // the moment of recovery, which still bounds how long it can
        // linger uncheckpointed from here on.
        let tail_since_ms = (replayed > 0).then(|| time.now_ms());
        reconfigs.retain(|e| e.lsn < opened.wal.next_lsn());
        reconfigs.sort_by_key(|e| e.lsn);
        Ok(DurableTmd {
            dir: dir.to_path_buf(),
            tmd,
            wal: opened.wal,
            io,
            opts,
            records_since_ckpt: replayed,
            bytes_since_ckpt: tail_bytes,
            covered_lsn: resume_lsn,
            time,
            tail_since_ms,
            reconfigs,
            poisoned: false,
        })
    }

    /// The current schema (read-only: mutations must go through the
    /// journaled operations).
    pub fn schema(&self) -> &Tmd {
        &self.tmd
    }

    /// The LSN the next journaled record will receive.
    pub fn wal_position(&self) -> u64 {
        self.wal.next_lsn()
    }

    /// The directory the store lives under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Streams every durable frame with `lsn >= from_lsn` — the
    /// replication tap (see [`Wal::frames_from`]).
    ///
    /// # Errors
    ///
    /// [`DurableError::Pruned`] when checkpointing already removed that
    /// part of the log; [`DurableError::Corrupt`] on damage or a
    /// future LSN.
    pub fn tail(&self, from_lsn: u64) -> Result<Vec<crate::wal::TailFrame>, DurableError> {
        self.wal.frames_from(from_lsn)
    }

    /// Base LSN of the oldest WAL segment still on disk.
    ///
    /// # Errors
    ///
    /// I/O failures while reading segment headers.
    pub fn oldest_lsn(&self) -> Result<u64, DurableError> {
        self.wal.oldest_lsn()
    }

    /// Consumes the handle, returning its I/O layer — harnesses that
    /// thread one deterministic fault schedule through a store that is
    /// wiped and re-created (a follower re-bootstrapping from a
    /// snapshot) carry the layer across the rebuild with this.
    pub fn into_io(self) -> Io {
        self.io
    }

    /// Truncates the journaled suffix: every record with
    /// `lsn >= from_lsn` is removed from the log and the store is
    /// re-recovered from the shortened tail. Consumes the handle — the
    /// in-memory schema already reflects the removed records and cannot
    /// be rolled back in place. A no-op (returning `self`) when
    /// `from_lsn` is at or past the WAL position.
    ///
    /// This is the quorum-replication **rejoin** step: a deposed
    /// primary discards the un-quorum'd records only it holds before
    /// following the new primary. Works on a poisoned handle too —
    /// truncation *is* the reopen that recovers from poisoning.
    ///
    /// # Errors
    ///
    /// [`DurableError::Corrupt`] when a checkpoint already covers
    /// `from_lsn` (the records are folded into a snapshot and can no
    /// longer be cut — rebuild from the peer's snapshot instead);
    /// [`DurableError::Pruned`] when the cut predates the log; I/O
    /// failures while truncating or re-opening.
    pub fn truncate_suffix(self, from_lsn: u64) -> Result<DurableTmd, DurableError> {
        if from_lsn >= self.wal.next_lsn() {
            return Ok(self);
        }
        if from_lsn < self.covered_lsn {
            return Err(DurableError::corrupt(format!(
                "cannot truncate at LSN {from_lsn}: a checkpoint already covers up to {}",
                self.covered_lsn
            )));
        }
        let dir = self.dir.clone();
        let opts = self.opts.clone();
        let time = self.time.clone();
        let mut io = self.into_io();
        crate::wal::truncate_from(&dir, from_lsn, &mut io)?;
        let mut store = DurableTmd::open_with(&dir, opts, io)?;
        store.set_time_source(time);
        Ok(store)
    }

    /// Number of I/O primitives performed so far (crash-point counting).
    pub fn io_ops(&self) -> u64 {
        self.io.ops()
    }

    /// Number of file fsyncs performed so far — the assertion hook for
    /// group-commit tests ("N concurrent commits, ≤ k fsyncs").
    pub fn io_fsyncs(&self) -> u64 {
        self.io.fsyncs()
    }

    /// Whether an earlier fault poisoned this handle.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    fn usable(&self) -> Result<(), DurableError> {
        if self.poisoned {
            Err(DurableError::Poisoned)
        } else {
            Ok(())
        }
    }

    /// Journals `record`; poisons the store when the append fails after
    /// validation (the in-memory state may then diverge from disk).
    /// With `sync` false the record is appended but not fsynced — the
    /// group-commit path, which batches many appends under one later
    /// [`DurableTmd::sync_wal`].
    fn journal(&mut self, record: &WalRecord, sync: bool) -> Result<u64, DurableError> {
        let payload = record.encode();
        let appended = if sync {
            self.wal.append(&payload, &mut self.io)
        } else {
            self.wal.append_unsynced(&payload, &mut self.io)
        };
        match appended {
            Ok(lsn) => {
                self.bytes_since_ckpt += (payload.len() + crate::frame::HEADER) as u64;
                if self.tail_since_ms.is_none() {
                    self.tail_since_ms = Some(self.time.now_ms());
                }
                Ok(lsn)
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn after_commit(&mut self) -> Result<(), DurableError> {
        self.records_since_ckpt += 1;
        if self.policy_due() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Whether the checkpoint policy is due against the current tail.
    fn policy_due(&self) -> bool {
        let tail_ops = self.wal.next_lsn().saturating_sub(self.covered_lsn);
        let tail_age_ms = self
            .tail_since_ms
            .map_or(0, |t| self.time.now_ms().saturating_sub(t));
        self.opts.policy.due(
            self.records_since_ckpt,
            self.bytes_since_ckpt,
            tail_ops,
            tail_age_ms,
        )
    }

    /// Replaces the store's time source. The tail-age reference point
    /// is restarted under the new source — instants from different
    /// sources are not comparable.
    pub fn set_time_source(&mut self, time: TimeSource) {
        if self.tail_since_ms.is_some() {
            self.tail_since_ms = Some(time.now_ms());
        }
        self.time = time;
    }

    /// Checkpoints now if any policy threshold (including wall-clock
    /// tail age) is crossed; the periodic driver a deployment calls
    /// between commits. Returns the checkpoint taken, if any.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::checkpoint`].
    pub fn maybe_checkpoint(&mut self) -> Result<Option<CheckpointId>, DurableError> {
        self.usable()?;
        if self.tail_since_ms.is_some() && self.policy_due() {
            return Ok(Some(self.checkpoint()?));
        }
        Ok(None)
    }

    /// Applies one logical record: validate, journal, commit.
    ///
    /// # Errors
    ///
    /// [`DurableError::Core`] when the operation is invalid against the
    /// current schema (nothing journaled, store stays usable); I/O-class
    /// errors when journaling fails (store poisons itself).
    pub fn apply(&mut self, record: WalRecord) -> Result<u64, DurableError> {
        self.apply_inner(record, true)
    }

    /// [`DurableTmd::apply`] without the per-record fsync: the record is
    /// validated, journaled (unsynced) and applied, but it is **not
    /// durable** — and must not be acknowledged to a client — until a
    /// later [`DurableTmd::sync_wal`] (or checkpoint) covers it. This is
    /// the group-commit building block; see
    /// [`GroupCommit`](crate::group::GroupCommit) for the concurrent
    /// wrapper that batches the fsyncs.
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn apply_unsynced(&mut self, record: WalRecord) -> Result<u64, DurableError> {
        self.apply_inner(record, false)
    }

    /// Fsyncs the WAL's active segment, making every record appended by
    /// [`DurableTmd::apply_unsynced`] durable. Returns the WAL position
    /// (LSN of the next future record): everything below it is now on
    /// disk.
    ///
    /// # Errors
    ///
    /// I/O-class failures (the store poisons itself — unacknowledged
    /// records may or may not have reached the platter).
    pub fn sync_wal(&mut self) -> Result<u64, DurableError> {
        self.usable()?;
        match self.wal.sync(&mut self.io) {
            Ok(()) => Ok(self.wal.next_lsn()),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn apply_inner(&mut self, record: WalRecord, sync: bool) -> Result<u64, DurableError> {
        self.usable()?;
        match record {
            WalRecord::Bootstrap { .. } => Err(DurableError::corrupt(
                "bootstrap records are internal to create/recovery",
            )),
            WalRecord::FactBatch { ref rows } => {
                // Hot path: read-only pre-validation instead of a clone.
                WalRecord::validate_facts(&self.tmd, rows)?;
                let lsn = self.journal(&record, sync)?;
                let WalRecord::FactBatch { rows } = record else {
                    unreachable!()
                };
                for r in &rows {
                    self.tmd
                        .add_fact(&r.coords, r.at, &r.values)
                        .expect("pre-validated fact batch must apply");
                }
                self.after_commit()?;
                Ok(lsn)
            }
            record => {
                // Validate on a clone; the swap after journaling cannot
                // fail, so the WAL holds exactly the committed ops.
                let mut next = self.tmd.clone();
                record.apply(&mut next)?;
                let lsn = self.journal(&record, sync)?;
                if let WalRecord::Reconfig {
                    epoch,
                    add,
                    ref member,
                    ref addr,
                } = record
                {
                    self.reconfigs.push(ReconfigEntry {
                        lsn,
                        epoch,
                        add,
                        member: member.clone(),
                        addr: addr.clone(),
                    });
                }
                self.tmd = next;
                self.after_commit()?;
                Ok(lsn)
            }
        }
    }

    /// Writes a checkpoint of the current schema and (optionally) prunes
    /// the log and older checkpoints behind it.
    ///
    /// # Errors
    ///
    /// I/O-class failures (the store poisons itself: a half-finished
    /// prune is recoverable, but the fault may equally have hit the
    /// journal).
    pub fn checkpoint(&mut self) -> Result<CheckpointId, DurableError> {
        self.usable()?;
        let next_lsn = self.wal.next_lsn();
        let result =
            checkpoint::write(&self.tmd, &self.dir, next_lsn, &mut self.io).and_then(|id| {
                // The membership sidecar must be durable *before* the
                // prune may remove the WAL frames its entries came
                // from; a crash in between leaves both sources intact
                // and recovery dedupes them.
                if !self.reconfigs.is_empty() {
                    write_membership(&self.reconfigs, &self.dir, &mut self.io)?;
                }
                if self.opts.prune_on_checkpoint {
                    self.wal.prune(id.next_lsn, &mut self.io)?;
                    checkpoint::prune(&self.dir, id, &mut self.io)?;
                }
                Ok(id)
            });
        match result {
            Ok(id) => {
                self.records_since_ckpt = 0;
                self.bytes_since_ckpt = 0;
                self.covered_lsn = id.next_lsn;
                self.tail_since_ms = None;
                Ok(id)
            }
            Err(e) => {
                if e.is_io_class() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    // -- journaled evolution operators --------------------------------

    /// Journaled [`mvolap_core::evolution::create`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn create_member(
        &mut self,
        dim: DimensionId,
        name: impl Into<String>,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Create {
            dim,
            name: name.into(),
            level,
            at,
            parents: parents.to_vec(),
        })
    }

    /// Journaled [`mvolap_core::evolution::delete`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn delete_member(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Delete { dim, id, at })
    }

    /// Journaled [`mvolap_core::evolution::transform`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn transform_member(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        new_name: impl Into<String>,
        new_attributes: std::collections::BTreeMap<String, String>,
        at: Instant,
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Transform {
            dim,
            id,
            new_name: new_name.into(),
            new_attributes,
            at,
        })
    }

    /// Journaled [`mvolap_core::evolution::merge`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn merge_members(
        &mut self,
        dim: DimensionId,
        sources: Vec<MergeSource>,
        new_name: impl Into<String>,
        level: Option<String>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Merge {
            dim,
            sources,
            new_name: new_name.into(),
            level,
            at,
            parents: parents.to_vec(),
        })
    }

    /// Journaled [`mvolap_core::evolution::split`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn split_member(
        &mut self,
        dim: DimensionId,
        source: MemberVersionId,
        parts: Vec<SplitPart>,
        at: Instant,
        parents: &[MemberVersionId],
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Split {
            dim,
            source,
            parts,
            at,
            parents: parents.to_vec(),
        })
    }

    /// Journaled [`mvolap_core::evolution::reclassify`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn reclassify_member(
        &mut self,
        dim: DimensionId,
        id: MemberVersionId,
        at: Instant,
        old_parents: &[MemberVersionId],
        new_parents: &[MemberVersionId],
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Reclassify {
            dim,
            id,
            at,
            old_parents: old_parents.to_vec(),
            new_parents: new_parents.to_vec(),
        })
    }

    /// Journaled [`mvolap_core::evolution::change_confidence`].
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn change_confidence(
        &mut self,
        dim: DimensionId,
        from: MemberVersionId,
        to: MemberVersionId,
        forward: Vec<MeasureMapping>,
        backward: Vec<MeasureMapping>,
    ) -> Result<u64, DurableError> {
        self.apply(WalRecord::Confidence {
            dim,
            from,
            to,
            forward,
            backward,
        })
    }

    /// Journaled fact-batch append (the ETL load path).
    ///
    /// # Errors
    ///
    /// As [`DurableTmd::apply`].
    pub fn append_facts(&mut self, rows: Vec<FactRow>) -> Result<u64, DurableError> {
        self.apply(WalRecord::FactBatch { rows })
    }

    /// Every journaled membership change this store knows of, in LSN
    /// order — survives checkpoint pruning (via the membership sidecar)
    /// and reopen. The group layer replays this to reconstruct the
    /// voting-group size history.
    pub fn membership_log(&self) -> &[ReconfigEntry] {
        &self.reconfigs
    }
}

/// Builds a fault-injecting I/O layer: crash on the `ops`-th primitive,
/// torn-write cuts driven by `seed`. Convenience re-export for harnesses
/// and examples.
pub fn faulty_io(ops: u64, seed: u64) -> Io {
    Io::faulty(FaultPlan::crash_after(ops, seed))
}
