//! `mvolap-durable` — write-ahead log, checkpointing and crash recovery
//! for the temporal warehouse.
//!
//! The paper's evolution operators (§3.2) mutate the schema in memory;
//! this crate makes those mutations survive a crash. The design is the
//! classic WAL + checkpoint pair, specialised to the model:
//!
//! * **Logical log.** The WAL journals *operators*, not byte diffs: one
//!   [`WalRecord`] per evolution operation (insert, exclude, transform,
//!   merge, split, reclassify, associate, confidence change) plus fact
//!   batches. Replay goes through the same validated construction API
//!   as everything else, so a damaged log can never materialise a
//!   schema the model forbids — recovery refuses instead.
//! * **Checksummed frames, segmented files.** Records are
//!   length-prefixed CRC-32 frames ([`frame`]) in rotating segment
//!   files ([`wal`]); a torn tail is detected and truncated, damage
//!   anywhere else is an explicit [`DurableError::Corrupt`].
//! * **Atomic checkpoints.** A checkpoint ([`checkpoint`]) is the
//!   `core::persist` snapshot written temp-file + rename, named by
//!   schema generation and WAL position; recovery is newest checkpoint
//!   + log tail.
//! * **Journal before apply.** [`DurableTmd`] validates every operation
//!   (on a clone for evolutions, read-only for fact batches) *before*
//!   journaling it, so the log contains exactly the committed
//!   operations and replay is infallible on intact media.
//! * **Deterministic crash testing.** All durable I/O goes through one
//!   fault-injectable layer ([`io`]); [`fault::crash_sweep`] simulates
//!   a crash at *every* write/fsync/rename boundary of a seeded
//!   workload and proves prefix-consistent recovery at each one.

pub mod checkpoint;
pub mod checksum;
pub mod clock;
pub mod error;
pub mod fault;
pub mod frame;
pub mod group;
pub mod io;
pub mod record;
pub mod store;
pub mod wal;

pub use checkpoint::CheckpointId;
pub use clock::TimeSource;
pub use error::DurableError;
pub use fault::{crash_sweep, generate, group_crash_sweep, Step, SweepOutcome, Workload};
pub use group::{GroupCommit, GroupConfig};
pub use io::{FaultPlan, Io};
pub use record::{FactRow, WalRecord};
pub use store::{CheckpointPolicy, DurableTmd, Options, ReconfigEntry};
pub use wal::{truncate_from, LoggedRecord, TailFrame, Wal};
