//! Length-prefixed, checksummed WAL frames.
//!
//! ```text
//! ┌────────────┬─────────────┬──────────────┐
//! │ len u32 LE │ crc32 u32 LE│ payload (len)│
//! └────────────┴─────────────┴──────────────┘
//! ```
//!
//! The CRC covers the payload only; the length field is validated by a
//! sanity cap plus the CRC of the bytes it delimits, so a torn or
//! bit-flipped tail cannot make the scanner read past the last durable
//! frame. Scanning stops at the first frame that is incomplete or fails
//! its checksum and reports the byte offset of the last valid frame
//! end — the truncation point for torn-tail repair.

use crate::checksum::crc32;

/// Frame header size: length + checksum.
pub const HEADER: usize = 8;

/// Upper bound on a single frame payload (64 MiB): a corrupted length
/// field must not trigger a giant allocation.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Encodes one payload into a frame.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of scanning a byte region for frames.
#[derive(Debug)]
pub struct Scan {
    /// Decoded payloads, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Offset (relative to the scanned region) one past the last valid
    /// frame — the length the region should be truncated to when the
    /// remainder is a torn tail.
    pub valid_len: usize,
    /// Whether any bytes after `valid_len` remained (torn or corrupt).
    pub torn: bool,
}

/// Scans `bytes` for consecutive frames.
pub fn scan(bytes: &[u8]) -> Scan {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    loop {
        if bytes.len() - at < HEADER {
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let sum = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD || bytes.len() - at - HEADER < len {
            break;
        }
        let payload = &bytes[at + HEADER..at + HEADER + len];
        if crc32(payload) != sum {
            break;
        }
        payloads.push(payload.to_vec());
        at += HEADER + len;
    }
    Scan {
        payloads,
        valid_len: at,
        torn: at != bytes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_frames() {
        let mut buf = Vec::new();
        for p in [b"one".as_slice(), b"", b"three little frames"] {
            buf.extend_from_slice(&encode(p));
        }
        let scan = scan(&buf);
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, buf.len());
        assert_eq!(scan.payloads.len(), 3);
        assert_eq!(scan.payloads[2], b"three little frames");
    }

    #[test]
    fn torn_tail_stops_at_last_valid_frame() {
        let mut buf = encode(b"durable");
        let keep = buf.len();
        let second = encode(b"torn away");
        // Cut the second frame at every possible length: the scanner must
        // always stop exactly after the first frame.
        for cut in 0..second.len() {
            let mut torn = buf.clone();
            torn.extend_from_slice(&second[..cut]);
            let s = scan(&torn);
            assert_eq!(s.payloads.len(), 1, "cut {cut}");
            assert_eq!(s.valid_len, keep, "cut {cut}");
            assert_eq!(s.torn, cut != 0, "cut {cut}");
        }
        buf.extend_from_slice(&second);
        assert_eq!(scan(&buf).payloads.len(), 2);
    }

    #[test]
    fn bit_flips_are_detected() {
        let clean = encode(b"checksummed payload");
        for bit in 0..clean.len() * 8 {
            let mut buf = clean.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            let s = scan(&buf);
            // Either the frame is rejected outright, or (flips in the
            // length field only) it is no longer parseable to the same
            // payload.
            if let Some(p) = s.payloads.first() {
                assert_ne!(p, b"checksummed payload", "bit {bit} undetected");
            }
        }
    }

    #[test]
    fn absurd_length_field_does_not_allocate() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let s = scan(&buf);
        assert!(s.payloads.is_empty() && s.torn && s.valid_len == 0);
    }
}
