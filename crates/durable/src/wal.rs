//! Segment-based write-ahead log.
//!
//! The log lives in `<store>/wal/` as numbered segments
//! `00000001.wal`, `00000002.wal`, … Each segment starts with a 20-byte
//! header — the magic `MVOLAP-WAL1\0` followed by the u64 LE LSN of the
//! segment's first record — and continues with checksummed frames (see
//! [`crate::frame`]), one logical record per frame. LSNs are assigned
//! sequentially from 1.
//!
//! Durability protocol:
//!
//! * `append` writes one frame and fsyncs before reporting the record
//!   committed.
//! * Rotation (`segment_bytes` exceeded) fsyncs the old segment, writes
//!   the new segment's header, fsyncs it, then fsyncs the directory so
//!   the new file's name is durable.
//! * On open, only the **last** segment may end in garbage (a torn
//!   append): the tail is truncated back to the last valid frame.
//!   Damage anywhere else — a mid-log CRC failure, a missing segment
//!   number, a bad header in a non-final segment — is reported as
//!   [`DurableError::Corrupt`] rather than silently dropped.

use std::fs::File;
use std::path::{Path, PathBuf};

use crate::checksum::crc32;
use crate::error::DurableError;
use crate::frame;
use crate::io::Io;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 12] = b"MVOLAP-WAL1\0";

/// Size of the segment header: magic + base LSN.
pub const SEGMENT_HEADER: usize = SEGMENT_MAGIC.len() + 8;

/// A record read back from the log.
#[derive(Debug, Clone)]
pub struct LoggedRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The raw frame payload.
    pub payload: Vec<u8>,
}

/// A frame streamed out of the log for replication: the payload plus
/// its CRC-32, so a follower can verify transport integrity and a
/// promoted primary can detect divergence by comparing checksums at
/// equal LSNs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailFrame {
    /// The frame's log sequence number.
    pub lsn: u64,
    /// CRC-32 of the payload (the same checksum the on-disk frame
    /// carries).
    pub crc: u32,
    /// The raw frame payload.
    pub payload: Vec<u8>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:08}.wal"))
}

fn parse_segment_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".wal")?;
    if stem.len() != 8 || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

fn encode_header(base_lsn: u64) -> [u8; SEGMENT_HEADER] {
    let mut h = [0u8; SEGMENT_HEADER];
    h[..SEGMENT_MAGIC.len()].copy_from_slice(SEGMENT_MAGIC);
    h[SEGMENT_MAGIC.len()..].copy_from_slice(&base_lsn.to_le_bytes());
    h
}

fn decode_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < SEGMENT_HEADER || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[SEGMENT_MAGIC.len()..SEGMENT_HEADER]
            .try_into()
            .expect("8 bytes"),
    ))
}

/// The write-ahead log: an append handle plus segment bookkeeping.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    /// Sequence number of the active (last) segment.
    active_seq: u64,
    /// Open handle on the active segment.
    active: File,
    /// Bytes currently in the active segment (header included).
    active_len: u64,
    /// LSN the next appended record will receive.
    next_lsn: u64,
    /// Rotation threshold.
    segment_bytes: u64,
}

/// Everything `Wal::open` recovers from disk.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// All records that survived, in LSN order.
    pub records: Vec<LoggedRecord>,
    /// Whether a torn tail was truncated away during open.
    pub repaired: bool,
}

impl Wal {
    /// Creates a fresh, empty log under `dir` (the `wal/` directory is
    /// created if missing). First record will get LSN 1.
    pub fn create(dir: &Path, segment_bytes: u64, io: &mut Io) -> Result<Wal, DurableError> {
        Self::create_at(dir, 1, segment_bytes, io)
    }

    /// Creates a fresh, empty log whose first record will get LSN
    /// `base_lsn`. Replication followers bootstrapped from a checkpoint
    /// snapshot use this so their own log lines up LSN-for-LSN with the
    /// primary's.
    pub fn create_at(
        dir: &Path,
        base_lsn: u64,
        segment_bytes: u64,
        io: &mut Io,
    ) -> Result<Wal, DurableError> {
        let wal_dir = dir.join("wal");
        io.create_dir(&wal_dir)?;
        let mut active = io.create(&segment_path(&wal_dir, 1))?;
        io.write(&mut active, &encode_header(base_lsn))?;
        io.sync(&active)?;
        io.sync_dir(&wal_dir)?;
        // The `wal/` entry itself must be durable in the store
        // directory, or a crash could lose the whole log while later
        // siblings (e.g. a checkpoint) survive.
        io.sync_dir(dir)?;
        Ok(Wal {
            dir: wal_dir,
            active_seq: 1,
            active,
            active_len: SEGMENT_HEADER as u64,
            next_lsn: base_lsn,
            segment_bytes,
        })
    }

    /// Opens an existing log, scanning every segment, repairing a torn
    /// tail in the last one.
    ///
    /// # Errors
    ///
    /// [`DurableError::Corrupt`] for damage outside the repairable tail:
    /// gaps in segment numbering, bad headers or mid-log frame
    /// corruption, or LSN discontinuities between segments.
    /// [`DurableError::NoStore`] when `dir` has no `wal/` directory.
    pub fn open(dir: &Path, segment_bytes: u64, io: &mut Io) -> Result<WalOpen, DurableError> {
        let wal_dir = dir.join("wal");
        if !wal_dir.is_dir() {
            return Err(DurableError::NoStore);
        }
        let mut seqs = Vec::new();
        for entry in std::fs::read_dir(&wal_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(seq) = parse_segment_name(&name.to_string_lossy()) {
                seqs.push(seq);
            }
            // Other files (e.g. editor droppings) are ignored.
        }
        seqs.sort_unstable();
        if seqs.is_empty() {
            return Err(DurableError::NoStore);
        }
        let first = seqs[0];
        for (i, &s) in seqs.iter().enumerate() {
            if s != first + i as u64 {
                return Err(DurableError::corrupt(format!(
                    "segment numbering gap: expected {:08}.wal, found {s:08}.wal",
                    first + i as u64
                )));
            }
        }

        let mut records: Vec<LoggedRecord> = Vec::new();
        let mut repaired = false;
        let mut expected_base: Option<u64> = None;
        let last_idx = seqs.len() - 1;
        let mut active_len = 0u64;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(&wal_dir, seq);
            let bytes = std::fs::read(&path)?;
            let is_last = i == last_idx;
            let base = match decode_header(&bytes) {
                Some(b) => b,
                None if is_last => {
                    // A crash during rotation can leave the new segment
                    // with a torn header and zero durable records: drop
                    // the whole file.
                    if seqs.len() == 1 {
                        // A torn header on the only segment means even
                        // the store's creation never committed.
                        return Err(DurableError::NoStore);
                    }
                    io.remove_file(&path)?;
                    io.sync_dir(&wal_dir)?;
                    repaired = true;
                    // Re-open the previous segment as active.
                    let prev = segment_path(&wal_dir, seq - 1);
                    let active = std::fs::OpenOptions::new().append(true).open(&prev)?;
                    let active_len = std::fs::metadata(&prev)?.len();
                    let next_lsn = records
                        .last()
                        .map_or_else(|| expected_base.unwrap_or(1), |r| r.lsn + 1);
                    return Ok(WalOpen {
                        wal: Wal {
                            dir: wal_dir,
                            active_seq: seq - 1,
                            active,
                            active_len,
                            next_lsn,
                            segment_bytes,
                        },
                        records,
                        repaired,
                    });
                }
                None => {
                    return Err(DurableError::corrupt(format!(
                        "bad header in non-final segment {seq:08}.wal"
                    )))
                }
            };
            if let Some(expect) = expected_base {
                if base != expect {
                    return Err(DurableError::corrupt(format!(
                        "segment {seq:08}.wal starts at LSN {base}, expected {expect}"
                    )));
                }
            }
            let scan = frame::scan(&bytes[SEGMENT_HEADER..]);
            let keep = (SEGMENT_HEADER + scan.valid_len) as u64;
            if scan.torn {
                if !is_last {
                    return Err(DurableError::corrupt(format!(
                        "corrupt frame mid-log in segment {seq:08}.wal"
                    )));
                }
                // Torn tail: truncate back to the last valid frame.
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                io.set_len(&f, keep)?;
                io.sync(&f)?;
                repaired = true;
            }
            for (k, payload) in scan.payloads.into_iter().enumerate() {
                records.push(LoggedRecord {
                    lsn: base + k as u64,
                    payload,
                });
            }
            // The next segment must start right after this one's records.
            expected_base = Some(records.last().map_or(base, |r| r.lsn + 1));
            if is_last {
                active_len = keep;
            }
        }
        let active_seq = *seqs.last().expect("non-empty");
        let active_path = segment_path(&wal_dir, active_seq);
        let active = std::fs::OpenOptions::new()
            .append(true)
            .open(&active_path)?;
        let next_lsn = expected_base.expect("at least one segment scanned");
        Ok(WalOpen {
            wal: Wal {
                dir: wal_dir,
                active_seq,
                active,
                active_len,
                next_lsn,
                segment_bytes,
            },
            records,
            repaired,
        })
    }

    /// LSN the next appended record will receive.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends one record payload, fsyncs, and returns its LSN.
    ///
    /// Rotates to a fresh segment first when the active one is full.
    ///
    /// # Errors
    ///
    /// I/O (or injected-fault) failures; the record is only durable when
    /// `Ok` is returned.
    pub fn append(&mut self, payload: &[u8], io: &mut Io) -> Result<u64, DurableError> {
        let lsn = self.append_unsynced(payload, io)?;
        self.sync(io)?;
        Ok(lsn)
    }

    /// Appends one record payload **without** fsyncing it, returning its
    /// LSN. The record is not durable until a later [`Wal::sync`];
    /// rotation still performs its own syncs, so records that land in a
    /// completed segment become durable when the segment is sealed.
    /// Group commit builds on this split: many appends, one sync.
    ///
    /// # Errors
    ///
    /// I/O (or injected-fault) failures.
    pub fn append_unsynced(&mut self, payload: &[u8], io: &mut Io) -> Result<u64, DurableError> {
        if self.active_len >= self.segment_bytes {
            self.rotate(io)?;
        }
        let framed = frame::encode(payload);
        io.write(&mut self.active, &framed)?;
        self.active_len += framed.len() as u64;
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Fsyncs the active segment, making every record appended so far
    /// durable — the second half of [`Wal::append_unsynced`].
    ///
    /// # Errors
    ///
    /// I/O (or injected-fault) failures.
    pub fn sync(&mut self, io: &mut Io) -> Result<(), DurableError> {
        io.sync(&self.active)
    }

    fn rotate(&mut self, io: &mut Io) -> Result<(), DurableError> {
        io.sync(&self.active)?;
        let seq = self.active_seq + 1;
        let path = segment_path(&self.dir, seq);
        let mut f = io.create(&path)?;
        io.write(&mut f, &encode_header(self.next_lsn))?;
        io.sync(&f)?;
        io.sync_dir(&self.dir)?;
        self.active = f;
        self.active_seq = seq;
        self.active_len = SEGMENT_HEADER as u64;
        Ok(())
    }

    /// Removes whole segments whose records all have `lsn < upto`;
    /// called after a checkpoint to bound log growth. The active segment
    /// is never removed.
    ///
    /// # Errors
    ///
    /// I/O failures while unlinking.
    pub fn prune(&mut self, upto: u64, io: &mut Io) -> Result<usize, DurableError> {
        let mut removed = 0;
        for seq in 1..self.active_seq {
            let path = segment_path(&self.dir, seq);
            if !path.exists() {
                continue;
            }
            let bytes = std::fs::read(&path)?;
            let Some(base) = decode_header(&bytes) else {
                continue;
            };
            let n = frame::scan(&bytes[SEGMENT_HEADER..]).payloads.len() as u64;
            // Also require the *next* segment to exist so the chain stays
            // contiguous for open().
            let next_exists = segment_path(&self.dir, seq + 1).exists();
            if base + n <= upto && next_exists {
                io.remove_file(&path)?;
                removed += 1;
            } else {
                break;
            }
        }
        if removed > 0 {
            io.sync_dir(&self.dir)?;
        }
        Ok(removed)
    }

    /// Streams every durable frame with `lsn >= from_lsn` back out of
    /// the log, re-reading the segment files (read-only; the append
    /// handle is untouched). This is the replication tap: a follower at
    /// position `from_lsn` gets exactly the frames it is missing,
    /// checksums included.
    ///
    /// # Errors
    ///
    /// [`DurableError::Pruned`] when `from_lsn` predates the oldest
    /// segment still on disk (the caller must re-bootstrap from a
    /// checkpoint), [`DurableError::Corrupt`] when `from_lsn` lies
    /// beyond the durable tail or the segment chain is damaged.
    pub fn frames_from(&self, from_lsn: u64) -> Result<Vec<TailFrame>, DurableError> {
        read_frames(&self.dir, from_lsn)
    }

    /// Base LSN of the oldest segment still on disk — the earliest
    /// position [`Wal::frames_from`] can serve.
    ///
    /// # Errors
    ///
    /// I/O failures while listing or reading segment headers.
    pub fn oldest_lsn(&self) -> Result<u64, DurableError> {
        oldest_base(&self.dir)
    }
}

/// Streams frames with `lsn >= from_lsn` out of the store at `dir`
/// (the directory that holds the `wal/` subdirectory), without an open
/// [`Wal`] handle. A replication tailer reading a primary's store uses
/// this path.
///
/// # Errors
///
/// As [`Wal::frames_from`]; additionally [`DurableError::NoStore`] when
/// `dir` holds no log at all.
pub fn tail(dir: &Path, from_lsn: u64) -> Result<Vec<TailFrame>, DurableError> {
    read_frames(&dir.join("wal"), from_lsn)
}

/// Truncates the log of the store at `dir` (the directory holding the
/// `wal/` subdirectory) so that every record with `lsn >= from_lsn` is
/// gone: whole segments above the cut are unlinked, the segment
/// containing the cut is shortened to the last whole frame below it,
/// and the result is fsynced. Returns the number of records removed.
///
/// This is the **rejoin** primitive of quorum replication: a deposed
/// primary discards its un-quorum'd suffix back to the point where its
/// log agrees with the new primary's before it may serve again. The
/// store must be closed (no open [`Wal`] handle on the directory).
///
/// # Errors
///
/// [`DurableError::Pruned`] when `from_lsn` predates the oldest record
/// still on disk (the cut cannot be represented — the caller must
/// rebuild from a snapshot instead); [`DurableError::NoStore`] /
/// [`DurableError::Corrupt`] for a missing or damaged segment chain;
/// I/O (or injected-fault) failures.
pub fn truncate_from(dir: &Path, from_lsn: u64, io: &mut Io) -> Result<u64, DurableError> {
    let wal_dir = dir.join("wal");
    let seqs = sorted_segments(&wal_dir)?;
    let first_seq = seqs[0];
    // The cut must be representable: at or above the oldest record
    // still on disk. Checked before anything is unlinked.
    let oldest = oldest_base(&wal_dir)?;
    if from_lsn < oldest {
        return Err(DurableError::Pruned {
            oldest_available: oldest,
        });
    }
    let mut removed = 0u64;
    let mut touched = false;
    for &seq in seqs.iter().rev() {
        let path = segment_path(&wal_dir, seq);
        let bytes = std::fs::read(&path)?;
        let Some(base) = decode_header(&bytes) else {
            if seq == first_seq {
                return Err(DurableError::corrupt(format!(
                    "bad header in segment {seq:08}.wal"
                )));
            }
            // A torn header is crashed-rotation residue on the final
            // segment: nothing durable inside, drop the file.
            io.remove_file(&path)?;
            touched = true;
            continue;
        };
        let scan = frame::scan(&bytes[SEGMENT_HEADER..]);
        let n = scan.payloads.len() as u64;
        if base > from_lsn || (base == from_lsn && seq != first_seq) {
            // The whole segment sits at or above the cut.
            removed += n;
            io.remove_file(&path)?;
            touched = true;
            continue;
        }
        if base + n <= from_lsn {
            break; // Everything durable here is below the cut.
        }
        // The cut lands inside this segment: shorten it to the frames
        // below `from_lsn` (possibly none, leaving a bare header).
        let keep = (from_lsn - base) as usize;
        let mut offset = SEGMENT_HEADER;
        for payload in scan.payloads.iter().take(keep) {
            offset += frame::HEADER + payload.len();
        }
        removed += n - keep as u64;
        let f = std::fs::OpenOptions::new().write(true).open(&path)?;
        io.set_len(&f, offset as u64)?;
        io.sync(&f)?;
        touched = true;
        break;
    }
    if touched {
        io.sync_dir(&wal_dir)?;
    }
    Ok(removed)
}

fn sorted_segments(wal_dir: &Path) -> Result<Vec<u64>, DurableError> {
    if !wal_dir.is_dir() {
        return Err(DurableError::NoStore);
    }
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(wal_dir)? {
        let entry = entry?;
        if let Some(seq) = parse_segment_name(&entry.file_name().to_string_lossy()) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    if seqs.is_empty() {
        return Err(DurableError::NoStore);
    }
    let first = seqs[0];
    for (i, &s) in seqs.iter().enumerate() {
        if s != first + i as u64 {
            return Err(DurableError::corrupt(format!(
                "segment numbering gap: expected {:08}.wal, found {s:08}.wal",
                first + i as u64
            )));
        }
    }
    Ok(seqs)
}

fn oldest_base(wal_dir: &Path) -> Result<u64, DurableError> {
    let seqs = sorted_segments(wal_dir)?;
    let bytes = std::fs::read(segment_path(wal_dir, seqs[0]))?;
    decode_header(&bytes)
        .ok_or_else(|| DurableError::corrupt(format!("bad header in segment {:08}.wal", seqs[0])))
}

fn read_frames(wal_dir: &Path, from_lsn: u64) -> Result<Vec<TailFrame>, DurableError> {
    let seqs = sorted_segments(wal_dir)?;
    let last_idx = seqs.len() - 1;
    let mut frames = Vec::new();
    let mut expected_base: Option<u64> = None;
    let mut next_lsn = 0u64;
    for (i, &seq) in seqs.iter().enumerate() {
        let is_last = i == last_idx;
        let bytes = std::fs::read(segment_path(wal_dir, seq))?;
        let base = match decode_header(&bytes) {
            Some(b) => b,
            // A torn header can only be the residue of a crashed
            // rotation on the final segment: nothing durable follows.
            None if is_last => break,
            None => {
                return Err(DurableError::corrupt(format!(
                    "bad header in non-final segment {seq:08}.wal"
                )))
            }
        };
        if i == 0 && from_lsn < base {
            return Err(DurableError::Pruned {
                oldest_available: base,
            });
        }
        if let Some(expect) = expected_base {
            if base != expect {
                return Err(DurableError::corrupt(format!(
                    "segment {seq:08}.wal starts at LSN {base}, expected {expect}"
                )));
            }
        }
        let scan = frame::scan(&bytes[SEGMENT_HEADER..]);
        if scan.torn && !is_last {
            return Err(DurableError::corrupt(format!(
                "corrupt frame mid-log in segment {seq:08}.wal"
            )));
        }
        next_lsn = base + scan.payloads.len() as u64;
        for (k, payload) in scan.payloads.into_iter().enumerate() {
            let lsn = base + k as u64;
            if lsn >= from_lsn {
                frames.push(TailFrame {
                    lsn,
                    crc: crc32(&payload),
                    payload,
                });
            }
        }
        expected_base = Some(next_lsn);
    }
    if from_lsn > next_lsn {
        return Err(DurableError::corrupt(format!(
            "tail requested from future LSN {from_lsn} (log ends before {next_lsn})"
        )));
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mvolap_wal_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_reopen_roundtrip() {
        let dir = tmp("roundtrip");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 1 << 20, &mut io).unwrap();
        assert_eq!(wal.append(b"alpha", &mut io).unwrap(), 1);
        assert_eq!(wal.append(b"beta", &mut io).unwrap(), 2);
        drop(wal);
        let opened = Wal::open(&dir, 1 << 20, &mut io).unwrap();
        assert!(!opened.repaired);
        assert_eq!(opened.wal.next_lsn(), 3);
        let got: Vec<_> = opened
            .records
            .iter()
            .map(|r| (r.lsn, r.payload.clone()))
            .collect();
        assert_eq!(got, vec![(1, b"alpha".to_vec()), (2, b"beta".to_vec())]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_spans_segments_and_lsns_stay_sequential() {
        let dir = tmp("rotate");
        let mut io = Io::plain();
        // Tiny threshold: every record rotates.
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..10u64 {
            let lsn = wal
                .append(format!("record-{i:04}").as_bytes(), &mut io)
                .unwrap();
            assert_eq!(lsn, i + 1);
        }
        drop(wal);
        let segs = std::fs::read_dir(dir.join("wal")).unwrap().count();
        assert!(segs > 1, "expected rotation, got {segs} segment(s)");
        let opened = Wal::open(&dir, 64, &mut io).unwrap();
        assert_eq!(opened.records.len(), 10);
        for (i, r) in opened.records.iter().enumerate() {
            assert_eq!(r.lsn, i as u64 + 1);
        }
        assert_eq!(opened.wal.next_lsn(), 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 1 << 20, &mut io).unwrap();
        wal.append(b"keep me", &mut io).unwrap();
        wal.append(b"whole", &mut io).unwrap();
        drop(wal);
        // Simulate a torn third append: half a frame at the tail.
        let path = dir.join("wal").join("00000001.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = frame::encode(b"torn record");
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let opened = Wal::open(&dir, 1 << 20, &mut io).unwrap();
        assert!(opened.repaired);
        assert_eq!(opened.records.len(), 2);
        assert_eq!(opened.wal.next_lsn(), 3);
        // The file itself must have been repaired on disk.
        let fixed = std::fs::read(&path).unwrap();
        assert_eq!(frame::scan(&fixed[SEGMENT_HEADER..]).payloads.len(), 2);
        assert!(!frame::scan(&fixed[SEGMENT_HEADER..]).torn);

        // And a subsequent append continues cleanly.
        let mut wal = opened.wal;
        assert_eq!(wal.append(b"after repair", &mut io).unwrap(), 3);
        let reopened = Wal::open(&dir, 1 << 20, &mut io).unwrap();
        assert_eq!(reopened.records.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_log_corruption_is_fatal() {
        let dir = tmp("midlog");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..6u64 {
            wal.append(format!("record-{i}").as_bytes(), &mut io)
                .unwrap();
        }
        drop(wal);
        // Flip a byte inside the FIRST segment's frame area.
        let path = dir.join("wal").join("00000001.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = SEGMENT_HEADER + frame::HEADER + 1;
        bytes[at] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match Wal::open(&dir, 64, &mut io) {
            Err(DurableError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_segment_is_fatal() {
        let dir = tmp("gap");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..8u64 {
            wal.append(format!("record-{i}").as_bytes(), &mut io)
                .unwrap();
        }
        drop(wal);
        let segs: Vec<_> = std::fs::read_dir(dir.join("wal"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(segs.len() >= 3, "need >=3 segments, got {}", segs.len());
        // Remove a middle segment.
        let mut names: Vec<_> = segs.clone();
        names.sort();
        std::fs::remove_file(&names[1]).unwrap();
        match Wal::open(&dir, 64, &mut io) {
            Err(DurableError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_from_cuts_the_suffix_across_segments() {
        let dir = tmp("truncate");
        let mut io = Io::plain();
        // Tiny threshold: records spread over several segments.
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..9u64 {
            wal.append(format!("record-{i}").as_bytes(), &mut io)
                .unwrap();
        }
        drop(wal);

        // Cut at 4: records 4..=9 go, later segments are unlinked and
        // the one holding the cut is shortened in place.
        assert_eq!(truncate_from(&dir, 4, &mut io).unwrap(), 6);
        let opened = Wal::open(&dir, 64, &mut io).unwrap();
        assert!(!opened.repaired);
        assert_eq!(opened.wal.next_lsn(), 4);
        let got: Vec<_> = opened.records.iter().map(|r| r.lsn).collect();
        assert_eq!(got, vec![1, 2, 3]);

        // Appends continue from the cut.
        let mut wal = opened.wal;
        assert_eq!(wal.append(b"regrown", &mut io).unwrap(), 4);
        drop(wal);

        // A cut at or past the head removes nothing.
        assert_eq!(truncate_from(&dir, 5, &mut io).unwrap(), 0);
        assert_eq!(truncate_from(&dir, 99, &mut io).unwrap(), 0);

        // Cutting everything back to LSN 1 leaves a bare first segment.
        assert_eq!(truncate_from(&dir, 1, &mut io).unwrap(), 4);
        let opened = Wal::open(&dir, 64, &mut io).unwrap();
        assert_eq!(opened.wal.next_lsn(), 1);
        assert!(opened.records.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncate_from_refuses_cuts_below_the_oldest_record() {
        let dir = tmp("truncate_pruned");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..9u64 {
            wal.append(format!("record-{i}").as_bytes(), &mut io)
                .unwrap();
        }
        wal.prune(wal.next_lsn(), &mut io).unwrap();
        let oldest = wal.oldest_lsn().unwrap();
        assert!(oldest > 1);
        drop(wal);
        match truncate_from(&dir, 1, &mut io) {
            Err(DurableError::Pruned { oldest_available }) => {
                assert_eq!(oldest_available, oldest)
            }
            other => panic!("expected Pruned, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_removes_only_fully_covered_inactive_segments() {
        let dir = tmp("prune");
        let mut io = Io::plain();
        let mut wal = Wal::create(&dir, 64, &mut io).unwrap();
        for i in 0..9u64 {
            wal.append(format!("record-{i}").as_bytes(), &mut io)
                .unwrap();
        }
        let removed = wal.prune(wal.next_lsn(), &mut io).unwrap();
        assert!(removed > 0);
        drop(wal);
        let opened = Wal::open(&dir, 64, &mut io).unwrap();
        // Remaining records are a suffix ending at LSN 9.
        assert_eq!(opened.records.last().unwrap().lsn, 9);
        assert_eq!(opened.wal.next_lsn(), 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
