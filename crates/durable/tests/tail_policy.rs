//! Integration tests for the replication tap (`tail`/`frames_from`),
//! the typed `Pruned` error, checkpoint policies and snapshot-based
//! store creation.

use std::path::{Path, PathBuf};

use mvolap_core::case_study;
use mvolap_core::persist::write_tmd;
use mvolap_durable::checksum::crc32;
use mvolap_durable::{
    wal, CheckpointPolicy, DurableError, DurableTmd, FactRow, Io, Options, WalRecord,
};
use mvolap_temporal::Instant;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_tail_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_opts(policy: CheckpointPolicy) -> Options {
    Options {
        segment_bytes: 256,
        policy,
        prune_on_checkpoint: true,
    }
}

fn load(store: &mut DurableTmd, coord: mvolap_core::MemberVersionId, month: u32, v: f64) {
    store
        .append_facts(vec![FactRow {
            coords: vec![coord],
            at: Instant::ym(2003, month),
            values: vec![v],
        }])
        .unwrap();
}

fn ckpt_count(dir: &Path) -> usize {
    let cdir = dir.join("checkpoint");
    if !cdir.is_dir() {
        return 0;
    }
    std::fs::read_dir(cdir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .starts_with("ckpt-")
        })
        .count()
}

/// `tail` streams every frame from any LSN: contiguous LSNs, CRCs that
/// match the payloads, payloads that decode and re-encode canonically.
#[test]
fn tail_streams_crc_framed_records_from_any_lsn() {
    let dir = tmp("stream");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        small_opts(CheckpointPolicy::manual()),
        Io::plain(),
    )
    .unwrap();
    for m in 1..=6 {
        load(&mut store, cs.brian, m, f64::from(m));
    }
    let head = store.wal_position();
    assert_eq!(head, 8, "bootstrap + 6 records");

    let frames = store.tail(1).unwrap();
    assert_eq!(frames.len(), 7);
    for (i, f) in frames.iter().enumerate() {
        assert_eq!(f.lsn, 1 + i as u64, "contiguous LSNs");
        assert_eq!(f.crc, crc32(&f.payload), "frame CRC covers the payload");
        let rec = WalRecord::decode(&f.payload).unwrap();
        assert_eq!(rec.encode(), f.payload, "canonical encoding");
    }
    assert!(matches!(
        WalRecord::decode(&frames[0].payload).unwrap(),
        WalRecord::Bootstrap { .. }
    ));

    // Mid-log and head positions, through both the handle and the
    // module-level reader.
    assert_eq!(store.tail(5).unwrap().len(), 3);
    assert_eq!(store.tail(head).unwrap().len(), 0, "tail at head is empty");
    assert_eq!(wal::tail(&dir, 3).unwrap(), store.tail(3).unwrap());

    // Past the head is corruption-class, not an empty answer.
    assert!(matches!(
        store.tail(head + 1),
        Err(DurableError::Corrupt { .. })
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Pruning makes old LSNs unavailable with the *typed* error carrying
/// the oldest still-served LSN — not a generic corruption report.
#[test]
fn pruned_tail_reports_oldest_available() {
    let dir = tmp("pruned");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        small_opts(CheckpointPolicy::manual()),
        Io::plain(),
    )
    .unwrap();
    for m in 1..=8 {
        load(&mut store, cs.brian, m, 1.0);
    }
    store.checkpoint().unwrap();
    let oldest = store.oldest_lsn().unwrap();
    assert!(oldest > 1, "256-byte segments must have rotated and pruned");

    match store.tail(1) {
        Err(DurableError::Pruned { oldest_available }) => {
            assert_eq!(oldest_available, oldest);
        }
        other => panic!("expected Pruned, got {other:?}"),
    }
    match wal::tail(&dir, oldest - 1) {
        Err(DurableError::Pruned { oldest_available }) => {
            assert_eq!(oldest_available, oldest);
        }
        other => panic!("expected Pruned, got {other:?}"),
    }
    // The oldest surviving LSN itself is served.
    let frames = store.tail(oldest).unwrap();
    assert_eq!(frames.first().map(|f| f.lsn), Some(oldest));
    std::fs::remove_dir_all(&dir).ok();
}

/// `every_records` checkpoints automatically after N commits.
#[test]
fn policy_every_records_checkpoints_automatically() {
    let dir = tmp("every");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        small_opts(CheckpointPolicy::every_records(3)),
        Io::plain(),
    )
    .unwrap();
    load(&mut store, cs.brian, 1, 1.0);
    load(&mut store, cs.brian, 2, 2.0);
    assert_eq!(ckpt_count(&dir), 0, "below threshold: no checkpoint yet");
    load(&mut store, cs.brian, 3, 3.0);
    assert_eq!(ckpt_count(&dir), 1, "third commit crosses the threshold");
    std::fs::remove_dir_all(&dir).ok();
}

/// `max_tail_bytes` bounds the uncheckpointed tail by size: with a
/// 1-byte budget every commit (whose tail includes the bootstrap)
/// checkpoints immediately.
#[test]
fn policy_max_tail_bytes_checkpoints_on_size() {
    let dir = tmp("bytes");
    let cs = case_study::case_study();
    let policy = CheckpointPolicy {
        max_tail_bytes: 1,
        ..CheckpointPolicy::manual()
    };
    let mut store =
        DurableTmd::create_with(&dir, cs.tmd.clone(), small_opts(policy), Io::plain()).unwrap();
    assert_eq!(ckpt_count(&dir), 0, "creation alone does not checkpoint");
    load(&mut store, cs.brian, 1, 1.0);
    assert_eq!(ckpt_count(&dir), 1, "first commit crosses the byte budget");
    std::fs::remove_dir_all(&dir).ok();
}

/// `max_tail_ops` counts records replayed at open: a store recovered
/// with a long tail checkpoints promptly on its next commit instead of
/// re-replaying that tail forever.
#[test]
fn policy_max_tail_ops_covers_recovered_tail() {
    let dir = tmp("ops");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        small_opts(CheckpointPolicy::manual()),
        Io::plain(),
    )
    .unwrap();
    for m in 1..=5 {
        load(&mut store, cs.brian, m, 1.0);
    }
    drop(store);
    assert_eq!(ckpt_count(&dir), 0);

    let policy = CheckpointPolicy {
        max_tail_ops: 4,
        ..CheckpointPolicy::manual()
    };
    let mut reopened = DurableTmd::open_with(&dir, small_opts(policy), Io::plain()).unwrap();
    load(&mut reopened, cs.brian, 6, 6.0);
    assert_eq!(
        ckpt_count(&dir),
        1,
        "the replayed tail counts toward max_tail_ops"
    );
    // And the checkpoint actually covers it: a fresh open replays the
    // checkpoint + empty-ish tail to the same state.
    let before = {
        let mut buf = Vec::new();
        write_tmd(reopened.schema(), &mut buf).unwrap();
        buf
    };
    drop(reopened);
    let again = DurableTmd::open(&dir).unwrap();
    let after = {
        let mut buf = Vec::new();
        write_tmd(again.schema(), &mut buf).unwrap();
        buf
    };
    assert_eq!(before, after);
    std::fs::remove_dir_all(&dir).ok();
}

/// `max_tail_age_ms` checkpoints by wall clock: a tail that sits
/// uncheckpointed past the age budget is compacted by the periodic
/// `maybe_checkpoint` driver, not by further commits. Driven by a
/// manual [`mvolap_durable::TimeSource`] so the test is deterministic.
#[test]
fn policy_max_tail_age_checkpoints_by_wall_clock() {
    let dir = tmp("age");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        small_opts(CheckpointPolicy::max_tail_age(1_000)),
        Io::plain(),
    )
    .unwrap();
    let clock = mvolap_durable::TimeSource::manual(0);
    store.set_time_source(clock.clone());

    load(&mut store, cs.brian, 1, 1.0);
    assert_eq!(ckpt_count(&dir), 0, "commit alone does not checkpoint");
    clock.advance(999);
    assert!(store.maybe_checkpoint().unwrap().is_none(), "under budget");
    clock.advance(1);
    let id = store
        .maybe_checkpoint()
        .unwrap()
        .expect("age budget crossed");
    assert_eq!(id.next_lsn, store.wal_position());
    assert_eq!(ckpt_count(&dir), 1);

    // The tail is empty again: no further time-based checkpoints until
    // something new is journaled.
    clock.advance(10_000);
    assert!(store.maybe_checkpoint().unwrap().is_none(), "empty tail");
    load(&mut store, cs.brian, 2, 2.0);
    clock.advance(1_000);
    assert!(store.maybe_checkpoint().unwrap().is_some(), "new tail aged");
    assert_eq!(ckpt_count(&dir), 1, "older checkpoints pruned");
    std::fs::remove_dir_all(&dir).ok();
}

/// `create_from_snapshot` starts a store at an arbitrary LSN with the
/// checkpoint as its bootstrap: no bootstrap WAL record, correct
/// positions, recoverable, and positions below the base are `Pruned`.
#[test]
fn create_from_snapshot_aligns_lsns() {
    let dir = tmp("snapshot");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create_from_snapshot(
        &dir,
        cs.tmd.clone(),
        10,
        small_opts(CheckpointPolicy::manual()),
        Io::plain(),
    )
    .unwrap();
    assert_eq!(store.wal_position(), 10);
    assert_eq!(store.oldest_lsn().unwrap(), 10);
    assert_eq!(store.tail(10).unwrap(), vec![]);
    match store.tail(4) {
        Err(DurableError::Pruned { oldest_available }) => assert_eq!(oldest_available, 10),
        other => panic!("expected Pruned, got {other:?}"),
    }

    load(&mut store, cs.brian, 1, 42.0);
    assert_eq!(store.wal_position(), 11);
    let frames = store.tail(10).unwrap();
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].lsn, 10);

    let before = {
        let mut buf = Vec::new();
        write_tmd(store.schema(), &mut buf).unwrap();
        buf
    };
    drop(store);
    let reopened = DurableTmd::open(&dir).unwrap();
    assert_eq!(reopened.wal_position(), 11);
    let after = {
        let mut buf = Vec::new();
        write_tmd(reopened.schema(), &mut buf).unwrap();
        buf
    };
    assert_eq!(before, after);

    // Refuses to clobber an existing store.
    assert!(DurableTmd::create_from_snapshot(
        &dir,
        cs.tmd,
        20,
        small_opts(CheckpointPolicy::manual()),
        Io::plain(),
    )
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
