//! Crash-recovery integration tests: the acceptance gate of the
//! durability subsystem.
//!
//! The central test runs [`mvolap_durable::crash_sweep`]: a seeded
//! evolution + load workload is executed once fault-free to enumerate
//! every I/O primitive, then re-executed with a simulated crash (torn
//! write included) at each of those ≥ 200 points; every crashed
//! directory must recover to *exactly* a prefix of the applied
//! operation sequence — verified by bit-exact snapshot comparison plus
//! an aggregate-query fingerprint.

use std::collections::BTreeMap;
use std::path::PathBuf;

use mvolap_core::case_study;
use mvolap_core::persist::write_tmd;
use mvolap_durable::{crash_sweep, group_crash_sweep, DurableError, DurableTmd, FactRow};
use mvolap_temporal::Instant;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mvolap_crash_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn snapshot(tmd: &mvolap_core::Tmd) -> Vec<u8> {
    let mut buf = Vec::new();
    write_tmd(tmd, &mut buf).unwrap();
    buf
}

/// The acceptance criterion: every crash point of the seeded workload
/// recovers prefix-consistently, and there are at least 200 of them.
#[test]
fn crash_sweep_recovers_a_prefix_at_every_point() {
    let dir = tmp("sweep");
    let outcome = crash_sweep(&dir, 0xD15C_0B0B, 110).expect("sweep invariant violated");
    assert!(
        outcome.crash_points >= 200,
        "need >= 200 crash points, workload produced {}",
        outcome.crash_points
    );
    assert_eq!(outcome.records, 110);
    // Sanity on the distribution: most crashes land mid-stream, some
    // surface a durable-but-unacknowledged record.
    assert!(
        outcome.recovered_at_committed > 0 && outcome.recovered_ahead > 0,
        "degenerate sweep: {outcome:?}"
    );
    assert_eq!(
        outcome.recovered_empty + outcome.recovered_at_committed + outcome.recovered_ahead,
        outcome.crash_points
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A second seed shifts every crash point onto different byte
/// boundaries (different torn-write cuts, different record mix).
#[test]
fn crash_sweep_holds_under_a_different_seed() {
    let dir = tmp("sweep2");
    let outcome = crash_sweep(&dir, 42, 60).expect("sweep invariant violated");
    assert!(outcome.crash_points >= 120);
    std::fs::remove_dir_all(&dir).ok();
}

/// The group-commit path (unsynced appends, one shared fsync per
/// batch) recovers prefix-consistently at every crash point too: a
/// crash may drop any suffix of the unacknowledged batch, never a
/// synced record, never a half-applied one.
#[test]
fn group_commit_crash_sweep_recovers_a_prefix_at_every_point() {
    let dir = tmp("group_sweep");
    let outcome = group_crash_sweep(&dir, 0xBA7C_4ED0, 90, 4).expect("sweep invariant violated");
    assert!(
        outcome.crash_points >= 120,
        "need >= 120 crash points, workload produced {}",
        outcome.crash_points
    );
    assert_eq!(outcome.records, 90);
    assert!(
        outcome.recovered_at_committed > 0 && outcome.recovered_ahead > 0,
        "degenerate sweep: {outcome:?}"
    );
    assert_eq!(
        outcome.recovered_empty + outcome.recovered_at_committed + outcome.recovered_ahead,
        outcome.crash_points
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Basic lifecycle without faults: create, evolve, load, reopen.
#[test]
fn journaled_operations_survive_reopen() {
    let dir = tmp("lifecycle");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    // One evolution + one fact batch through the journal.
    store
        .transform_member(
            cs.org,
            cs.brian,
            "Dpt.Brian-renamed",
            BTreeMap::new(),
            Instant::ym(2004, 1),
        )
        .unwrap();
    let renamed = {
        let d = &store.schema().dimensions()[cs.org.0 as usize];
        d.version_named_at("Dpt.Brian-renamed", Instant::ym(2004, 2))
            .unwrap()
            .id
    };
    store
        .append_facts(vec![FactRow {
            coords: vec![renamed],
            at: Instant::ym(2004, 6),
            values: vec![75.0],
        }])
        .unwrap();
    let before = snapshot(store.schema());
    let lsn = store.wal_position();
    drop(store);

    let reopened = DurableTmd::open(&dir).unwrap();
    assert_eq!(snapshot(reopened.schema()), before);
    assert_eq!(reopened.wal_position(), lsn);
    std::fs::remove_dir_all(&dir).ok();
}

/// Checkpoints bound recovery work and prune the log; recovery from
/// checkpoint + tail equals recovery from the full log.
#[test]
fn checkpoint_plus_tail_equals_full_replay() {
    let dir = tmp("ckpt_tail");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    store
        .append_facts(vec![FactRow {
            coords: vec![cs.brian],
            at: Instant::ym(2003, 7),
            values: vec![10.0],
        }])
        .unwrap();
    store.checkpoint().unwrap();
    // Post-checkpoint tail.
    store
        .append_facts(vec![FactRow {
            coords: vec![cs.paul],
            at: Instant::ym(2003, 8),
            values: vec![20.0],
        }])
        .unwrap();
    let before = snapshot(store.schema());
    drop(store);
    let reopened = DurableTmd::open(&dir).unwrap();
    assert_eq!(snapshot(reopened.schema()), before);
    std::fs::remove_dir_all(&dir).ok();
}

/// Validation failures are rejected *before* anything reaches the log:
/// the store stays usable and a reopen sees no trace of them.
#[test]
fn invalid_operations_leave_no_journal_trace() {
    let dir = tmp("invalid");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    let lsn = store.wal_position();
    // Non-leaf coordinate: rejected by fact validation.
    let err = store
        .append_facts(vec![FactRow {
            coords: vec![cs.sales],
            at: Instant::ym(2003, 6),
            values: vec![1.0],
        }])
        .unwrap_err();
    assert!(matches!(err, DurableError::Core(_)));
    // Deleting an unknown member: rejected by the clone validation.
    let err = store
        .delete_member(
            cs.org,
            mvolap_core::MemberVersionId(999),
            Instant::ym(2004, 1),
        )
        .unwrap_err();
    assert!(matches!(err, DurableError::Core(_)));
    assert!(!store.is_poisoned());
    assert_eq!(store.wal_position(), lsn, "nothing may reach the log");
    // The store still works.
    store
        .append_facts(vec![FactRow {
            coords: vec![cs.brian],
            at: Instant::ym(2003, 6),
            values: vec![5.0],
        }])
        .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The WAL journals the confidence-change operator and replays it.
#[test]
fn confidence_change_survives_recovery() {
    let dir = tmp("confidence");
    let cs = case_study::case_study();
    let mut store = DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    // The case study maps Jones -> Bill with an approximate 0.4 share;
    // revise it to an exact 0.45.
    store
        .change_confidence(
            cs.org,
            cs.jones,
            cs.bill,
            vec![mvolap_core::MeasureMapping {
                func: mvolap_core::MappingFunction::Scale(0.45),
                confidence: mvolap_core::Confidence::Exact,
            }],
            vec![mvolap_core::MeasureMapping::EXACT_IDENTITY],
        )
        .unwrap();
    let before = snapshot(store.schema());
    drop(store);
    let reopened = DurableTmd::open(&dir).unwrap();
    assert_eq!(snapshot(reopened.schema()), before);
    std::fs::remove_dir_all(&dir).ok();
}

/// Opening an empty or missing directory reports `NoStore`, not a
/// panic or a silently empty warehouse.
#[test]
fn open_without_store_is_explicit() {
    let dir = tmp("nostore");
    assert!(matches!(DurableTmd::open(&dir), Err(DurableError::NoStore)));
    std::fs::remove_dir_all(&dir).ok();
}

/// Creating over an existing store is refused.
#[test]
fn create_refuses_to_clobber() {
    let dir = tmp("clobber");
    let cs = case_study::case_study();
    DurableTmd::create(&dir, cs.tmd.clone()).unwrap();
    assert!(DurableTmd::create(&dir, cs.tmd).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// The membership log (journaled `Reconfig` records) survives both
/// checkpoint pruning — via the membership sidecar written before the
/// prune — and plain reopen via the WAL scan, deduped by LSN.
#[test]
fn membership_log_survives_checkpoint_pruning_and_reopen() {
    use mvolap_durable::WalRecord;

    let dir = tmp("membership");
    let cs = case_study::case_study();
    let opts = mvolap_durable::Options {
        // Tiny segments so the checkpoint's prune actually drops the
        // segment holding the reconfig frame.
        segment_bytes: 128,
        policy: mvolap_durable::CheckpointPolicy::manual(),
        prune_on_checkpoint: true,
    };
    let mut store = DurableTmd::create_with(
        &dir,
        cs.tmd.clone(),
        opts.clone(),
        mvolap_durable::Io::plain(),
    )
    .unwrap();
    store
        .append_facts(vec![FactRow {
            coords: vec![cs.brian],
            at: Instant::ym(2003, 7),
            values: vec![10.0],
        }])
        .unwrap();
    let l_add = store
        .apply(WalRecord::Reconfig {
            epoch: 1,
            add: true,
            member: "m3".into(),
            addr: "127.0.0.1:9001".into(),
        })
        .unwrap();
    // Enough appends to rotate the segment holding the add out of the
    // active position, so the checkpoint's prune can drop it.
    for month in 1..=10 {
        store
            .append_facts(vec![FactRow {
                coords: vec![cs.paul],
                at: Instant::ym(2004, month),
                values: vec![20.0],
            }])
            .unwrap();
    }
    // The checkpoint prunes the WAL frames holding the add; only the
    // sidecar remembers it now.
    store.checkpoint().unwrap();
    assert!(
        store.oldest_lsn().unwrap() > l_add,
        "checkpoint should have pruned the reconfig frame"
    );
    let l_remove = store
        .apply(WalRecord::Reconfig {
            epoch: 2,
            add: false,
            member: "m1".into(),
            addr: String::new(),
        })
        .unwrap();
    let in_memory = store.membership_log().to_vec();
    drop(store);

    let reopened = DurableTmd::open_with(&dir, opts, mvolap_durable::Io::plain()).unwrap();
    let log = reopened.membership_log();
    assert_eq!(log, &in_memory[..], "reopen must rebuild the same log");
    assert_eq!(log.len(), 2);
    assert_eq!(
        (log[0].lsn, log[0].add, log[0].member.as_str()),
        (l_add, true, "m3")
    );
    assert_eq!(log[0].addr, "127.0.0.1:9001");
    assert_eq!(
        (log[1].lsn, log[1].add, log[1].member.as_str()),
        (l_remove, false, "m1")
    );
    std::fs::remove_dir_all(&dir).ok();
}
