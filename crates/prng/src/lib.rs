//! # mvolap-prng
//!
//! A small, self-contained deterministic pseudo-random number generator
//! plus helpers for randomized property checks. The container this repo
//! builds in has no network access to a crates registry, so the external
//! `rand`/`proptest` crates cannot be fetched; this crate supplies the
//! subset the workload generators, benches and property tests need.
//!
//! The generator is **xoshiro256++** seeded through **SplitMix64** — the
//! standard, well-analysed combination. It is *not* cryptographic; it is
//! for reproducible synthetic workloads and tests only. Equal seeds
//! produce equal sequences forever (the sequence is part of the repo's
//! determinism contract: benchmark configs and regression seeds rely on
//! it).

/// A deterministic PRNG (xoshiro256++ seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64_unit(&mut self) -> f64 {
        // 53 high bits scaled into the unit interval.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`. `lo` must be `< hi`.
    #[inline]
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64_unit()
    }

    /// A uniform `u64` in `[0, bound)` (Lemire-style; debiased by
    /// rejection). `bound` must be non-zero.
    #[inline]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "zero bound");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.usize_below(hi - lo)
    }

    /// A uniform `i64` in `[lo, hi)`.
    #[inline]
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.u64_below((hi - lo) as u64) as i64
    }

    /// A uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.u64_below(u64::from(hi - lo)) as u32
    }

    /// A fair coin flip.
    #[inline]
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.usize_below(slice.len())])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.usize_below(i + 1));
        }
    }
}

/// Runs `body` for `cases` deterministic pseudo-random cases. Each case
/// gets its own [`Rng`] derived from `seed` and the case index, so a
/// failing case can be replayed in isolation by seeding `Rng` directly
/// with the reported derived seed.
///
/// The minimal stand-in for a `proptest!` block: strategies become plain
/// draws from the per-case generator, assertions stay ordinary
/// `assert!`s.
///
/// # Panics
///
/// Re-raises the panic of a failing `body`, after printing the case
/// index and derived seed for replay.
pub fn check(cases: u64, seed: u64, body: impl Fn(&mut Rng)) {
    for case in 0..cases {
        let derived = seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Rng::seed_from_u64(derived);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("randomized check failed at case {case}/{cases} (derived seed {derived:#x})");
            std::panic::resume_unwind(panic);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_equal_seeds_equal_streams() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = Rng::seed_from_u64(7);
        let mut below_half = 0usize;
        for _ in 0..10_000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                below_half += 1;
            }
        }
        // Crude uniformity check: the half-split is near 50%.
        assert!((4_500..5_500).contains(&below_half), "{below_half}");
    }

    #[test]
    fn bounded_draws_cover_their_range() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.usize_below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.i64_in(-5, 5);
            assert!((-5..5).contains(&v));
            let u = rng.usize_in(3, 6);
            assert!((3..6).contains(&u));
            let f = rng.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_uniformish() {
        let mut rng = Rng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());

        assert_eq!(rng.choose(&[] as &[u8]), None);
        let items = [1, 2, 3, 4];
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[*rng.choose(&items).unwrap() - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn check_runs_all_cases_and_reports_failures() {
        // `check` takes Fn, so count through a cell.
        let counter = std::cell::Cell::new(0u64);
        check(16, 123, |_| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), 16);

        let failed = std::panic::catch_unwind(|| {
            check(4, 1, |rng| assert!(rng.f64_unit() < -1.0));
        });
        assert!(failed.is_err());
    }
}
