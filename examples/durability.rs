//! Durability walkthrough: evolve → crash → recover → query matches.
//!
//! Opens a durable store on the paper's case study, journals an
//! evolution and a fact load, takes a checkpoint, keeps loading — then
//! simulates a crash with a torn write in the middle of an append and
//! shows that recovery reproduces exactly the acknowledged state: the
//! paper's Q1 query returns the same rows before the crash and after
//! recovery.
//!
//! ```text
//! cargo run --example durability
//! ```

use mvolap::core::case_study;
use mvolap::durable::store::faulty_io;
use mvolap::durable::{DurableTmd, FactRow, Options};
use mvolap::prelude::*;

const Q1: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";

fn render(rs: &mvolap::core::ResultSet) -> Vec<String> {
    rs.rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| match c.value {
                    Some(v) => format!("{v} ({:?})", c.confidence),
                    None => format!("? ({:?})", c.confidence),
                })
                .collect();
            format!("{} | {} | {}", r.time, r.keys.join(", "), cells.join(", "))
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("mvolap_durability_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Create the store: the case-study schema becomes the bootstrap
    //    record of the write-ahead log.
    let cs = case_study::case_study();
    let mut store = DurableTmd::create(&dir, cs.tmd).expect("create store");
    println!("created durable store at {}", dir.display());
    println!("  next LSN after bootstrap: {}", store.wal_position());

    // 2. Evolve and load through the journal: every operation is
    //    validated, appended to the WAL, fsync'd, then applied.
    store
        .transform_member(
            cs.org,
            cs.brian,
            "Dpt.Brian-NanoTech",
            std::collections::BTreeMap::new(),
            Instant::ym(2004, 1),
        )
        .expect("transform");
    store
        .append_facts(vec![
            FactRow {
                coords: vec![cs.bill],
                at: Instant::ym(2003, 5),
                values: vec![55.0],
            },
            FactRow {
                coords: vec![cs.paul],
                at: Instant::ym(2003, 5),
                values: vec![80.0],
            },
        ])
        .expect("fact batch");
    println!(
        "  journaled 1 evolution + 1 fact batch, next LSN: {}",
        store.wal_position()
    );

    // 3. Checkpoint: atomic snapshot (temp-file + rename), then the
    //    covered WAL prefix is pruned. Recovery cost is now bounded by
    //    the tail.
    let ckpt = store.checkpoint().expect("checkpoint");
    println!(
        "  checkpoint at generation {}, next LSN {}",
        ckpt.generation, ckpt.next_lsn
    );

    // 4. Keep working past the checkpoint.
    store
        .append_facts(vec![FactRow {
            coords: vec![cs.smith],
            at: Instant::ym(2003, 6),
            values: vec![40.0],
        }])
        .expect("post-checkpoint batch");

    let before = render(&mvolap::query::run(store.schema(), Q1).expect("query"));
    println!("\nQ1 before the crash:");
    for line in &before {
        println!("  {line}");
    }
    drop(store);

    // 5. Crash. Reopen with a fault-injecting I/O layer that tears the
    //    very next write: the append fails mid-frame, exactly as if the
    //    machine lost power with half a record on disk.
    let mut crashing =
        DurableTmd::open_with(&dir, Options::default(), faulty_io(0, 0xBAD_5EED)).expect("reopen");
    let err = crashing
        .append_facts(vec![FactRow {
            coords: vec![cs.smith],
            at: Instant::ym(2003, 7),
            values: vec![999.0],
        }])
        .expect_err("the injected fault must fire");
    println!("\nsimulated crash during append: {err}");
    drop(crashing); // the torn frame is now on disk

    // 6. Recover: newest checkpoint + replay of the intact log tail;
    //    the torn frame fails its CRC and is truncated away.
    let recovered = DurableTmd::open(&dir).expect("recovery");
    let after = render(&mvolap::query::run(recovered.schema(), Q1).expect("query"));
    println!("\nQ1 after recovery:");
    for line in &after {
        println!("  {line}");
    }

    assert_eq!(
        after, before,
        "recovery must reproduce exactly the acknowledged state"
    );
    println!("\nrecovered state matches: every acknowledged operation survived, the torn append did not.");

    std::fs::remove_dir_all(&dir).ok();
}
