//! The §5.1 physical architecture: Temporal Data Warehouse →
//! MultiVersion Data Warehouse → cube, as relational tables.
//!
//! Exports the case study to the three dimension layouts §5.1 discusses
//! (star, snowflake, parent-child), materialises the §4.1 logical
//! encoding (TMP as a flat dimension, confidence factors as coded
//! measures), and prints the mapping-relations metadata table (Table 12
//! layout) and the inferred multiversion fact table.
//!
//! ```text
//! cargo run --example warehouse_export
//! ```

use mvolap::core::case_study::case_study_two_measures;
use mvolap::core::logical;
use mvolap::storage::render::render_table;

fn main() {
    let cs = case_study_two_measures();

    println!("== Star layout (denormalised; reclassification = new row, §4.2) ==");
    let star = logical::export_star(&cs.tmd, cs.org).expect("exports");
    println!("{}", render_table(&star));

    println!("== Snowflake layout (one table per level) ==");
    for t in logical::export_snowflake(&cs.tmd, cs.org).expect("exports") {
        println!("-- {} --", t.name());
        println!("{}", render_table(&t));
    }

    println!("== Parent-child layout (single-hierarchy only, §5.1) ==");
    let pc = logical::export_parent_child(&cs.tmd, cs.org).expect("exports");
    println!("{}", render_table(&pc));

    println!("== The whole MultiVersion Data Warehouse ==");
    let warehouse = logical::build_multiversion_warehouse(&cs.tmd).expect("builds");
    for name in warehouse.table_names() {
        let table = warehouse.get(name).expect("listed table exists");
        println!("  {:<28} {:>6} rows", name, table.len());
    }
    println!(
        "\n  total: {} rows, ~{} KiB heap",
        warehouse.total_rows(),
        warehouse.heap_bytes() / 1024
    );

    println!("\n== Mapping relations metadata (paper Table 12) ==");
    let t12 = logical::export_mapping_relations(&cs.tmd, cs.org).expect("exports");
    println!("{}", render_table(&t12));

    println!("== MultiVersion fact table (first rows; tmp_id 0 = tcm) ==");
    let fact = warehouse.get("fact_multiversion").expect("fact table");
    let preview = render_table(fact);
    for line in preview.lines().take(16) {
        println!("{line}");
    }
    println!("… ({} rows total)", fact.len());
}
