//! Networked replication walkthrough: a primary served over real TCP
//! on loopback, a follower syncing through the socket protocol,
//! promotion, and a fenced-write probe against the deposed server.
//!
//! The same steps as `examples/replication.rs`, but every frame crosses
//! a socket: the primary sits behind a [`ReplicaServer`], the follower
//! pulls hello → heartbeat/frames → ack round trips through a
//! [`NetClient`], and epoch fencing is enforced at the protocol layer —
//! a single `fence` request at a newer epoch deposes the server for
//! every later caller.
//!
//! ```text
//! cargo run --example net_replication
//! ```
//!
//! CI runs this binary as the networked-failover acceptance check: it
//! exits non-zero unless the promoted follower answers the paper's Q1
//! byte-identically to the primary it replaced.

use std::sync::{Arc, Mutex};

use mvolap::core::case_study;
use mvolap::durable::{DurableTmd, FactRow, Io, Options, WalRecord};
use mvolap::prelude::*;
use mvolap::replica::{
    sync_follower, Follower, NetAddr, NetClient, NetConfig, PrimaryNode, ReplicaError, ReplicaMsg,
    ReplicaServer, ServerConfig,
};

const Q1: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";

fn render(rs: &mvolap::core::ResultSet) -> Vec<String> {
    rs.rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| match c.value {
                    Some(v) => format!("{v} ({:?})", c.confidence),
                    None => format!("? ({:?})", c.confidence),
                })
                .collect();
            format!("{} | {} | {}", r.time, r.keys.join(", "), cells.join(", "))
        })
        .collect()
}

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_net_replication_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("temp dir");

    // 1. A primary on the paper's case study, served over loopback TCP.
    //    Port 0 lets the OS pick; the server reports the bound address.
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(
        &base.join("primary"),
        cs.tmd,
        Options::default(),
        Io::plain(),
    )
    .expect("create primary store");
    let primary = Arc::new(Mutex::new(PrimaryNode::from_store("primary", store, 0)));
    let mut server = ReplicaServer::spawn(
        &NetAddr::Tcp("127.0.0.1:0".into()),
        Arc::clone(&primary),
        ServerConfig::default(),
    )
    .expect("bind loopback server");
    let addr = server.addr().clone();
    println!("primary serving on {addr} from {}", base.display());

    // 2. Evolve and load on the primary while it is being served.
    {
        let mut p = primary.lock().expect("primary lock");
        p.apply(WalRecord::Create {
            dim: cs.org,
            name: "Dpt.NanoTech".into(),
            level: Some("Department".into()),
            at: Instant::ym(2004, 1),
            parents: vec![cs.rnd],
        })
        .expect("create member");
        p.apply(WalRecord::FactBatch {
            rows: vec![
                FactRow {
                    coords: vec![cs.bill],
                    at: Instant::ym(2003, 5),
                    values: vec![55.0],
                },
                FactRow {
                    coords: vec![cs.paul],
                    at: Instant::ym(2003, 5),
                    values: vec![80.0],
                },
            ],
        })
        .expect("fact batch");
    }

    // 3. A follower syncs through the socket: hello → heartbeat +
    //    frames → ack, one CRC frame per request and reply, until its
    //    log is a byte-identical copy of the primary's.
    let mut follower = Follower::create("f1", base.join("f1"), Options::default(), Io::plain());
    let mut client = NetClient::connect(addr.clone(), NetConfig::default());
    loop {
        let round = sync_follower(&mut client, &mut follower).expect("sync round");
        if round.caught_up() {
            break;
        }
    }
    println!(
        "  follower caught up at LSN {} (server acked {})",
        follower.next_lsn(),
        server.acked_lsn("f1"),
    );

    let before = {
        let p = primary.lock().expect("primary lock");
        render(&mvolap::query::run(p.schema(), Q1).expect("query"))
    };
    println!("\nQ1 on the primary:");
    for line in &before {
        println!("  {line}");
    }

    // 4. Fail over: the follower's store becomes a primary at epoch 1,
    //    and one fence request at the new epoch deposes the old server
    //    at the protocol layer — no shared memory, just the socket.
    let promoted_store = follower.into_primary_store().expect("promote follower");
    let promoted = PrimaryNode::from_store("f1", promoted_store, 1);
    let reply = client
        .request(&ReplicaMsg::Fence { epoch: 1 })
        .expect("fence rpc");
    assert_eq!(reply, vec![ReplicaMsg::Fence { epoch: 1 }]);
    println!(
        "\nf1 promoted to epoch {}; old server fenced over the wire",
        promoted.epoch()
    );

    // 5. The promoted follower answers Q1 byte-identically.
    let after = render(&mvolap::query::run(promoted.schema(), Q1).expect("query"));
    println!("\nQ1 on the promoted follower:");
    for line in &after {
        println!("  {line}");
    }
    assert_eq!(
        after, before,
        "failover must preserve every acknowledged answer"
    );

    // 6. Fenced-write probe: the deposed primary refuses the write with
    //    the typed error, and the server refuses every later caller —
    //    a freshly syncing follower gets the same typed refusal.
    let probe = primary
        .lock()
        .expect("primary lock")
        .apply(WalRecord::FactBatch {
            rows: vec![FactRow {
                coords: vec![cs.smith],
                at: Instant::ym(2003, 7),
                values: vec![999.0],
            }],
        });
    match probe {
        Err(ReplicaError::Fenced { epoch }) => {
            println!("\ndeposed primary is fenced (epoch {epoch}): split-brain write refused")
        }
        other => panic!("expected Fenced, got {other:?}"),
    }
    let mut late = Follower::create("f2", base.join("f2"), Options::default(), Io::plain());
    match sync_follower(&mut client, &mut late) {
        Err(ReplicaError::Fenced { epoch }) => {
            println!("late follower refused by the fenced server (epoch {epoch})")
        }
        other => panic!("expected Fenced over the wire, got {other:?}"),
    }

    server.stop();
    println!("\nnetworked failover complete: promoted follower serves the same answers over TCP.");
    std::fs::remove_dir_all(&base).ok();
}
