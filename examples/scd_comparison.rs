//! The paper's §1.2 argument, executed: SCD Type 1/2/3 vs the
//! multiversion model on the same snapshot stream.
//!
//! An operational source exports the organization dimension each year;
//! every strategy ingests the identical snapshots, then each is asked
//! the questions it can (or cannot) answer:
//!
//! * Type 1 — only the latest placement (history destroyed);
//! * Type 2 — any point-in-time placement, but versions are unlinked,
//!   so amounts cannot be compared across the transition;
//! * Type 3 — current + one previous placement, nothing older;
//! * multiversion — full history *and* cross-transition comparison, with
//!   confidence factors.
//!
//! ```text
//! cargo run --example scd_comparison
//! ```

use mvolap::core::MeasureDef;
use mvolap::etl::{
    apply_changes, diff, Scd1Dimension, Scd2Dimension, Scd3Dimension, Snapshot, SnapshotRow,
};
use mvolap::prelude::*;
use mvolap::query::run;

fn snapshot(year: i32, rows: &[(&str, Option<&str>, &str)]) -> Snapshot {
    Snapshot::new(
        Instant::ym(year, 1),
        rows.iter()
            .map(|(m, p, l)| SnapshotRow::new(*m, *p).at_level(*l)),
    )
}

fn main() {
    // Three yearly snapshots: Smith moves to R&D in 2002; a new Support
    // division absorbs Smith in 2003.
    let snapshots = vec![
        snapshot(
            2001,
            &[
                ("Sales", None, "Division"),
                ("R&D", None, "Division"),
                ("Dpt.Jones", Some("Sales"), "Department"),
                ("Dpt.Smith", Some("Sales"), "Department"),
                ("Dpt.Brian", Some("R&D"), "Department"),
            ],
        ),
        snapshot(
            2002,
            &[
                ("Sales", None, "Division"),
                ("R&D", None, "Division"),
                ("Dpt.Jones", Some("Sales"), "Department"),
                ("Dpt.Smith", Some("R&D"), "Department"),
                ("Dpt.Brian", Some("R&D"), "Department"),
            ],
        ),
        snapshot(
            2003,
            &[
                ("Sales", None, "Division"),
                ("R&D", None, "Division"),
                ("Support", None, "Division"),
                ("Dpt.Jones", Some("Sales"), "Department"),
                ("Dpt.Smith", Some("Support"), "Department"),
                ("Dpt.Brian", Some("R&D"), "Department"),
            ],
        ),
    ];

    // --- SCD baselines ingest the stream ---------------------------------
    let mut scd1 = Scd1Dimension::new("org").expect("schema");
    let mut scd2 = Scd2Dimension::new("org").expect("schema");
    let mut scd3 = Scd3Dimension::new("org").expect("schema");
    for s in &snapshots {
        scd1.load(s).expect("load");
        scd2.load(s).expect("load");
        scd3.load(s).expect("load");
    }

    // --- The multiversion model ingests the same stream ------------------
    let mut tmd = Tmd::new("org", Granularity::Month);
    let dim = tmd
        .add_dimension(mvolap::core::TemporalDimension::new("Org"))
        .expect("fresh schema");
    tmd.add_measure(MeasureDef::summed("Amount"))
        .expect("fresh schema");
    mvolap::etl::load::bootstrap(&mut tmd, dim, &snapshots[0]).expect("bootstrap");
    for pair in snapshots.windows(2) {
        let events = diff(&pair[0], &pair[1]);
        apply_changes(&mut tmd, dim, &events, pair[1].period).expect("incremental load");
    }
    // Identical yearly amounts for Smith's department.
    for year in 2001..=2003 {
        tmd.add_fact_by_names(&["Dpt.Smith"], Instant::ym(year, 6), &[100.0])
            .expect("fact");
    }

    println!("Question: where did Dpt.Smith sit, year by year?\n");

    println!("SCD Type 1 (overwrite):");
    println!(
        "  2001: {:?}  <- history destroyed",
        scd1.parent_of("Dpt.Smith")
    );
    println!("  2003: {:?}", scd1.parent_of("Dpt.Smith"));

    println!("\nSCD Type 2 (row versioning):");
    for year in 2001..=2003 {
        println!(
            "  {year}: {:?}",
            scd2.parent_at("Dpt.Smith", Instant::ym(year, 6))
        );
    }
    println!(
        "  …but the {} rows carry no links: amounts cannot be compared across\n\
         \x20  the transition (the paper's critique of Type 2).",
        scd2.version_count("Dpt.Smith")
    );

    println!("\nSCD Type 3 (previous-value column):");
    let (cur, prev) = scd3.parents_of("Dpt.Smith").expect("member exists");
    println!("  current: {cur:?}, previous: {prev:?}  <- the 2001 placement is gone");

    println!("\nMultiversion model:");
    for year in 2001..=2003 {
        let d = tmd.dimension(dim).expect("dim");
        let t = Instant::ym(year, 6);
        let smith = d.version_named_at("Dpt.Smith", t).expect("valid").id;
        let parents: Vec<String> = d
            .parents_at(smith, t)
            .into_iter()
            .map(|p| d.version(p).expect("parent").name.clone())
            .collect();
        println!("  {year}: {parents:?}");
    }

    println!("\n…and it can also *compare* across the transitions, in any structure:");
    let svs = tmd.structure_versions();
    println!("  ({} structure versions inferred)", svs.len());
    for mode in ["tcm", "VERSION 0"] {
        let rs = run(
            &tmd,
            &format!("SELECT sum(Amount) BY year, Org.Division IN MODE {mode}"),
        )
        .expect("query runs");
        println!("\n  Amount by division IN MODE {mode}:");
        for line in rs.render("r").expect("renderable").lines() {
            println!("    {line}");
        }
    }
}
