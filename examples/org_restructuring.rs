//! Driving evolutions with the §3.2 operators, from an empty schema.
//!
//! Builds a university's structure from scratch, then applies the whole
//! operator palette — create, reclassify, transform, split, merge,
//! increase, partial annexation — printing the compiled basic-operator
//! scripts (paper Table 11 style), the evolution log, the resulting
//! dimension as GraphViz DOT (Figure 2 style), and the per-mode quality
//! factors of a final query.
//!
//! ```text
//! cargo run --example org_restructuring
//! ```

use mvolap::core::evolution::{self, MergeSource, PartialAnnexationSpec, SplitPart};
use mvolap::core::{ConfidenceWeights, MeasureDef, MemberVersionSpec, TemporalDimension, Tmd};
use mvolap::cube::mode_qualities;
use mvolap::prelude::*;

fn main() {
    let mut tmd = Tmd::new("university", Granularity::Month);
    let dim = tmd
        .add_dimension(TemporalDimension::new("Faculty"))
        .expect("fresh schema");
    tmd.add_measure(MeasureDef::summed("Budget"))
        .expect("fresh schema");

    // 2010: two faculties, four institutes.
    let t0 = Instant::ym(2010, 1);
    let science = tmd
        .add_version(
            dim,
            MemberVersionSpec::named("Science").at_level("Faculty"),
            Interval::since(t0),
        )
        .expect("add version");
    let arts = tmd
        .add_version(
            dim,
            MemberVersionSpec::named("Arts").at_level("Faculty"),
            Interval::since(t0),
        )
        .expect("add version");
    let mut institutes = Vec::new();
    for (name, faculty) in [
        ("Inst.Math", science),
        ("Inst.Physics", science),
        ("Inst.History", arts),
        ("Inst.Music", arts),
    ] {
        let o = evolution::create(
            &mut tmd,
            dim,
            name,
            Some("Institute".into()),
            t0,
            &[faculty],
        )
        .expect("create");
        println!("create {name}:\n{}\n", o.render(&tmd));
        institutes.push(o.created[0]);
    }
    let [math, physics, history, music]: [_; 4] = institutes.try_into().expect("four institutes");

    // Budgets for 2010-2013 (before any evolution).
    for year in 2010..=2013 {
        for (inst, budget) in [
            (math, 300.0),
            (physics, 500.0),
            (history, 200.0),
            (music, 100.0),
        ] {
            if tmd
                .dimension(dim)
                .expect("dim")
                .is_valid_at(inst, Instant::ym(year, 6))
            {
                tmd.add_fact(&[inst], Instant::ym(year, 6), &[budget])
                    .expect("fact");
            }
        }
    }

    // 2014: History moves from Arts to Science (pure reclassification —
    // the conceptual model keeps the member version and re-wires edges).
    let t1 = Instant::ym(2014, 1);
    let o =
        evolution::reclassify(&mut tmd, dim, history, t1, &[arts], &[science]).expect("reclassify");
    println!(
        "reclassify Inst.History under Science:\n{}\n",
        o.render(&tmd)
    );

    // 2015: Math splits into Pure (30%) and Applied (70%).
    let t2 = Instant::ym(2015, 1);
    let o = evolution::split(
        &mut tmd,
        dim,
        math,
        &[
            SplitPart::proportional("Inst.PureMath", 0.3, 1),
            SplitPart::proportional("Inst.AppliedMath", 0.7, 1),
        ],
        t2,
        &[science],
    )
    .expect("split");
    println!("split Inst.Math:\n{}\n", o.render(&tmd));
    let pure = o.created[0];
    let applied = o.created[1];

    // 2016: Music and History merge into Humanities (60/40 backward).
    let t3 = Instant::ym(2016, 1);
    let o = evolution::merge(
        &mut tmd,
        dim,
        &[
            MergeSource::with_share(history, 0.6, 1),
            MergeSource::with_share(music, 0.4, 1),
        ],
        "Inst.Humanities",
        Some("Institute".into()),
        t3,
        &[arts],
    )
    .expect("merge");
    println!("merge History+Music:\n{}\n", o.render(&tmd));
    let humanities = o.created[0];

    // 2017: Physics annexes 20% of Applied Math (a 15% increase).
    let t4 = Instant::ym(2017, 1);
    let o = evolution::partial_annexation(
        &mut tmd,
        dim,
        applied,
        physics,
        "Inst.AppliedMath-",
        "Inst.Physics+",
        PartialAnnexationSpec {
            moved: 0.2,
            target_growth: 0.15,
        },
        t4,
        &[science],
    )
    .expect("partial annexation");
    println!("partial annexation Applied->Physics:\n{}\n", o.render(&tmd));
    let applied_minus = o.created[0];
    let physics_plus = o.created[1];

    // Budgets for the evolved years.
    for year in 2014..=2018 {
        let t = Instant::ym(year, 6);
        for (inst, budget) in [
            (pure, 120.0),
            (applied, 280.0),
            (applied_minus, 230.0),
            (physics, 520.0),
            (physics_plus, 610.0),
            (history, 210.0),
            (music, 90.0),
            (humanities, 310.0),
        ] {
            let d = tmd.dimension(dim).expect("dim");
            if d.is_valid_at(inst, t) && d.is_leaf_at(inst, t) {
                tmd.add_fact(&[inst], t, &[budget]).expect("fact");
            }
        }
    }

    println!("== Evolution log (metadata, §5.2) ==");
    for e in tmd.evolution_log().entries() {
        println!("  {} [{}] {}", e.at, e.operator, e.description);
    }
    println!();

    let svs = tmd.structure_versions();
    println!("== {} structure versions inferred ==", svs.len());
    for sv in &svs {
        println!("  {}", sv.label());
    }
    println!();

    println!("== Faculty dimension (GraphViz DOT — render with `dot -Tsvg`) ==");
    println!(
        "{}",
        tmd.dimension(dim).expect("dim").to_dot(Granularity::Month)
    );

    // Finally: budget by institute in every temporal mode, with the
    // §5.2 quality factor guiding the choice of mode.
    let q = AggregateQuery::by_year(dim, "Institute", TemporalMode::Consistent);
    println!("== Quality factor of `budget by institute and year` per mode ==");
    let scores =
        mode_qualities(&tmd, &svs, &q, &ConfidenceWeights::DEFAULT).expect("query evaluates");
    for s in &scores {
        println!(
            "  {:<6} Q = {:.3}  ({} rows, {} unmapped facts)",
            s.mode.label(),
            s.quality,
            s.rows,
            s.unmapped_rows
        );
    }
    let best = scores
        .iter()
        .max_by(|a, b| a.quality.partial_cmp(&b.quality).expect("no NaN"))
        .expect("nonempty");
    println!("\nBest mode under these weights: {}", best.mode.label());
}
