//! Depth-derived levels on a deep hierarchy — the paper's "no explicit
//! schema" claim (§2.3) exercised end to end.
//!
//! A health agency tracks admissions across Region > District >
//! Facility, but *declares no levels at all*: hierarchy levels emerge
//! from the DAG depth of the instances (`L0`, `L1`, `L2`), evolve when
//! districts are reorganised, and everything downstream — queries,
//! cube, quality — works unchanged.
//!
//! ```text
//! cargo run --example regional_health
//! ```

use mvolap::core::evolution;
use mvolap::core::levels::{levels_at, LevelDerivation};
use mvolap::core::{MeasureDef, MemberVersionSpec, TemporalDimension, Tmd};
use mvolap::cube::{Cube, CubeSpec, CubeView};
use mvolap::prelude::*;
use mvolap::query::run;

fn main() {
    let mut tmd = Tmd::new("health", Granularity::Month);
    let mut geo = TemporalDimension::new("Geo");
    let all = Interval::since(Instant::ym(2010, 1));

    // No `.at_level(...)` anywhere: levels will be derived from depth.
    let north = geo.add_version(MemberVersionSpec::named("North"), all);
    let south = geo.add_version(MemberVersionSpec::named("South"), all);
    let d1 = geo.add_version(MemberVersionSpec::named("District-1"), all);
    let d2 = geo.add_version(MemberVersionSpec::named("District-2"), all);
    let d3 = geo.add_version(MemberVersionSpec::named("District-3"), all);
    geo.add_relationship(d1, north, all).expect("edge");
    geo.add_relationship(d2, north, all).expect("edge");
    geo.add_relationship(d3, south, all).expect("edge");
    let mut facilities = Vec::new();
    for (name, district) in [
        ("Clinic-A", d1),
        ("Clinic-B", d1),
        ("Hospital-C", d2),
        ("Clinic-D", d3),
        ("Hospital-E", d3),
    ] {
        let f = geo.add_version(MemberVersionSpec::named(name), all);
        geo.add_relationship(f, district, all).expect("edge");
        facilities.push(f);
    }
    let dim = tmd.add_dimension(geo).expect("fresh schema");
    tmd.add_measure(MeasureDef::summed("Admissions"))
        .expect("fresh schema");

    // Levels are equivalence classes of DAG depth (Definition 4).
    let (derivation, levels) = levels_at(tmd.dimension(dim).expect("geo"), Instant::ym(2010, 6));
    assert_eq!(derivation, LevelDerivation::Depth);
    println!("Derived levels at 06/2010:");
    for l in &levels {
        println!("  {} -> {} members", l.name, l.members.len());
    }
    println!();

    // Admissions for 2010-2012.
    for year in 2010..=2012 {
        for (i, &f) in facilities.iter().enumerate() {
            tmd.add_fact(&[f], Instant::ym(year, 6), &[100.0 + 10.0 * i as f64])
                .expect("fact");
        }
    }

    // 2013: District-1 is split into District-1A and District-1B.
    // District-1 is an *interior* node, and Definition 7 restricts
    // mapping relationships to leaf member versions — interior values
    // "will be calculated from the aggregation of their children values".
    // So an interior split is: exclude the old district, create the new
    // ones, and reclassify the facilities below; no mapping functions
    // are needed because the facilities themselves live on.
    let t = Instant::ym(2013, 1);
    evolution::delete(&mut tmd, dim, d1, t).expect("exclude district");
    let d1a = evolution::create(&mut tmd, dim, "District-1A", None, t, &[north])
        .expect("create district")
        .created[0];
    let d1b = evolution::create(&mut tmd, dim, "District-1B", None, t, &[north])
        .expect("create district")
        .created[0];
    // Clinics move under the new districts: a reclassification each.
    evolution::reclassify(&mut tmd, dim, facilities[0], t, &[d1], &[d1a]).expect("reclassify");
    evolution::reclassify(&mut tmd, dim, facilities[1], t, &[d1], &[d1b]).expect("reclassify");
    for year in 2013..=2014 {
        for (i, &f) in facilities.iter().enumerate() {
            tmd.add_fact(&[f], Instant::ym(year, 6), &[120.0 + 10.0 * i as f64])
                .expect("fact");
        }
    }

    // District-1A/1B carry no facts of their own (interior nodes):
    // their admissions roll up from the clinics below — in every mode.
    let svs = tmd.structure_versions();
    println!("{} structure versions inferred:", svs.len());
    for sv in &svs {
        println!("  {}", sv.label());
    }
    println!();

    println!("== Admissions by derived level L1 (districts), consistent time ==");
    let rs = run(&tmd, "SELECT sum(Admissions) BY year, Geo.L1 IN MODE tcm").expect("query runs");
    print!("{}", rs.render("admissions").expect("renderable"));
    println!();

    println!("== The same, presented in the latest structure ==");
    let last = svs.last().expect("versions").id;
    let rs = run(
        &tmd,
        &format!(
            "SELECT sum(Admissions) BY year, Geo.L1 IN MODE VERSION {}",
            last.0
        ),
    )
    .expect("query runs");
    print!("{}", rs.render("admissions").expect("renderable"));
    println!();

    // The cube works identically over derived levels.
    let cube = Cube::build_incremental(&tmd, &svs, CubeSpec::for_mode(TemporalMode::Version(last)))
        .expect("cube builds");
    println!(
        "Cube: {} nodes ({} from facts, {} derived incrementally)",
        cube.node_count(),
        cube.stats().from_facts,
        cube.stats().derived
    );
    let mut view = CubeView::open(&cube);
    view.roll_up(dim).expect("geo exists"); // facilities -> districts
    view.roll_up(dim).expect("geo exists"); // districts -> regions
    println!("\n== Regions by year (rolled up twice) ==");
    print!("{}", view.render());
}
