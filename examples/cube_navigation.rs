//! Navigating a materialised hypercube: roll-up, drill-down, slice,
//! dice and rotate, with per-cell confidence colours.
//!
//! Builds the OLAP cube of the case study in the 2003-structure mode
//! (where 2002 data is approximately mapped through the Jones split) and
//! walks it the way the prototype's ProClarity front end would, the cell
//! colours (§5.2) flagging mapped data.
//!
//! ```text
//! cargo run --example cube_navigation
//! ```

use mvolap::core::case_study::case_study;
use mvolap::cube::{Cube, CubeSpec, CubeView};
use mvolap::prelude::*;

fn main() {
    let cs = case_study();
    let svs = cs.tmd.structure_versions();

    // Materialise the aggregate lattice for the 2003-structure mode.
    let mode = TemporalMode::Version(StructureVersionId(2));
    let cube = Cube::build(&cs.tmd, &svs, CubeSpec::for_mode(mode)).expect("cube builds");
    println!(
        "Cube materialised: {} lattice nodes, {} cells total\n",
        cube.node_count(),
        cube.cell_count()
    );

    let mut view = CubeView::open(&cube);
    println!("== Departments by year (finest grain) ==");
    println!("{}", view.render());

    view.roll_up(cs.org).expect("org exists");
    println!("== Roll-up to divisions ==");
    println!("{}", view.render());

    view.roll_up_time();
    println!("== Roll time up to the whole period ==");
    println!("{}", view.render());

    view.drill_down_time();
    view.drill_down(cs.org).expect("org exists");
    view.slice(cs.org, "Dpt.Bill").expect("org exists");
    println!("== Slice: only Dpt.Bill ==");
    println!("{}", view.render());

    view.dice(cs.org, vec!["Dpt.Bill".into(), "Dpt.Paul".into()])
        .expect("org exists");
    view.dice_time(vec!["2002".into()]);
    println!("== Dice: Bill+Paul in 2002 (the mapped year: yellow cells) ==");
    println!("{}", view.render());

    view.rotate(vec![1, 0]).expect("valid permutation");
    println!("== Rotate: department before year ==");
    println!("{}", view.render());

    let weights = ConfidenceWeights::DEFAULT;
    println!(
        "Quality of this viewpoint: Q = {:.3} (white = source, yellow = approximated)",
        view.quality(&weights)
    );
}
