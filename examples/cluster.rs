//! Quorum-replication walkthrough: a three-node serving group on
//! loopback TCP — majority-ack commits, fleet read routing, and the
//! typed refusals a session sees when the quorum cannot form.
//!
//! Three scenes:
//!
//! 1. **Assemble.** A [`LocalCluster`] seeds the paper's case study on
//!    a primary plus two member replicas (`m1`, `m2`), each with its
//!    own store and read server. Quorum is 2 of 3.
//! 2. **Quorum commit.** With replication stalled, a commit is fsynced
//!    locally but refused with the typed `Unreplicated` error — the
//!    session knows the record is *not* majority-committed. Then the
//!    async pump threads take over (one per member, batched shipping,
//!    no manual loop) and the same commit path clears the quorum.
//! 3. **Fleet reads.** A `read` bounded at the committed LSN is routed
//!    to the freshest member and answers byte-identically to the
//!    primary; an unsatisfiable bound is refused with `TooStale`
//!    naming the member consulted.
//! 4. **Live membership.** A fourth member joins as a non-voting
//!    learner, catches up through its pump, and is promoted to voter
//!    exactly when its synced LSN reaches the quorum watermark; an
//!    overlapping change is refused with the typed in-flight error;
//!    removal shrinks the voting group immediately and commits keep
//!    flowing under the new majority.
//!
//! ```text
//! cargo run --example cluster
//! ```
//!
//! CI runs this binary as the cluster acceptance check: it exits
//! non-zero unless the unreplicated refusal is typed, the quorum
//! watermark passes the commit, and the fleet-served read matches the
//! primary byte-for-byte.

use mvolap::cluster::{LocalCluster, PumpConfig, PumpState};
use mvolap::core::case_study;
use mvolap::durable::{FactRow, GroupConfig, Options, WalRecord};
use mvolap::prelude::*;
use mvolap::replica::{NetAddr, NetConfig};
use mvolap::server::{ServerError, ServerOptions};

const Q1: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_cluster_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("temp dir");

    // 1. Assemble the group: primary + m1 + m2, quorum 2 of 3.
    let cs = case_study::case_study();
    let loopback = NetAddr::parse("127.0.0.1:0").expect("addr");
    let mut cluster = LocalCluster::start(
        &base,
        cs.tmd,
        &loopback,
        &[
            ("m1".to_string(), loopback.clone()),
            ("m2".to_string(), loopback.clone()),
        ],
        Options::default(),
        GroupConfig::default(),
        ServerOptions {
            quorum_timeout_ms: 300,
            ..ServerOptions::default()
        },
        NetConfig::default(),
    )
    .expect("start cluster");
    println!("primary on {}", cluster.primary_addr());
    for (name, addr) in cluster.member_addrs() {
        println!("  member {name} reads on {addr}");
    }

    let record = |month: u32, amount: f64| WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![cs.smith],
            at: Instant::ym(2003, month),
            values: vec![amount],
        }],
    };

    // 2a. Nobody pumps replication: the commit is locally durable but
    //     the majority never acks — the session gets the typed refusal
    //     instead of a false success.
    let mut client = cluster.client(NetConfig::default());
    match client.commit(&record(1, 100.0)) {
        Err(ServerError::Unreplicated { lsn, acked }) => {
            println!("\nstalled group: commit refused — LSN {lsn} acked by {acked}/3");
            assert_eq!(acked, 1, "only the primary itself acked");
        }
        other => panic!("expected Unreplicated, got {other:?}"),
    }

    // 2b. Hand replication to the async pump: one shipping thread per
    //     member tails the WAL and ships batched frame envelopes. The
    //     same commit path now clears the quorum in one shipping
    //     round-trip — nobody drives a pump loop.
    cluster.spawn_pumps(PumpConfig::default());
    let group = cluster.group();
    let lsn = client.commit(&record(2, 250.0)).expect("quorum commit");
    assert!(
        group.quorum_lsn() > lsn,
        "watermark {} never passed the acked commit {lsn}",
        group.quorum_lsn()
    );
    println!(
        "async-pumped group: commit acked at LSN {lsn} (quorum watermark {})",
        group.quorum_lsn()
    );
    for (name, status) in cluster.pump_status() {
        assert!(
            !matches!(
                status.state,
                PumpState::Stalled { .. } | PumpState::Fenced { .. }
            ),
            "pump for {name} unhealthy: {:?}",
            status.state
        );
        println!(
            "  pump {name}: acked LSN {}, {} frames in {} envelopes",
            status.acked_lsn, status.shipped_frames, status.requests
        );
    }

    // 3. Fleet reads: bounded at the acked LSN, served by a member,
    //    byte-identical to the primary's own answer. Member freshness
    //    advances via the pump threads' continuous acks.
    let from_fleet = client.read_at(lsn, Q1).expect("fleet read");
    let from_primary = client.query(Q1).expect("primary read");
    assert_eq!(
        from_fleet, from_primary,
        "fleet-served read differs from the primary"
    );
    println!("\nfleet read at LSN bound {lsn} matches the primary:\n{from_fleet}");

    match client.read_at(lsn + 1_000, Q1) {
        Err(ServerError::TooStale {
            required,
            applied,
            member,
        }) => {
            let who = member.expect("fleet refusal names the member");
            println!(
                "unsatisfiable bound refused: requires LSN {required}, \
                 freshest member `{who}` is at {applied}"
            );
        }
        other => panic!("expected TooStale with a member name, got {other:?}"),
    }

    // 4. Live membership: journal an add, watch the learner catch up
    //    through its own pump, and see it promoted at the watermark.
    let join_lsn = cluster.join("m3", &loopback).expect("join journaled");
    println!("\njoin m3 journaled at LSN {join_lsn}; m3 is a learner");
    match cluster.join("m4", &loopback) {
        Err(ServerError::Commit(msg)) => {
            println!("overlapping change refused: {msg}");
        }
        other => panic!("expected the in-flight refusal, got {other:?}"),
    }
    let promoted = cluster
        .await_membership(std::time::Duration::from_secs(10))
        .expect("learner catches up");
    assert_eq!(promoted, "m3", "the joined member is the one promoted");
    for (name, learner) in cluster.membership() {
        println!(
            "  member {name}: {}",
            if learner { "learner" } else { "voter" }
        );
    }
    let lsn4 = client.commit(&record(3, 75.0)).expect("commit, 4 voters");
    println!("commit under the grown group acked at LSN {lsn4}");

    // Remove it again: the voting group shrinks at the record's LSN
    // and the next commit quorums under the smaller majority.
    cluster.leave("m3").expect("leave journaled");
    cluster
        .await_membership(std::time::Duration::from_secs(10))
        .expect("removal quorum-commits");
    let lsn3 = client.commit(&record(4, 33.0)).expect("commit, 3 voters");
    println!("m3 removed; commit under the shrunk group acked at LSN {lsn3}");

    drop(cluster);
    std::fs::remove_dir_all(&base).ok();
    println!("\ncluster walkthrough: all invariants held");
}
