//! Server soak: 64 concurrent sessions — most idle, a few hot —
//! against a real `mvolap --listen` process for a bounded wall-clock
//! window, asserting zero protocol errors and a clean shutdown on
//! `\q`.
//!
//! This is the smoke test for the pooled session server's reason to
//! exist: under the legacy thread-per-session loop, 64 held sessions
//! meant 64 server threads; under the pool they are parked file
//! descriptors polled by one loop, served by a handful of workers.
//! The soak holds every session open for the whole window — the idle
//! ones ping once in a while, the hot ones hammer queries and commits
//! — and then checks that
//!
//! * every request got a well-formed reply (`Busy` refusals are
//!   admission working as designed and are counted, not failed;
//!   anything else — protocol errors, transport drops, shutdown races
//!   — fails the soak),
//! * a `\q` line on the server's stdin stops it cleanly (exit status
//!   zero, goodbye line printed).
//!
//! ```text
//! cargo run --release --example server_soak
//! MVOLAP_SOAK_SECS=30 MVOLAP_BIN=target/release/mvolap \
//!     cargo run --release --example server_soak
//! ```
//!
//! `MVOLAP_SOAK_SECS` bounds the window (default 10; CI uses 30).
//! `MVOLAP_BIN` points at the shell binary (default
//! `target/release/mvolap`, falling back to `target/debug/mvolap`).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mvolap::replica::{NetAddr, NetConfig};
use mvolap::server::{ServerError, SessionClient};

const SESSIONS: usize = 64;
const HOT_SESSIONS: usize = 4;
const QUERY: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2003 IN MODE tcm";

fn bin_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("MVOLAP_BIN") {
        return p.into();
    }
    let release = std::path::Path::new("target/release/mvolap");
    if release.exists() {
        return release.to_path_buf();
    }
    std::path::Path::new("target/debug/mvolap").to_path_buf()
}

/// Reads the server banner and extracts the bound address (printed
/// between " on " and " (next LSN" — the port is OS-chosen).
fn server_addr(child: &mut Child) -> (NetAddr, impl BufRead) {
    let stdout = child.stdout.take().expect("server stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut banner = String::new();
    reader.read_line(&mut banner).expect("server banner");
    let addr = banner
        .split(" on ")
        .nth(1)
        .and_then(|rest| rest.split(" (").next())
        .unwrap_or_else(|| panic!("unparseable banner: {banner:?}"));
    (NetAddr::parse(addr.trim()).expect("banner addr"), reader)
}

fn main() {
    let secs: u64 = std::env::var("MVOLAP_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let store = std::env::temp_dir().join(format!("mvolap_soak_{}", std::process::id()));
    std::fs::remove_dir_all(&store).ok();

    let bin = bin_path();
    let mut server = Command::new(&bin)
        .args(["--store", store.to_str().expect("utf8 tmp path")])
        .args(["--listen", "127.0.0.1:0"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", bin.display()));
    let (addr, mut server_out) = server_addr(&mut server);
    println!(
        "soaking {SESSIONS} sessions ({HOT_SESSIONS} hot) against {addr} for {secs}s \
         [{}]",
        bin.display()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let busy = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs(secs);

    let sessions: Vec<_> = (0..SESSIONS)
        .map(|s| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            let busy = Arc::clone(&busy);
            let errors = Arc::clone(&errors);
            std::thread::spawn(move || {
                let mut client = SessionClient::connect(addr, NetConfig::default());
                let hot = s < HOT_SESSIONS;
                while !stop.load(Ordering::SeqCst) {
                    // Hot sessions hammer queries; idle ones ping every
                    // couple of seconds and otherwise just hold their
                    // parked connection open.
                    let res = if hot {
                        client.query(QUERY).map(|_| ())
                    } else {
                        client.ping()
                    };
                    requests.fetch_add(1, Ordering::Relaxed);
                    match res {
                        Ok(()) => {}
                        Err(ServerError::Busy { .. }) => {
                            busy.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("session {s}: {e}");
                        }
                    }
                    if !hot {
                        // Idle between pings, in slices that stay
                        // responsive to the stop flag.
                        for _ in 0..20 {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(100));
                        }
                    }
                }
            })
        })
        .collect();

    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(100));
    }
    stop.store(true, Ordering::SeqCst);
    for s in sessions {
        s.join().expect("session thread");
    }

    // Clean shutdown on `\q`: goodbye line, exit status zero.
    server
        .stdin
        .as_mut()
        .expect("server stdin piped")
        .write_all(b"\\q\n")
        .expect("write \\q");
    let status = server.wait().expect("server exit status");
    let mut goodbye = String::new();
    server_out.read_line(&mut goodbye).ok();

    let total = requests.load(Ordering::Relaxed);
    let refused = busy.load(Ordering::Relaxed);
    let failed = errors.load(Ordering::Relaxed);
    println!(
        "soak: {total} requests, {refused} busy refusals, {failed} protocol errors; \
         server said {goodbye:?} and exited {status}"
    );
    assert!(
        status.success(),
        "server must exit cleanly on \\q: {status}"
    );
    assert!(
        goodbye.contains("stopped"),
        "server must say goodbye, got {goodbye:?}"
    );
    assert_eq!(failed, 0, "a soak must be protocol-error free");
    assert!(
        total >= SESSIONS as u64,
        "every session must get at least one reply, got {total}"
    );
    std::fs::remove_dir_all(&store).ok();
    println!("server soak complete: {SESSIONS} held sessions, zero protocol errors, clean \\q.");
}
