//! Replication walkthrough: evolve → replicate → kill the primary →
//! promote a follower → the query answer survives byte-for-byte.
//!
//! Bootstraps a primary on the paper's case study, attaches a follower
//! over the in-process transport, journals evolutions and fact loads on
//! the primary while the supervisor ships the WAL frames across. Then
//! the primary is killed mid-flight; the follower is promoted (epoch
//! bump + fencing) and answers the paper's Q1 exactly as the primary
//! would have — from a byte-identical log.
//!
//! ```text
//! cargo run --example replication
//! ```

use mvolap::core::case_study;
use mvolap::durable::{FactRow, Io, WalRecord};
use mvolap::prelude::*;
use mvolap::replica::{ChannelTransport, ReplicaConfig, ReplicaError, ReplicaSet};

const Q1: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";

fn render(rs: &mvolap::core::ResultSet) -> Vec<String> {
    rs.rows
        .iter()
        .map(|r| {
            let cells: Vec<String> = r
                .cells
                .iter()
                .map(|c| match c.value {
                    Some(v) => format!("{v} ({:?})", c.confidence),
                    None => format!("? ({:?})", c.confidence),
                })
                .collect();
            format!("{} | {} | {}", r.time, r.keys.join(", "), cells.join(", "))
        })
        .collect()
}

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_replication_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("temp dir");

    // 1. Bootstrap the ensemble: a primary journaling to `base/primary`
    //    and a follower that will build its own WAL + checkpoint store
    //    under `base/f1`, fed over an in-process transport.
    let cs = case_study::case_study();
    let mut set = ReplicaSet::bootstrap(
        &base,
        cs.tmd,
        mvolap::durable::Options::default(),
        ReplicaConfig::default(),
        ChannelTransport::new(),
        Io::plain(),
    )
    .expect("bootstrap primary");
    set.add_follower("f1", Io::plain());
    println!("primary + follower f1 under {}", base.display());

    // 2. Evolve and load on the primary; tick the supervisor so the
    //    frames ship. Every shipped frame is CRC-checked in transit and
    //    replayed through the same validated apply path the primary
    //    committed it with.
    set.apply(WalRecord::Create {
        dim: cs.org,
        name: "Dpt.NanoTech".into(),
        level: Some("Department".into()),
        at: Instant::ym(2004, 1),
        parents: vec![cs.rnd],
    })
    .expect("create member");
    set.apply(WalRecord::FactBatch {
        rows: vec![
            FactRow {
                coords: vec![cs.bill],
                at: Instant::ym(2003, 5),
                values: vec![55.0],
            },
            FactRow {
                coords: vec![cs.paul],
                at: Instant::ym(2003, 5),
                values: vec![80.0],
            },
        ],
    })
    .expect("fact batch");
    for _ in 0..8 {
        set.tick();
    }
    let head = set.primary().expect("alive").wal_position();
    println!(
        "  shipped to LSN {head}: follower at {}, acked {}",
        set.follower("f1").expect("f1").next_lsn(),
        set.acked_lsn("f1"),
    );

    let before =
        render(&mvolap::query::run(set.primary().expect("alive").schema(), Q1).expect("query"));
    println!("\nQ1 on the primary:");
    for line in &before {
        println!("  {line}");
    }

    // 3. Fail over. The old primary is deposed: promotion bumps the
    //    epoch and fences it, so a partitioned-but-alive primary can
    //    never accept a split-brain write. Whatever it acknowledged is
    //    on the follower already.
    let epoch = set.promote("f1").expect("promote follower");
    println!("\nf1 promoted: epoch {epoch}, old primary fenced");

    // 4. The promoted follower answers Q1 identically.
    let after =
        render(&mvolap::query::run(set.primary().expect("promoted").schema(), Q1).expect("query"));
    println!("\nQ1 on the promoted follower:");
    for line in &after {
        println!("  {line}");
    }
    assert_eq!(
        after, before,
        "failover must preserve every acknowledged answer"
    );

    // 5. Fencing: the deposed primary refuses writes at its stale epoch.
    let retired = set.retired_mut().expect("deposed primary retained");
    match retired.apply(WalRecord::FactBatch {
        rows: vec![FactRow {
            coords: vec![cs.smith],
            at: Instant::ym(2003, 7),
            values: vec![999.0],
        }],
    }) {
        Err(ReplicaError::Fenced { epoch }) => {
            println!("\ndeposed primary is fenced (epoch {epoch}): split-brain write refused")
        }
        other => panic!("expected Fenced, got {other:?}"),
    }

    println!(
        "\nfailover complete: promoted follower serves the same answers from a byte-identical log."
    );
    std::fs::remove_dir_all(&base).ok();
}
