//! Session-server walkthrough: the warehouse served to concurrent
//! clients over loopback TCP, group commit coalescing their fsyncs,
//! and read routing failing over to a follower once it has caught up.
//!
//! Three scenes:
//!
//! 1. **Serve.** A [`SessionServer`] binds a loopback port over the
//!    paper's case study, with a local [`Follower`] attached for read
//!    routing. The server runs its default worker pool: a poll loop
//!    parks the eight sessions nonblocking and four workers serve
//!    their ready requests — idle sessions cost a file descriptor,
//!    not a thread.
//! 2. **Concurrent clients.** Eight sessions commit fact batches and
//!    run the paper's Q1 at the same time; the group-commit journal
//!    counters show the batch sharing — strictly at most one fsync per
//!    commit, usually far fewer — and the pool counters show every
//!    request flowing through the fixed worker set with the sharded
//!    query memo absorbing the repeated lookups.
//! 3. **Follower reads.** A `read` request carries an explicit
//!    staleness bound: while the follower is behind it is refused with
//!    the typed `TooStale` error, and after one replication pump the
//!    same request is served from the follower byte-identically to the
//!    primary's answer.
//!
//! ```text
//! cargo run --example serving
//! ```
//!
//! CI runs this binary as the serving acceptance check: it exits
//! non-zero unless the concurrent commits are all journaled, group
//! commit spends no more fsyncs than commits, and the follower read
//! matches the primary's answer byte-for-byte.

use mvolap::core::case_study;
use mvolap::durable::{DurableTmd, FactRow, GroupCommit, GroupConfig, Io, Options, WalRecord};
use mvolap::prelude::*;
use mvolap::replica::{Follower, NetAddr, NetConfig};
use mvolap::server::{ServerError, ServerOptions, SessionClient, SessionServer};

const Q1: &str = "SELECT sum(Amount) BY year, Org.Division FOR 2001..2004 IN MODE tcm";

const SESSIONS: usize = 8;
const COMMITS_PER_SESSION: usize = 4;

fn main() {
    let base = std::env::temp_dir().join(format!("mvolap_serving_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    std::fs::create_dir_all(&base).expect("temp dir");

    // 1. Serve the case study with an attached read follower.
    let cs = case_study::case_study();
    let store = DurableTmd::create_with(
        &base.join("primary"),
        cs.tmd,
        Options::default(),
        Io::plain(),
    )
    .expect("create store");
    let group = GroupCommit::new(store, GroupConfig::default());
    let follower = Follower::create(
        "reader",
        base.join("reader"),
        Options::default(),
        Io::plain(),
    );
    let mut server = SessionServer::spawn_with_follower(
        &NetAddr::parse("127.0.0.1:0").expect("addr"),
        group,
        follower,
        ServerOptions::default(),
    )
    .expect("bind server");
    let addr = server.addr().clone();
    let group = server.group();
    println!("serving on {addr} from {}", base.display());

    // 2. Concurrent sessions: every thread connects, commits facts to
    //    its own case-study leaf and interleaves Q1 reads. Commits
    //    crossing the wire together join the same group-commit batch
    //    and share its fsync.
    let leaves = [cs.brian, cs.smith, cs.bill, cs.paul];
    let fsyncs_before = group.fsyncs();
    let lsn_before = group.wal_position();
    let workers: Vec<_> = (0..SESSIONS)
        .map(|w| {
            let addr = addr.clone();
            let leaf = leaves[w % leaves.len()];
            std::thread::spawn(move || {
                let mut client = SessionClient::connect(addr, NetConfig::default());
                for i in 0..COMMITS_PER_SESSION {
                    client
                        .commit(&WalRecord::FactBatch {
                            rows: vec![FactRow {
                                coords: vec![leaf],
                                at: Instant::ym(2003, 1 + ((w + i) % 12) as u32),
                                values: vec![(w * 10 + i) as f64],
                            }],
                        })
                        .expect("commit");
                    client.query(Q1).expect("query");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread");
    }
    let commits = group.wal_position() - lsn_before;
    let fsyncs = group.fsyncs() - fsyncs_before;
    println!(
        "\n{SESSIONS} sessions journaled {commits} commits with {fsyncs} fsyncs \
         ({:.2} fsyncs/commit)",
        fsyncs as f64 / commits as f64
    );
    assert_eq!(
        commits,
        (SESSIONS * COMMITS_PER_SESSION) as u64,
        "every acknowledged commit must be journaled"
    );
    assert!(
        fsyncs <= commits,
        "group commit must never spend more fsyncs than commits"
    );

    // The pool carried all of it: 8 sessions multiplexed over 4 worker
    // threads, every request counted, the sharded memo warm.
    let expected = (SESSIONS * COMMITS_PER_SESSION * 2) as u64;
    let stats = server.pool_stats();
    println!(
        "pool: {} workers served {} requests ({} refused), memo shards: {}",
        stats.workers,
        stats.served,
        stats.refused,
        stats.memo.len()
    );
    assert!(
        stats.served >= expected,
        "every commit and query goes through the pool: {} < {expected}",
        stats.served
    );
    let memo_hits: u64 = stats
        .memo
        .iter()
        .map(|m| m.routes.hits + m.ancestors.hits)
        .sum();
    assert!(memo_hits > 0, "repeated Q1 must hit the sharded memo");

    // 3. Read routing with an explicit staleness bound. The follower
    //    has applied nothing yet, so a read demanding the latest commit
    //    is refused with the typed error...
    let mut client = SessionClient::connect(addr.clone(), NetConfig::default());
    let latest = group.wal_position() - 1;
    match client.read_at(latest, Q1) {
        Err(ServerError::TooStale {
            required, applied, ..
        }) => {
            println!("\nfollower read refused: requires LSN {required}, applied {applied}")
        }
        other => panic!("expected TooStale, got {other:?}"),
    }

    // ...until one replication pump catches it up, after which the same
    // bounded read is served from the follower, byte-identical to the
    // primary's answer.
    let applied = server.pump_follower().expect("pump follower");
    println!("follower pumped to LSN {applied}");
    let from_follower = client.read_at(latest, Q1).expect("follower read");
    let from_primary = client.query(Q1).expect("primary read");
    assert_eq!(
        from_follower, from_primary,
        "follower reads must match the primary byte-for-byte"
    );
    println!("\nQ1 served from the follower (LSN bound {latest}):");
    for line in from_follower.lines() {
        println!("  {line}");
    }

    drop(client);
    server.stop();
    println!("\nserving complete: group commit shared fsyncs, follower answered within its bound.");
    std::fs::remove_dir_all(&base).ok();
}
