//! Quickstart: the paper's case study end to end.
//!
//! Builds the institution of §2.1 (Smith's department reclassified in
//! 2002, Jones's split 40/60 into Bill's and Paul's in 2003), infers the
//! structure versions, and runs the motivating queries Q1 and Q2 under
//! every temporal mode of presentation — reproducing Tables 4-6 and
//! 8-10 of the paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mvolap::core::case_study::case_study;
use mvolap::query::run;

fn main() {
    let cs = case_study();

    println!("== Structure versions (inferred, Definition 9) ==");
    for sv in cs.tmd.structure_versions() {
        println!("  {}", sv.label());
    }
    println!();

    println!("== Q1: total amount by year and division (2001-2002) ==\n");
    for (mode, caption) in [
        ("tcm", "consistent time (paper Table 4)"),
        ("VERSION 0", "mapped on the 2001 organization (Table 5)"),
        ("VERSION 1", "mapped on the 2002 organization (Table 6)"),
    ] {
        let rs = run(
            &cs.tmd,
            &format!("SELECT sum(Amount) BY year, Org.Division FOR 2001..2002 IN MODE {mode}"),
        )
        .expect("Q1 runs");
        println!("-- {caption} --");
        println!("{}", rs.render("q1").expect("renderable"));
    }

    println!("== Q2: total amounts per department (2002-2003) ==\n");
    for (mode, caption) in [
        ("tcm", "consistent time (Table 8)"),
        ("VERSION 1", "mapped on the 2002 organization (Table 9)"),
        ("VERSION 2", "mapped on the 2003 organization (Table 10)"),
    ] {
        let rs = run(
            &cs.tmd,
            &format!("SELECT sum(Amount) BY year, Org.Department FOR 2002..2003 IN MODE {mode}"),
        )
        .expect("Q2 runs");
        println!("-- {caption} --");
        println!("{}", rs.render("q2").expect("renderable"));
    }

    println!(
        "Note how the Sales division's amounts seem to decrease, stay flat or\n\
         grow depending on the chosen interpretation — the paper's point:\n\
         the user must be able to choose, and be guided by confidence factors\n\
         (the *_cf columns: sd = source, em = exact, am = approximated)."
    );
}
